"""Hyperedge prediction with h-motif features (paper Section 4.4, Table 4).

Builds a temporal co-authorship hypergraph, binds a :class:`repro.MotifEngine`
to it, and runs the prediction experiment: the earlier years are the context,
candidate hyperedges of the final year are classified as real or fake, and the
HM26 / HM7 / HC feature sets are compared across the five classifier families.

Run with ``python examples/hyperedge_prediction.py`` (takes a few minutes).
"""

from __future__ import annotations

from repro import MotifEngine, PredictSpec, generate_temporal_coauthorship
from repro.prediction import FEATURE_SETS


def main() -> None:
    temporal = generate_temporal_coauthorship(
        num_years=5,
        initial_authors=170,
        initial_papers=110,
        seed=21,
    )
    years = temporal.timestamps()
    print(
        f"temporal co-authorship hypergraph: years {years[0]}-{years[-1]}, "
        f"{temporal.num_hyperedges} timestamped hyperedges"
    )
    print(f"context window: {years[0]}-{years[-2]}, test year: {years[-1]}")

    engine = MotifEngine(temporal)
    # PredictSpec defaults to the paper's split: all years but the last are
    # the context window, the last year is the test window.
    result = engine.predict(PredictSpec(max_positives=100, seed=0))

    print(f"\n{'classifier':<22} {'features':<6} {'ACC':>7} {'AUC':>7}")
    for classifier, feature_set, accuracy, auc in result.as_rows():
        print(f"{classifier:<22} {feature_set:<6} {accuracy:>7.3f} {auc:>7.3f}")

    print("\nmean AUC per feature set:")
    for feature_set in FEATURE_SETS:
        print(f"  {feature_set:<5}: {result.mean_metric(feature_set, 'auc'):.3f}")
    print(
        "\nAs in the paper's Table 4, features derived from h-motifs (HM26, HM7) "
        "should outperform the hand-crafted baseline (HC)."
    )


if __name__ == "__main__":
    main()
