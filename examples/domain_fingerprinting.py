"""Domain fingerprinting with characteristic profiles (paper Q2/Q3, Figures 5-6).

Generates a small corpus with two datasets per domain, computes every CP
through one :class:`repro.MotifEngine` per dataset, and shows that (a) CPs
cluster by domain and (b) a held-out hypergraph's domain can be identified by
nearest-CP classification.

Run with ``python examples/domain_fingerprinting.py`` (takes a minute or two).
"""

from __future__ import annotations

from repro import MotifEngine, ProfileSpec
from repro.analysis import analyze_domains, classify_domain, leave_one_out_domain_accuracy
from repro.generators import (
    generate_contact,
    generate_coauthorship,
    generate_email,
    generate_tags,
)


def build_demo_corpus():
    """Two datasets per domain, kept small so exact counting stays fast."""
    return {
        "coauth-a": (generate_coauthorship(220, 160, seed=1, name="coauth-a"), "coauthorship"),
        "coauth-b": (generate_coauthorship(180, 150, seed=2, name="coauth-b"), "coauthorship"),
        "contact-a": (generate_contact(70, 170, seed=3, name="contact-a"), "contact"),
        "contact-b": (generate_contact(80, 160, seed=4, name="contact-b"), "contact"),
        "email-a": (generate_email(70, 160, seed=5, name="email-a"), "email"),
        "email-b": (generate_email(80, 150, seed=6, name="email-b"), "email"),
        "tags-a": (generate_tags(120, 150, seed=7, name="tags-a"), "tags"),
        "tags-b": (generate_tags(110, 160, seed=8, name="tags-b"), "tags"),
    }


def main() -> None:
    corpus = build_demo_corpus()
    profiles = []
    domains = []
    names = []
    for name, (hypergraph, domain) in corpus.items():
        print(f"computing CP of {name} ({domain}) ...")
        # The denser tags datasets use the hyperwedge sampler, like the paper
        # does for its largest datasets.
        spec = ProfileSpec(
            num_random=3,
            algorithm="mochy-a+" if domain == "tags" else "mochy-e",
            sampling_ratio=0.2 if domain == "tags" else None,
            seed=0,
        )
        profiles.append(MotifEngine(hypergraph).profile(spec).profile)
        domains.append(domain)
        names.append(name)

    analysis = analyze_domains(profiles, domains)
    print("\nCP similarity matrix (Pearson correlation):")
    header = " " * 12 + " ".join(f"{name[:9]:>10}" for name in names)
    print(header)
    for row_name, row in zip(names, analysis.matrix):
        print(f"{row_name:<12}" + " ".join(f"{value:>10.2f}" for value in row))

    print(
        f"\nwithin-domain mean similarity : {analysis.separation.within_mean:.3f}"
        f"\nacross-domain mean similarity : {analysis.separation.across_mean:.3f}"
        f"\ngap                           : {analysis.separation.gap:.3f}"
    )

    accuracy = leave_one_out_domain_accuracy(profiles, domains)
    print(f"leave-one-out domain classification accuracy: {accuracy:.2f}")

    # Classify a freshly generated hypergraph that was not part of the corpus.
    query_hypergraph = generate_contact(75, 150, seed=99, name="mystery")
    query_profile = MotifEngine(query_hypergraph).profile(
        ProfileSpec(num_random=3, seed=0)
    ).profile
    predicted = classify_domain(query_profile, profiles, domains)
    print(f"\nthe mystery hypergraph (a contact network) is classified as: {predicted}")


if __name__ == "__main__":
    main()
