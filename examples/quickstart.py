"""Quickstart: count h-motifs, estimate them by sampling, and compute a CP.

Run with ``python examples/quickstart.py``. Everything uses the public API of
the ``repro`` package and finishes in a few seconds.
"""

from __future__ import annotations

from repro import (
    Hypergraph,
    characteristic_profile,
    count_motifs,
    generate_coauthorship,
    summarize,
)
from repro.motifs import describe_motif


def main() -> None:
    # 1. Build a tiny hypergraph by hand — the paper's Figure 2 example.
    figure2 = Hypergraph(
        [
            {"Leskovec", "Kleinberg", "Faloutsos"},
            {"Leskovec", "Huttenlocher", "Kleinberg"},
            {"Benson", "Gleich", "Leskovec"},
            {"Sellis", "Roussopoulos", "Faloutsos"},
        ],
        name="figure-2",
    )
    print("== The paper's Figure 2 example ==")
    print(summarize(figure2))
    counts = count_motifs(figure2, algorithm="mochy-e")
    for motif, value in counts.items():
        if value:
            print(f"  {describe_motif(motif)}: {int(value)} instance(s)")

    # 2. Generate a synthetic co-authorship hypergraph and count exactly.
    hypergraph = generate_coauthorship(num_authors=250, num_papers=180, seed=1)
    print("\n== Synthetic co-authorship hypergraph ==")
    print(summarize(hypergraph))
    exact = count_motifs(hypergraph, algorithm="mochy-e")
    print(f"total h-motif instances (exact): {int(exact.total())}")

    # 3. Estimate the same counts with MoCHy-A+ using 20% of the hyperwedges.
    estimate = count_motifs(
        hypergraph, algorithm="mochy-a+", sampling_ratio=0.2, seed=0
    )
    print(
        "relative error of MoCHy-A+ at a 20% sampling ratio: "
        f"{estimate.relative_error(exact):.4f}"
    )

    # 4. Compute the characteristic profile against Chung-Lu randomizations.
    profile = characteristic_profile(hypergraph, num_random=3, seed=0, real_counts=exact)
    top = sorted(profile.as_dict().items(), key=lambda item: -abs(item[1]))[:5]
    print("\nmost significant h-motifs (by |CP| entry):")
    for motif, value in top:
        print(f"  h-motif {motif:>2}: CP = {value:+.3f}")


if __name__ == "__main__":
    main()
