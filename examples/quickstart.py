"""Quickstart: count h-motifs, estimate them by sampling, and compute a CP.

Run with ``python examples/quickstart.py``. Everything goes through
:class:`repro.MotifEngine`, the unified API: one engine per hypergraph builds
the projection once and shares it (and any deterministic counts) across
``count()``, ``profile()`` and the other workflows. It finishes in a few
seconds.
"""

from __future__ import annotations

from repro import (
    CountSpec,
    Hypergraph,
    MotifEngine,
    ProfileSpec,
    generate_coauthorship,
    summarize,
)
from repro.motifs import describe_motif


def main() -> None:
    # 1. Build a tiny hypergraph by hand — the paper's Figure 2 example.
    figure2 = Hypergraph(
        [
            {"Leskovec", "Kleinberg", "Faloutsos"},
            {"Leskovec", "Huttenlocher", "Kleinberg"},
            {"Benson", "Gleich", "Leskovec"},
            {"Sellis", "Roussopoulos", "Faloutsos"},
        ],
        name="figure-2",
    )
    print("== The paper's Figure 2 example ==")
    print(summarize(figure2))
    counts = MotifEngine(figure2).count(CountSpec(algorithm="mochy-e")).counts
    for motif, value in counts.items():
        if value:
            print(f"  {describe_motif(motif)}: {int(value)} instance(s)")

    # 2. Generate a synthetic co-authorship hypergraph and bind one engine to
    #    it; everything below reuses this engine's cached projection.
    hypergraph = generate_coauthorship(num_authors=250, num_papers=180, seed=1)
    engine = MotifEngine(hypergraph)
    print("\n== Synthetic co-authorship hypergraph ==")
    print(summarize(hypergraph))
    exact = engine.count()  # MoCHy-E is the default spec
    print(f"total h-motif instances (exact): {int(exact.counts.total())}")

    # 3. Estimate the same counts with MoCHy-A+ using 20% of the hyperwedges.
    #    The engine reuses the projection built for the exact count.
    estimate = engine.count(
        CountSpec(algorithm="mochy-a+", sampling_ratio=0.2, seed=0)
    )
    assert estimate.projection_cached, "second count must reuse the projection"
    print(
        "relative error of MoCHy-A+ at a 20% sampling ratio: "
        f"{estimate.counts.relative_error(exact.counts):.4f}"
    )

    # 4. Compute the characteristic profile against Chung-Lu randomizations.
    #    The exact counts above are memoized, so only the randomized
    #    hypergraphs are counted here.
    result = engine.profile(ProfileSpec(num_random=3, seed=0))
    top = sorted(result.profile.as_dict().items(), key=lambda item: -abs(item[1]))[:5]
    print("\nmost significant h-motifs (by |CP| entry):")
    for motif, value in top:
        print(f"  h-motif {motif:>2}: CP = {value:+.3f}")

    # 5. Every result is machine-readable for scripting pipelines.
    document = result.to_json()
    print(f"\nprofile as JSON: {len(document)} characters "
          f"(also available from the CLI via --json)")


if __name__ == "__main__":
    main()
