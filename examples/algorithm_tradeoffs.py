"""Comparing MoCHy-E, MoCHy-A and MoCHy-A+ (paper Section 4.5, Figures 8-11).

Sweeps the sampling ratio of both approximate counters on one synthetic
dataset, reports the speed/accuracy trade-off, and demonstrates the lazy
(memory-budgeted) projection and the parallel drivers.

Run with ``python examples/algorithm_tradeoffs.py``.
"""

from __future__ import annotations

from repro import count_exact, generate_email
from repro.counting import (
    count_approx_edge_sampling,
    count_approx_wedge_sampling,
    count_exact_parallel,
)
from repro.projection import POLICY_DEGREE, LazyProjection, project
from repro.utils.timer import Timer


def main() -> None:
    hypergraph = generate_email(num_accounts=90, num_messages=200, seed=3)
    print(f"dataset: {hypergraph.num_nodes} nodes, {hypergraph.num_hyperedges} hyperedges")

    projection = project(hypergraph)
    print(f"hyperwedges: {projection.num_hyperwedges}")

    with Timer() as exact_timer:
        exact = count_exact(hypergraph, projection)
    print(f"\nMoCHy-E: {int(exact.total())} instances in {exact_timer.elapsed:.2f}s")

    print(f"\n{'algorithm':<10} {'ratio':>6} {'time (s)':>9} {'rel. error':>11}")
    for ratio in (0.05, 0.1, 0.2, 0.4):
        edge_samples = max(1, int(ratio * hypergraph.num_hyperedges))
        wedge_samples = max(1, int(ratio * projection.num_hyperwedges))
        with Timer() as timer_a:
            estimate_a = count_approx_edge_sampling(
                hypergraph, edge_samples, projection, seed=0
            )
        with Timer() as timer_aplus:
            estimate_aplus = count_approx_wedge_sampling(
                hypergraph, wedge_samples, projection, seed=0
            )
        print(
            f"{'MoCHy-A':<10} {ratio:>6.2f} {timer_a.elapsed:>9.3f} "
            f"{estimate_a.relative_error(exact):>11.4f}"
        )
        print(
            f"{'MoCHy-A+':<10} {ratio:>6.2f} {timer_aplus.elapsed:>9.3f} "
            f"{estimate_aplus.relative_error(exact):>11.4f}"
        )

    # On-the-fly projection with a 10% memoization budget (Section 3.4).
    budget = hypergraph.num_hyperedges // 10
    lazy = LazyProjection(hypergraph, budget=budget, policy=POLICY_DEGREE, seed=0)
    wedge_samples = max(1, int(0.2 * projection.num_hyperwedges))
    with Timer() as lazy_timer:
        count_approx_wedge_sampling(
            hypergraph,
            wedge_samples,
            projection=lazy,
            hyperwedges=projection.hyperwedge_list(),
            seed=0,
        )
    print(
        f"\nMoCHy-A+ with a {budget}-neighborhood memoization budget: "
        f"{lazy_timer.elapsed:.3f}s, {lazy.computations} neighborhood computations, "
        f"{lazy.cache_hits} cache hits"
    )

    # Parallel exact counting.
    for workers in (1, 2):
        with Timer() as parallel_timer:
            count_exact_parallel(hypergraph, num_workers=workers)
        print(f"MoCHy-E with {workers} worker(s): {parallel_timer.elapsed:.2f}s")


if __name__ == "__main__":
    main()
