"""Comparing MoCHy-E, MoCHy-A and MoCHy-A+ (paper Section 4.5, Figures 8-11).

Sweeps the sampling ratio of both approximate counters on one synthetic
dataset, reports the speed/accuracy trade-off, and demonstrates the lazy
(memory-budgeted) projection and the parallel drivers — all through
:class:`repro.MotifEngine` spec options. The engine builds the projection
once; every run in the sweep reuses it.

Run with ``python examples/algorithm_tradeoffs.py``.
"""

from __future__ import annotations

from repro import CountSpec, MotifEngine, generate_email


def main() -> None:
    hypergraph = generate_email(num_accounts=90, num_messages=200, seed=3)
    engine = MotifEngine(hypergraph)
    print(f"dataset: {hypergraph.num_nodes} nodes, {hypergraph.num_hyperedges} hyperedges")
    print(f"hyperwedges: {engine.projection.num_hyperwedges}")

    exact = engine.count()
    print(
        f"\nMoCHy-E: {int(exact.counts.total())} instances in "
        f"{exact.counting_seconds:.2f}s"
    )

    print(f"\n{'algorithm':<10} {'ratio':>6} {'time (s)':>9} {'rel. error':>11}")
    for ratio in (0.05, 0.1, 0.2, 0.4):
        for label, algorithm in (("MoCHy-A", "mochy-a"), ("MoCHy-A+", "mochy-a+")):
            run = engine.count(
                CountSpec(algorithm=algorithm, sampling_ratio=ratio, seed=0)
            )
            assert run.projection_cached  # the sweep never re-projects
            print(
                f"{label:<10} {ratio:>6.2f} {run.counting_seconds:>9.3f} "
                f"{run.counts.relative_error(exact.counts):>11.4f}"
            )

    # On-the-fly projection with a 10% memoization budget (Section 3.4),
    # selected with the spec's projection="lazy" option.
    budget = hypergraph.num_hyperedges // 10
    lazy_run = engine.count(
        CountSpec(
            algorithm="mochy-a+",
            sampling_ratio=0.2,
            seed=0,
            projection="lazy",
            budget=budget,
        )
    )
    print(
        f"\nMoCHy-A+ with a {budget}-neighborhood memoization budget: "
        f"{lazy_run.counting_seconds:.3f}s "
        f"({lazy_run.num_samples} sampled hyperwedges, per-triple fallback)"
    )

    # Parallel exact counting through the same engine. (The serial run's time
    # comes from the measurement above — asking the engine again would just
    # hit the memo and report a zero-cost cached result.)
    print(f"MoCHy-E with 1 worker(s): {exact.counting_seconds:.2f}s")
    parallel = engine.count(CountSpec(num_workers=2))
    print(f"MoCHy-E with 2 worker(s): {parallel.counting_seconds:.2f}s")


if __name__ == "__main__":
    main()
