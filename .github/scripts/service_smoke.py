"""CI service-smoke driver: assert streaming, parity and warm-start over HTTP.

Run against an already-started ``repro-mochy serve`` instance:

    python .github/scripts/service_smoke.py --port 8731 \
        --requests requests.jsonl --serial serial.jsonl --phase cold

``--phase cold`` (first server instance, empty store) asserts that

* results arrive **incrementally** in completion order — the batch leads
  with a deliberately slow profile, so the fast counts' records must arrive
  first, before the stream is complete;
* one ``ok`` record arrives per request plus a ``done`` summary;
* result payloads are **bit-identical** to the ``serve-batch`` serial
  reference in ``--serial`` (volatile timing/provenance fields excluded).

``--phase warm`` (second server instance over the same store directory)
additionally asserts every result reports ``from_cache`` with
``cache_tier == "disk"`` — the persistent tier survived the restart.

Both phases scrape ``GET /v1/metrics`` after the batch and assert the
served counters (``repro_serve_requests_total``, the per-tier
``repro_serve_cache_tier_total`` samples and the ``/v1/batch`` HTTP
counter) agree exactly with the NDJSON records the client just consumed.

Both phases also stream an evolution chain through ``POST /v1/evolve``
(the registered deterministic temporal dataset) and cross-check the
per-mode ``repro_evolve_snapshots_total`` counters against the snapshot
records consumed. The cold phase computes the chain (one full count plus
incremental deltas) and persists its lineage sidecars; the warm phase —
a *different server process* over the same store directory — must serve
every snapshot ``cached`` from those lineage artifacts.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import Counter
from pathlib import Path

from repro.store.client import ServiceClient

SAMPLE_LINE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
LABEL_PAIR = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')

VOLATILE_KEYS = frozenset(
    {
        "projection_seconds",
        "counting_seconds",
        "seconds",
        "projection_cached",
        "from_cache",
        "cache_tier",
    }
)


def stable(result: dict) -> dict:
    return {key: value for key, value in result.items() if key not in VOLATILE_KEYS}


def scrape_samples(client: ServiceClient) -> dict:
    """Parse ``GET /v1/metrics`` into ``(name, sorted label items) -> value``."""
    samples = {}
    for line in client.metrics().splitlines():
        if not line or line.startswith("#"):
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        name, raw_labels, value = match.groups()
        labels = dict(LABEL_PAIR.findall(raw_labels)) if raw_labels else {}
        samples[(name, tuple(sorted(labels.items())))] = float(value)
    return samples


def sample_value(samples: dict, name: str, **labels) -> float:
    key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
    return samples.get(key, 0.0)


def read_jsonl(path: Path) -> list:
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.startswith("#")
    ]


def check_evolve(client: ServiceClient, phase: str) -> None:
    """Stream ``POST /v1/evolve`` and reconcile it with ``/v1/metrics``."""
    before = scrape_samples(client)
    records = list(client.evolve_stream("coauth-temporal-like"))

    assert records and records[-1].get("status") == "done", records[-1:]
    done = records[-1]
    snapshots = [r["snapshot"] for r in records if r.get("status") == "ok"]
    assert done["errors"] == 0, f"evolve stream reported errors: {done}"
    assert done["count"] == len(snapshots) > 1
    assert [s["index"] for s in snapshots] == list(range(len(snapshots)))

    modes = Counter(snapshot["mode"] for snapshot in snapshots)
    assert dict(modes) == done["modes"], (modes, done["modes"])
    if phase == "warm":
        # A different server process over the same store: every snapshot
        # must be served from the persisted count + lineage artifacts.
        assert set(modes) == {"cached"}, (
            f"warm evolve chain was not fully cached: {dict(modes)}"
        )

    after = scrape_samples(client)
    for mode, expected in sorted(modes.items()):
        grew = sample_value(after, "repro_evolve_snapshots_total", mode=mode)
        grew -= sample_value(before, "repro_evolve_snapshots_total", mode=mode)
        assert grew == expected, (
            f"evolve mode {mode!r}: metrics grew by {grew}, "
            f"NDJSON stream carried {expected} snapshots"
        )
    hits = sample_value(
        after, "repro_http_requests_total", route="/v1/evolve", status=200
    )
    hits -= sample_value(
        before, "repro_http_requests_total", route="/v1/evolve", status=200
    )
    assert hits == 1, f"expected one 200 /v1/evolve hit, metrics grew by {hits}"
    print(
        f"[{phase}] /v1/evolve streamed {len(snapshots)} snapshots "
        f"(modes {dict(modes)}); metrics agree"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--requests", type=Path, required=True)
    parser.add_argument("--serial", type=Path, required=True)
    parser.add_argument("--phase", choices=("cold", "warm"), required=True)
    arguments = parser.parse_args()

    requests = read_jsonl(arguments.requests)
    serial = read_jsonl(arguments.serial)
    assert len(serial) == len(requests), "serial reference is incomplete"

    client = ServiceClient(port=arguments.port, timeout=600.0)
    health = client.wait_until_healthy(timeout=60.0)
    print(f"[{arguments.phase}] service healthy: version {health['version']}")

    records = list(client.batch_stream(requests))

    failures = [record for record in records if record.get("status") == "error"]
    assert not failures, f"stream contained error records: {failures}"
    okay = [record for record in records if record.get("status") == "ok"]
    done = [record for record in records if record.get("status") == "done"]
    assert len(done) == 1 and records[-1] is done[0], "missing/misplaced done record"
    assert sorted(record["index"] for record in okay) == list(range(len(requests)))
    assert done[0]["ok"] == len(requests) and done[0]["errors"] == 0

    if arguments.phase == "cold":
        # Incremental, completion-ordered streaming: request 0 is the slow
        # profile (it takes orders of magnitude longer than the counts on a
        # cold store), so with overlapping workers a fast count record must
        # arrive before it. On the warm pass every unit is a near-instant
        # disk hit, so arrival order is not meaningful there.
        assert okay[0]["index"] != 0, (
            "the slow profile's record arrived first; streaming does not "
            "follow completion order"
        )

    # Bit-identical to the serve-batch serial reference.
    by_index = {record["index"]: record["result"] for record in okay}
    for index, reference in enumerate(serial):
        if stable(by_index[index]) != stable(reference):
            raise AssertionError(
                f"request {index} diverged from the serial reference:\n"
                f"  http:   {stable(by_index[index])}\n"
                f"  serial: {stable(reference)}"
            )
    print(f"[{arguments.phase}] {len(okay)} streamed results match serve-batch")

    if arguments.phase == "warm":
        for index, result in sorted(by_index.items()):
            assert result["from_cache"], f"warm request {index} was recomputed"
            assert result["cache_tier"] == "disk", (
                f"warm request {index} served from {result['cache_tier']!r}, "
                f"expected the disk tier"
            )
        print(f"[warm] all {len(by_index)} results served from the disk tier")

    # /v1/metrics must agree exactly with the NDJSON stream the client just
    # consumed: one served request per ok record, one /v1/batch HTTP hit,
    # and per-tier counters matching the results' cache_tier fields (a
    # freshly computed unit counts under the "computed" tier).
    samples = scrape_samples(client)
    served = sample_value(samples, "repro_serve_requests_total")
    assert served == len(okay), (
        f"repro_serve_requests_total is {served}, expected {len(okay)}"
    )
    batches = sample_value(
        samples, "repro_http_requests_total", route="/v1/batch", status=200
    )
    assert batches == 1, f"expected one 200 /v1/batch hit, metrics report {batches}"
    expected_tiers = Counter(
        record["result"]["cache_tier"]
        if record["result"].get("from_cache")
        else "computed"
        for record in okay
    )
    for tier, expected in sorted(expected_tiers.items()):
        observed = sample_value(samples, "repro_serve_cache_tier_total", tier=tier)
        assert observed == expected, (
            f"cache tier {tier!r}: metrics report {observed}, "
            f"NDJSON results show {expected}"
        )
    if arguments.phase == "warm":
        assert expected_tiers == {"disk": len(okay)}, expected_tiers
    print(
        f"[{arguments.phase}] /v1/metrics agrees with the stream: "
        f"{int(served)} served, tiers {dict(expected_tiers)}"
    )

    check_evolve(client, arguments.phase)

    stats = client.stats()
    assert stats["serve"]["in_flight"] == 0, "batches left in flight"
    assert stats["service"]["batches_completed"] >= 1
    assert stats["service"]["evolve_completed"] >= 1
    assert stats["service"]["snapshots_streamed"] >= 2
    print(
        f"[{arguments.phase}] stats consistent: "
        f"store hits memory={stats['store']['stats']['memory_hits']} "
        f"disk={stats['store']['stats']['disk_hits']}, "
        f"pool={stats['pool']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
