"""Repo-root pytest configuration.

pyproject.toml sets ``timeout``/``timeout_method`` for pytest-timeout — the
per-test watchdog CI installs (requirements-ci.txt) so no hanging test can
wedge a run. The plugin is deliberately not a local requirement; when it is
absent, its config options would be "unknown ini options" warnings, so they
are registered here as inert placeholders instead.
"""

from __future__ import annotations


def pytest_addoption(parser) -> None:
    try:
        import pytest_timeout  # noqa: F401
    except ImportError:
        parser.addini("timeout", "per-test timeout (no-op without pytest-timeout)")
        parser.addini(
            "timeout_method",
            "timeout mechanism (no-op without pytest-timeout)",
        )
