"""Setup shim: enables legacy editable installs in offline environments without the 'wheel' package."""
from setuptools import setup

setup()
