"""Test package for the repro library."""
