"""Tests for the batched serving driver (:mod:`repro.store.serve`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CompareSpec, CountSpec, MotifEngine, PredictSpec, ProfileSpec
from repro.api.results import CompareResult, CountResult, ProfileResult
from repro.exceptions import SpecError
from repro.generators import generate_uniform_random
from repro.store import ArtifactStore
from repro.store.serve import EngineServer, ServeRequest


def _make_hypergraph(seed: int = 0):
    return generate_uniform_random(num_nodes=20, num_hyperedges=30, seed=seed)


@pytest.fixture
def server(tmp_path) -> EngineServer:
    return EngineServer(store=ArtifactStore(tmp_path / "store"))


class TestSubmit:
    def test_typed_results_in_request_order(self, server):
        first, second = _make_hypergraph(1), _make_hypergraph(2)
        results = server.submit(
            [
                ServeRequest(first, CountSpec()),
                ServeRequest(first, ProfileSpec(num_random=2, seed=0)),
                ServeRequest(second, CompareSpec(num_random=2, seed=0)),
            ]
        )
        assert [type(result) for result in results] == [
            CountResult,
            ProfileResult,
            CompareResult,
        ]

    def test_identical_work_is_deduplicated(self, server):
        hypergraph = _make_hypergraph()
        results = server.submit(
            [
                ServeRequest(hypergraph, CountSpec()),
                ServeRequest(hypergraph, CountSpec()),
                ServeRequest(hypergraph, CountSpec()),
            ]
        )
        assert server.stats.unique == 1
        assert server.stats.deduplicated == 2
        assert results[0].counts == results[1].counts == results[2].counts

    def test_duplicate_results_are_defensive_copies(self, server):
        hypergraph = _make_hypergraph()
        first, second = server.submit(
            [ServeRequest(hypergraph, CountSpec()), (hypergraph, CountSpec())]
        )
        expected = second.counts.to_array()
        first.counts.increment(1, 1000.0)
        assert np.array_equal(second.counts.to_array(), expected)

    def test_duplicate_profile_and_compare_results_do_not_alias(self, server):
        hypergraph = _make_hypergraph()
        profile_spec = ProfileSpec(num_random=2, seed=0)
        compare_spec = CompareSpec(num_random=2, seed=0)
        p1, p2, c1, c2 = server.submit(
            [
                ServeRequest(hypergraph, profile_spec),
                ServeRequest(hypergraph, profile_spec),
                ServeRequest(hypergraph, compare_spec),
                ServeRequest(hypergraph, compare_spec),
            ]
        )
        expected = p2.profile.real_counts.to_array()
        p1.profile.real_counts.increment(1, 1000.0)
        assert np.array_equal(p2.profile.real_counts.to_array(), expected)
        rows = list(c2.report.rows)
        c1.report.rows.clear()
        assert c2.report.rows == rows

    def test_equal_hypergraph_objects_share_an_engine(self, server):
        server.submit(
            [
                ServeRequest(_make_hypergraph(), CountSpec()),
                ServeRequest(_make_hypergraph(), CountSpec()),
            ]
        )
        assert server.stats.engines_built == 1
        assert server.stats.deduplicated == 1

    def test_predict_spec_is_rejected(self, server):
        with pytest.raises(SpecError):
            server.submit([ServeRequest(_make_hypergraph(), PredictSpec())])


class TestPoolAndStore:
    def test_engine_pool_is_bounded_lru(self, tmp_path):
        server = EngineServer(store=ArtifactStore(tmp_path / "s"), max_engines=2)
        for seed in range(4):
            server.count([_make_hypergraph(seed)])
        assert server.num_engines == 2
        assert server.stats.engines_evicted == 2

    def test_invalid_max_engines(self):
        with pytest.raises(SpecError):
            EngineServer(store=False, max_engines=0)

    def test_evicted_engine_work_survives_in_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        server = EngineServer(store=store, max_engines=1)
        hypergraph = _make_hypergraph(1)
        cold = server.count([hypergraph])[0]
        server.count([_make_hypergraph(2)])  # evicts the first engine
        warm = server.count([_make_hypergraph(1)])[0]
        assert warm.from_cache and warm.cache_tier == "memory"
        assert np.array_equal(warm.counts.to_array(), cold.counts.to_array())

    def test_server_store_is_shared_with_external_engines(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        EngineServer(store=store).count([_make_hypergraph()])
        warm = MotifEngine(_make_hypergraph(), store=store).count()
        assert warm.from_cache

    def test_storeless_server_still_deduplicates(self):
        server = EngineServer(store=False)
        hypergraph = _make_hypergraph()
        server.submit(
            [ServeRequest(hypergraph, CountSpec()), ServeRequest(hypergraph, CountSpec())]
        )
        assert server.store is None
        assert server.stats.deduplicated == 1

    def test_warm_populates_projection_and_counts(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        server = EngineServer(store=store)
        server.warm([_make_hypergraph()])
        kinds = {entry.kind for entry in store.entries()}
        assert kinds == {"projection", "count"}

    def test_registry_sources_resolve(self, tmp_path, server):
        hypergraph = _make_hypergraph()
        from repro.hypergraph import io as hio

        path = tmp_path / "h.txt"
        hio.write_plain(hypergraph, path)
        result = server.count([str(path)])[0]
        assert result.counts.total() >= 0.0
