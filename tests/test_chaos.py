"""Chaos suite: every degradation path, exercised via injected faults.

The production claims under test (see :mod:`repro.store.faults` and the
README's "Operations & failure modes"): a failing disk degrades writes to
the memory tier, lock contention degrades instead of blocking, a corrupted
entry reads as a miss, a slow unit burns only its own slot, a crashed
process worker costs its batch's in-flight units and nothing else, an
overloaded service sheds load with retryable 429s, and the client retries
exactly the transient failures. Nothing here monkeypatches internals — the
hardened code paths are reached through their first-class injection points,
which also work across the worker-process boundary.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import numpy as np
import pytest

from repro.api import CountSpec
from repro.exceptions import ServeError
from repro.store import ArtifactStore
from repro.store import faults
from repro.store.client import ServiceClient
from repro.store.executors import (
    FAILURE_TIMEOUT,
    FAILURE_WORKER_CRASH,
    UnitFailure,
    WorkerPool,
)
from repro.store.locks import FileLock
from repro.store.serve import EngineServer, ServeRequest
from repro.store.server import build_server, shutdown_gracefully

DATASET_A = "email-enron-like"
DATASET_B = "contact-primary-like"


@pytest.fixture(autouse=True)
def _clean_faults():
    """No armed fault may leak into (or out of) any test."""
    faults.clear()
    os.environ.pop(faults.ENV_FAULTS, None)
    yield
    faults.clear()
    os.environ.pop(faults.ENV_FAULTS, None)


def _requests(*sources):
    return [ServeRequest(source, CountSpec()) for source in sources]


def _wire_requests(*sources):
    return [{"source": source, "spec": {"type": "count"}} for source in sources]


@pytest.fixture
def running_server(request):
    """Factory for a live service on a free port, drained at teardown."""
    servers = []

    def start(**kwargs):
        kwargs.setdefault("store", False)
        server = build_server(port=0, **kwargs)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        client = ServiceClient(port=server.port, timeout=60.0)
        client.wait_until_healthy()
        return server, client

    yield start
    for server in servers:
        shutdown_gracefully(server, drain_seconds=10.0)


class TestFaultRegistry:
    def test_error_fault_fires_and_expires(self):
        faults.inject("x.point", mode="error", times=2)
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                faults.fire("x.point")
        faults.fire("x.point")  # exhausted: back to a no-op
        assert "x.point" not in faults.active()

    def test_key_scoping_is_substring_matching(self):
        faults.inject("x.point", key="alpha")
        faults.fire("x.point", key="beta:count")  # no match, no fire
        with pytest.raises(faults.InjectedFault):
            faults.fire("x.point", key="alpha:count")

    def test_sleep_mode_delays(self):
        faults.inject("x.point", mode="sleep", seconds=0.05)
        started = time.monotonic()
        faults.fire("x.point")
        assert time.monotonic() - started >= 0.05

    def test_deny_mode_belongs_to_denied_not_fire(self):
        faults.inject("x.point", mode="deny", times=1)
        faults.fire("x.point")  # deny faults never raise
        assert faults.denied("x.point") is True
        assert faults.denied("x.point") is False  # consumed

    def test_injected_context_manager_disarms(self):
        with faults.injected("x.point"):
            assert "x.point" in faults.active()
        assert "x.point" not in faults.active()

    def test_env_faults_validate_eagerly_and_fire(self):
        with pytest.raises(ValueError):
            faults.encode_env({"x.point": {"mode": "explode"}})
        os.environ[faults.ENV_FAULTS] = faults.encode_env(
            {"x.point": {"mode": "error", "message": "from the environment"}}
        )
        with pytest.raises(faults.InjectedFault, match="from the environment"):
            faults.fire("x.point")

    def test_once_path_latch_is_single_shot(self, tmp_path):
        latch = tmp_path / "latch"
        os.environ[faults.ENV_FAULTS] = faults.encode_env(
            {"x.point": {"mode": "error", "once_path": str(latch)}}
        )
        with pytest.raises(faults.InjectedFault):
            faults.fire("x.point")
        faults.fire("x.point")  # the latch file holds it down now
        assert latch.exists()

    def test_malformed_env_spec_never_breaks_production(self):
        os.environ[faults.ENV_FAULTS] = "{not json"
        faults.fire("x.point")
        assert faults.denied("x.point") is False


class TestStoreDegradation:
    def test_disk_write_fault_degrades_to_memory_tier(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with faults.injected("store.disk_write"):
            store.put("count", "f" * 64, {"p": 1}, {"values": np.ones(4)})
        assert store.stats.write_errors == 1
        hit = store.get("count", "f" * 64, {"p": 1})
        assert hit is not None and hit[2] == "memory"
        # The failed write never reached disk: a fresh store misses.
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get("count", "f" * 64, {"p": 1}) is None

    def test_corrupted_payload_is_a_miss_until_a_writer_repairs_it(self, tmp_path):
        directory = tmp_path / "store"
        writer = ArtifactStore(directory)
        writer.put("count", "f" * 64, {"p": 1}, {"values": np.ones(4)})
        payload = next(directory.glob("shards/*/*/*.npz"))
        payload.write_bytes(b"garbage, checksum cannot match")
        # A concurrent reader sees the corruption as a clean miss...
        reader = ArtifactStore(directory)
        assert reader.get("count", "f" * 64, {"p": 1}) is None
        assert reader.stats.corrupt_entries == 1
        # ...while a concurrent writer re-persisting the same key (the
        # recompute path after such a miss) repairs the entry in place.
        writer.put("count", "f" * 64, {"p": 1}, {"values": np.full(4, 2.0)})
        repaired = ArtifactStore(directory).get("count", "f" * 64, {"p": 1})
        assert repaired is not None and repaired[2] == "disk"
        assert np.array_equal(repaired[0]["values"], np.full(4, 2.0))

    def test_injected_lock_contention_counts_and_degrades(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", lock_timeout=0.05)
        with faults.injected("store.lock_acquire", mode="deny"):
            store.put("count", "f" * 64, {"p": 1}, {"values": np.ones(4)})
        assert store.stats.lock_contention == 1
        hit = store.get("count", "f" * 64, {"p": 1})
        assert hit is not None and hit[2] == "memory"

    def test_real_lock_contention_counts_identically(self, tmp_path):
        directory = tmp_path / "store"
        store = ArtifactStore(directory, lock_timeout=0.05)
        lock_path = store.shard_lock_path("f" * 64)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        blocker = FileLock(lock_path)
        assert blocker.acquire(timeout=1.0)
        try:
            store.put("count", "f" * 64, {"p": 1}, {"values": np.ones(4)})
        finally:
            blocker.release()
        assert store.stats.lock_contention == 1
        hit = store.get("count", "f" * 64, {"p": 1})
        assert hit is not None and hit[2] == "memory"


class TestServeChaos:
    def test_slow_unit_times_out_and_the_rest_streams(self):
        server = EngineServer(store=False)
        requests = _requests(DATASET_A, DATASET_B)
        list(server.submit_stream(requests, capture_errors=True))  # warm engines
        with faults.injected(
            "serve.unit", mode="sleep", seconds=3.0, key=DATASET_A
        ):
            started = time.monotonic()
            outcomes = dict(
                server.submit_stream(
                    requests,
                    workers=2,
                    backend="thread",
                    capture_errors=True,
                    timeout=0.5,
                )
            )
            elapsed = time.monotonic() - started
        assert elapsed < 2.5  # the stream never waits out the slow unit
        assert isinstance(outcomes[0], UnitFailure)
        assert outcomes[0].error_type == FAILURE_TIMEOUT
        assert outcomes[0].retryable is True
        assert not isinstance(outcomes[1], UnitFailure)
        assert server.stats.unit_timeouts == 1

    def test_timeout_without_capture_raises_serve_error(self):
        server = EngineServer(store=False)
        requests = _requests(DATASET_A, DATASET_B)
        list(server.submit_stream(requests, capture_errors=True))
        with faults.injected(
            "serve.unit", mode="sleep", seconds=3.0, key=DATASET_A
        ):
            with pytest.raises(ServeError, match=FAILURE_TIMEOUT):
                list(
                    server.submit_stream(
                        requests, workers=2, backend="thread", timeout=0.5
                    )
                )

    def test_worker_crash_yields_records_and_pool_respawns(self, tmp_path):
        os.environ[faults.ENV_FAULTS] = faults.encode_env(
            {
                "worker.unit": {
                    "mode": "crash",
                    "key": DATASET_A,
                    "once_path": str(tmp_path / "crash-latch"),
                }
            }
        )
        pool = WorkerPool("process", workers=2)
        with EngineServer(store=False, pool=pool) as server:
            requests = _requests(DATASET_A, DATASET_B)
            outcomes = dict(server.submit_stream(requests, capture_errors=True))
            crashed = [
                outcome
                for outcome in outcomes.values()
                if isinstance(outcome, UnitFailure)
            ]
            assert crashed, "the dying worker must surface as unit records"
            assert all(
                record.error_type == FAILURE_WORKER_CRASH and record.retryable
                for record in crashed
            )
            assert pool.respawns >= 1
            assert server.stats.worker_crashes >= 1
            # The latch consumed the crash: the respawned pool serves.
            again = dict(server.submit_stream(requests, capture_errors=True))
            assert not any(
                isinstance(outcome, UnitFailure) for outcome in again.values()
            )


class TestServiceChaos:
    def test_slow_unit_over_http_degrades_per_unit(self, running_server):
        server, client = running_server(
            workers=2, backend="thread", request_timeout=0.8
        )
        records = client.batch(_wire_requests(DATASET_A, DATASET_B))  # warm
        assert len(records) == 2
        with faults.injected(
            "serve.unit", mode="sleep", seconds=2.0, key=DATASET_A
        ):
            by_status = {}
            for record in client.batch_stream(
                _wire_requests(DATASET_A, DATASET_B)
            ):
                by_status.setdefault(record["status"], []).append(record)
        (timed_out,) = by_status["error"]
        assert timed_out["error"]["type"] == FAILURE_TIMEOUT
        assert timed_out["error"]["retryable"] is True
        assert len(by_status["ok"]) == 1
        (done,) = by_status["done"]
        assert done["ok"] == 1 and done["errors"] == 1
        assert client.health()["status"] == "ok"

    def test_admission_control_rejects_with_retryable_429(self, running_server):
        server, client = running_server(workers=2, backend="thread", max_queue=1)
        client.batch(_wire_requests(DATASET_A))  # warm the engine
        faults.inject("serve.unit", mode="sleep", seconds=2.0, key=DATASET_A)
        occupant = threading.Thread(
            target=lambda: ServiceClient(port=server.port, timeout=30.0).batch(
                _wire_requests(DATASET_A)
            )
        )
        occupant.start()
        try:
            time.sleep(0.3)  # let the occupant take the only queue slot
            # Raw wire check: 429 + Retry-After header + structured body.
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            body = json.dumps({"requests": _wire_requests(DATASET_A)}).encode()
            connection.request(
                "POST",
                "/v1/batch",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            connection.close()
            assert response.status == 429
            assert response.getheader("Retry-After") == "1"
            assert payload["error"]["type"] == "ServerBusy"
            assert payload["error"]["retryable"] is True
            # The retrying client backs off past the busy period and wins.
            results = client.batch(_wire_requests(DATASET_A))
            assert len(results) == 1
            assert client.counters.rejected_busy >= 1
            assert client.counters.retries >= 1
        finally:
            occupant.join()
        assert client.stats()["service"]["batches_rejected_busy"] >= 2
        assert client.health()["status"] == "ok"

    def test_worker_crash_over_http_keeps_the_service_healthy(
        self, running_server, tmp_path
    ):
        os.environ[faults.ENV_FAULTS] = faults.encode_env(
            {
                "worker.unit": {
                    "mode": "crash",
                    "key": DATASET_A,
                    "once_path": str(tmp_path / "crash-latch"),
                }
            }
        )
        server, client = running_server(workers=2, backend="process")
        statuses = [
            record
            for record in client.batch_stream(_wire_requests(DATASET_A, DATASET_B))
        ]
        done = [r for r in statuses if r["status"] == "done"]
        crashed = [
            r
            for r in statuses
            if r["status"] == "error"
            and r["error"]["type"] == FAILURE_WORKER_CRASH
        ]
        assert done, "the stream must terminate with its summary, never hang"
        assert crashed and all(r["error"]["retryable"] for r in crashed)
        assert client.health()["status"] == "ok"
        # The respawned pool serves the retry cleanly.
        results = client.batch(_wire_requests(DATASET_A, DATASET_B))
        assert len(results) == 2
        payload = client.stats()
        assert payload["pool"]["respawns"] >= 1
        assert payload["serve"]["worker_crashes"] >= 1

    def test_disk_write_fault_mid_batch_never_fails_the_batch(
        self, running_server, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        server, client = running_server(store=store, workers=2, backend="thread")
        with faults.injected("store.disk_write", times=None):
            results = client.batch(_wire_requests(DATASET_A, DATASET_B))
        assert len(results) == 2
        assert store.stats.write_errors >= 1
        assert client.health()["status"] == "ok"

    def test_dropped_connection_is_retried_transparently(self, running_server):
        server, client = running_server()
        faults.inject("server.drop_connection", mode="deny", times=1)
        assert client.health()["status"] == "ok"
        assert client.counters.retries >= 1
        assert client.counters.connections_opened >= 2


class TestLineageChainChaos:
    """A crash between the count write and its lineage sidecar tears the
    chain — which must degrade to a recount, never serve a wrong count."""

    def test_crash_mid_lineage_put_degrades_to_recount(self, tmp_path):
        from repro.api import EvolveSpec, MotifEngine, SNAPSHOT_MODE_CACHED
        from repro.generators.temporal import generate_temporal_coauthorship
        from repro.store import codecs

        temporal = generate_temporal_coauthorship(
            num_years=4, initial_authors=30, initial_papers=15, seed=21
        )
        store_dir = tmp_path / "store"

        # Cold chain with every lineage manifest append failing: the counts
        # land on disk, the sidecars degrade to the memory tier only —
        # exactly the torn state a crash between the two writes leaves.
        with faults.injected("store.manifest_append", key="lineage", times=None):
            crashed = MotifEngine(temporal, store=ArtifactStore(store_dir)).evolve(
                EvolveSpec()
            )
        assert len(crashed.snapshots) > 2

        # A fresh process over the same directory sees counts but no
        # lineage proof beyond the root: nothing non-root serves cached.
        survivor_store = ArtifactStore(store_dir)
        kinds = {entry.kind for entry in survivor_store.entries()}
        assert codecs.KIND_COUNT in kinds
        assert codecs.KIND_LINEAGE not in kinds
        rerun = MotifEngine(temporal, store=survivor_store).evolve(EvolveSpec())
        modes = [snapshot.mode for snapshot in rerun.snapshots]
        assert SNAPSHOT_MODE_CACHED not in modes[1:]
        for a, b in zip(crashed.snapshots, rerun.snapshots):
            assert a.fingerprint == b.fingerprint
            np.testing.assert_array_equal(a.counts.to_array(), b.counts.to_array())

        # The recount re-persisted the sidecars: the chain self-heals and a
        # third run serves fully warm.
        healed = MotifEngine(temporal, store=ArtifactStore(store_dir)).evolve(
            EvolveSpec()
        )
        assert set(healed.snapshot_modes()) == {SNAPSHOT_MODE_CACHED}
        for a, b in zip(rerun.snapshots, healed.snapshots):
            np.testing.assert_array_equal(a.counts.to_array(), b.counts.to_array())
