"""Tests for kernel-backend selection and the optional compiled kernels.

Covers the selection layers of :mod:`repro.fastcore.backend` (environment
variable, process default, thread-scoped override), the
:class:`repro.api.KernelConfig` spec and its engine/CLI/worker wiring, and
interpreted parity of the :mod:`repro.fastcore.compiled` loops — ``@_jit`` is
the identity without numba, so the compiled logic is executable (and parity
tested) as plain Python on machines without the optional dependency.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import CountSpec, KernelConfig, MotifEngine, spec_to_dict
from repro.counting.classification import fast_adjacency
from repro.exceptions import KernelBackendError
from repro.fastcore import compiled
from repro.fastcore.backend import (
    BACKEND_AUTO,
    BACKEND_NUMBA,
    BACKEND_NUMPY,
    ENV_KERNEL_BACKEND,
    KERNEL_BACKEND_CHOICES,
    get_backend,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.fastcore.kernels import count_exact_batched
from repro.fastcore.reference import (
    count_containing_reference,
    count_exact_reference,
    count_wedges_reference,
    project_reference,
)
from repro.generators import generate_uniform_random
from repro.projection import project


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Each test starts from the library default and leaves no process state."""
    from repro.fastcore import backend as backend_module

    monkeypatch.delenv(ENV_KERNEL_BACKEND, raising=False)
    set_backend(None)
    yield
    # Reset the process default directly: set_backend(None) re-resolves the
    # environment, which tests may have pointed at an invalid name.
    backend_module._process_backend = None


class TestResolution:
    def test_numpy_always_resolves(self):
        assert resolve_backend(BACKEND_NUMPY) == BACKEND_NUMPY

    def test_default_is_numpy(self):
        assert resolve_backend(None) == BACKEND_NUMPY
        assert get_backend() == BACKEND_NUMPY

    def test_auto_resolves_to_an_available_backend(self):
        resolved = resolve_backend(BACKEND_AUTO)
        if numba_available():
            assert resolved == BACKEND_NUMBA
        else:
            assert resolved == BACKEND_NUMPY

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            resolve_backend("cython")

    def test_names_are_normalized(self):
        assert resolve_backend("  NumPy ") == BACKEND_NUMPY

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_explicit_numba_without_numba_fails_loudly(self):
        with pytest.raises(KernelBackendError, match="numba"):
            resolve_backend(BACKEND_NUMBA)

    def test_environment_variable_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_BACKEND, BACKEND_NUMPY)
        assert resolve_backend(None) == BACKEND_NUMPY

    def test_set_backend_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_BACKEND, "bogus")
        # set_backend short-circuits the (invalid) environment value.
        assert set_backend(BACKEND_NUMPY) == BACKEND_NUMPY
        assert get_backend() == BACKEND_NUMPY

    def test_invalid_environment_value_fails_on_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_BACKEND, "bogus")
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            resolve_backend(None)


class TestScopedOverride:
    def test_use_backend_restores_previous_choice(self):
        assert get_backend() == BACKEND_NUMPY
        with use_backend(BACKEND_NUMPY) as active:
            assert active == BACKEND_NUMPY
            assert get_backend() == BACKEND_NUMPY
        assert get_backend() == BACKEND_NUMPY

    def test_use_backend_none_is_a_noop_scope(self):
        set_backend(BACKEND_NUMPY)
        with use_backend(None) as active:
            assert active == BACKEND_NUMPY

    def test_use_backend_is_thread_local(self):
        seen = {}

        def worker():
            seen["backend"] = get_backend()

        with use_backend(BACKEND_NUMPY):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The spawned thread never saw the context override; it read the
        # process default.
        assert seen["backend"] == BACKEND_NUMPY

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_use_backend_validates_eagerly(self):
        with pytest.raises(KernelBackendError):
            with use_backend(BACKEND_NUMBA):
                pass  # pragma: no cover - the context must not be entered


class TestKernelConfig:
    def test_default_is_auto(self):
        assert KernelConfig().backend == BACKEND_AUTO

    def test_name_is_normalized(self):
        assert KernelConfig("NUMPY").backend == BACKEND_NUMPY

    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            KernelConfig("fortran")

    def test_all_choices_construct(self):
        for name in KERNEL_BACKEND_CHOICES:
            assert KernelConfig(name).backend == name

    def test_engine_accepts_config_and_counts_match(self, small_random_hypergraph):
        baseline = MotifEngine(small_random_hypergraph, store=False).count().counts
        pinned = MotifEngine(
            small_random_hypergraph, store=False, kernel=KernelConfig(BACKEND_NUMPY)
        )
        assert pinned.kernel == KernelConfig(BACKEND_NUMPY)
        assert pinned.count().counts == baseline

    def test_engine_accepts_backend_name_string(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph, store=False, kernel="numpy")
        assert engine.kernel == KernelConfig(BACKEND_NUMPY)

    def test_engine_sampling_runs_under_config(self, small_random_hypergraph):
        spec = CountSpec(algorithm="wedge-sampling", num_samples=20, seed=3)
        loose = MotifEngine(small_random_hypergraph, store=False).count(spec).counts
        pinned = (
            MotifEngine(small_random_hypergraph, store=False, kernel="numpy")
            .count(spec)
            .counts
        )
        assert pinned == loose


class TestCompiledInterpreted:
    """The compiled loops, run as plain Python, match the reference counters."""

    @pytest.fixture()
    def graph(self):
        hypergraph = generate_uniform_random(
            num_nodes=25, num_hyperedges=35, mean_size=3.5, max_size=7, seed=13
        )
        projection = project(hypergraph)
        return hypergraph, projection, fast_adjacency(projection)

    def test_exact_loop_matches_reference(self, graph):
        hypergraph, _, adjacency = graph
        csr = hypergraph.csr()
        anchors = np.arange(csr.num_edges, dtype=np.int64)
        got = compiled._run(compiled._count_exact_loop, csr, adjacency, anchors)
        want = count_exact_reference(hypergraph).to_array()
        assert np.array_equal(got, want)

    def test_containing_loop_matches_reference(self, graph):
        hypergraph, projection, adjacency = graph
        csr = hypergraph.csr()
        anchors = np.arange(0, csr.num_edges, 2, dtype=np.int64)
        got = compiled._run(
            compiled._count_containing_loop, csr, adjacency, anchors
        )
        want = count_containing_reference(
            hypergraph, projection, anchors.tolist()
        ).to_array()
        assert np.array_equal(got, want)

    def test_wedges_loop_matches_reference(self, graph):
        hypergraph, projection, adjacency = graph
        csr = hypergraph.csr()
        wedges = projection.hyperwedge_list()[:60]
        wedge_array = np.asarray(wedges, dtype=np.int64)
        got = compiled._run(
            compiled._count_wedges_loop,
            csr,
            adjacency,
            wedge_array[:, 0],
            wedge_array[:, 1],
        )
        want = count_wedges_reference(hypergraph, projection, wedges).to_array()
        assert np.array_equal(got, want)

    def test_public_wrappers_respect_availability(self, graph):
        hypergraph, _, adjacency = graph
        csr = hypergraph.csr()
        anchors = np.arange(csr.num_edges, dtype=np.int64)
        result = compiled.count_exact(csr, adjacency, anchors)
        if numba_available():
            assert np.array_equal(result, count_exact_reference(hypergraph).to_array())
        else:
            # Without numba the wrapper must defer to the NumPy kernels.
            assert result is None

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_batched_kernel_rejects_unavailable_explicit_backend(self, graph):
        hypergraph, _, adjacency = graph
        with pytest.raises(KernelBackendError):
            count_exact_batched(hypergraph.csr(), adjacency, backend=BACKEND_NUMBA)

    def test_batched_kernel_backend_argument_is_bit_identical(self, graph):
        hypergraph, _, adjacency = graph
        csr = hypergraph.csr()
        default = count_exact_batched(csr, adjacency)
        explicit = count_exact_batched(csr, adjacency, backend=BACKEND_NUMPY)
        auto = count_exact_batched(csr, adjacency, backend=BACKEND_AUTO)
        assert np.array_equal(default, explicit)
        assert np.array_equal(default, auto)


class TestCliFlag:
    def test_count_with_kernel_backend_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.hypergraph import io as hio

        hypergraph = generate_uniform_random(num_nodes=20, num_hyperedges=25, seed=5)
        path = tmp_path / "graph.txt"
        hio.write_plain(hypergraph, path)
        assert main(["count", str(path), "--kernel-backend", "numpy"]) == 0
        assert "total instances" in capsys.readouterr().out
        # The flag installed a process-wide default.
        assert get_backend() == BACKEND_NUMPY

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_unavailable_backend_is_a_clean_cli_error(self, tmp_path, capsys):
        from repro.cli import main
        from repro.hypergraph import io as hio

        hypergraph = generate_uniform_random(num_nodes=10, num_hyperedges=12, seed=5)
        path = tmp_path / "graph.txt"
        hio.write_plain(hypergraph, path)
        assert main(["count", str(path), "--kernel-backend", "numba"]) == 1
        assert "numba" in capsys.readouterr().err


class TestWorkerPayload:
    def test_payload_carries_and_honors_the_backend(self, small_random_hypergraph):
        from repro.store.executors import WorkerPayload, execute_payload

        csr = small_random_hypergraph.csr()
        payload = WorkerPayload(
            edge_ptr=csr.edge_ptr,
            edge_nodes=csr.edge_nodes,
            dataset=small_random_hypergraph.name,
            spec=spec_to_dict(CountSpec()),
            store_dir=None,
            kernel_backend=BACKEND_NUMPY,
        )
        result = execute_payload(payload)
        baseline = MotifEngine(small_random_hypergraph, store=False).count().counts
        assert result.counts == baseline

    def test_server_ships_the_resolved_backend(self, small_random_hypergraph):
        from repro.store.serve import EngineServer, ServeRequest

        server = EngineServer(store=False)
        request = ServeRequest(source=small_random_hypergraph, spec=CountSpec())
        payload = server._payload_for(request)
        assert payload.kernel_backend == get_backend()
