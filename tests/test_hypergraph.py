"""Tests for the Hypergraph container."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EmptyHyperedgeError,
    UnknownHyperedgeError,
    UnknownNodeError,
)
from repro.hypergraph import Hypergraph


class TestConstruction:
    def test_basic_sizes(self, paper_hypergraph):
        assert paper_hypergraph.num_hyperedges == 4
        assert paper_hypergraph.num_nodes == 8

    def test_empty_hypergraph_is_allowed(self):
        empty = Hypergraph([])
        assert empty.num_nodes == 0
        assert empty.num_hyperedges == 0

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(EmptyHyperedgeError):
            Hypergraph([{1, 2}, set()])

    def test_duplicate_nodes_within_edge_collapse(self):
        hypergraph = Hypergraph([[1, 1, 2]])
        assert hypergraph.hyperedge_size(0) == 2

    def test_name_and_repr(self):
        hypergraph = Hypergraph([{1}], name="demo")
        assert hypergraph.name == "demo"
        assert "demo" in repr(hypergraph)

    def test_equality_ignores_name(self):
        first = Hypergraph([{1, 2}], name="a")
        second = Hypergraph([{2, 1}], name="b")
        assert first == second
        assert hash(first) == hash(second)


class TestNodeSide:
    def test_memberships(self, paper_hypergraph):
        assert set(paper_hypergraph.memberships("L")) == {0, 1, 2}
        assert paper_hypergraph.degree("L") == 3
        assert paper_hypergraph.degree("S") == 1

    def test_unknown_node_raises(self, paper_hypergraph):
        with pytest.raises(UnknownNodeError):
            paper_hypergraph.memberships("X")
        assert not paper_hypergraph.has_node("X")
        assert "X" not in paper_hypergraph

    def test_degrees_mapping(self, paper_hypergraph):
        degrees = paper_hypergraph.degrees()
        assert degrees["F"] == 2
        assert sum(degrees.values()) == sum(paper_hypergraph.hyperedge_sizes())

    def test_neighbors_of_node(self, paper_hypergraph):
        neighbors = paper_hypergraph.neighbors_of_node("K")
        assert neighbors == frozenset({"L", "F", "H"})


class TestEdgeSide:
    def test_hyperedge_lookup(self, paper_hypergraph):
        assert paper_hypergraph.hyperedge(0) == frozenset({"L", "K", "F"})
        assert paper_hypergraph.hyperedge_size(3) == 3

    def test_bad_index_raises(self, paper_hypergraph):
        with pytest.raises(UnknownHyperedgeError):
            paper_hypergraph.hyperedge(4)
        with pytest.raises(TypeError):
            paper_hypergraph.hyperedge("0")

    def test_adjacency_and_overlap(self, paper_hypergraph):
        assert paper_hypergraph.are_adjacent(0, 1)
        assert paper_hypergraph.overlap_size(0, 1) == 2  # {L, K}
        assert not paper_hypergraph.are_adjacent(1, 3)
        assert paper_hypergraph.overlap_size(1, 3) == 0

    def test_incident_hyperedges(self, paper_hypergraph):
        assert paper_hypergraph.incident_hyperedges(0) == frozenset({1, 2, 3})
        assert paper_hypergraph.incident_hyperedges(3) == frozenset({0})

    def test_iteration(self, paper_hypergraph):
        assert len(list(paper_hypergraph)) == 4
        assert len(paper_hypergraph) == 4


class TestDerivation:
    def test_restricted_to_hyperedges(self, paper_hypergraph):
        restricted = paper_hypergraph.restricted_to_hyperedges([0, 3])
        assert restricted.num_hyperedges == 2
        assert restricted.hyperedge(1) == paper_hypergraph.hyperedge(3)

    def test_restricted_rejects_bad_index(self, paper_hypergraph):
        with pytest.raises(UnknownHyperedgeError):
            paper_hypergraph.restricted_to_hyperedges([0, 9])

    def test_with_name(self, paper_hypergraph):
        renamed = paper_hypergraph.with_name("other")
        assert renamed.name == "other"
        assert renamed == paper_hypergraph
