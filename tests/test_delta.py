"""Parity pins for the incremental delta engine (:mod:`repro.fastcore.delta`).

The delta engine's whole contract is one sentence: after any sequence of
``apply_delta`` calls, ``state.counts`` is **bit-identical** to a
from-scratch exact count of the accumulated graph. Every test here holds
the engine to that sentence — against the reference counter, across batch
splits, node reshuffles, fresh nodes, and empty deltas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.counting.exact import count_exact
from repro.exceptions import EmptyHyperedgeError
from repro.fastcore.delta import DeltaState, apply_delta, initial_state
from repro.hypergraph import Hypergraph
from repro.utils.rng import ensure_rng


def random_edges(rng, num_edges, num_nodes, max_size=5):
    """Distinct random hyperedges (h-motifs require distinct edges)."""
    seen = set()
    edges = []
    while len(edges) < num_edges:
        size = int(rng.integers(1, max_size + 1))
        edge = frozenset(
            int(n) for n in rng.choice(num_nodes, size=size, replace=False)
        )
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)
    return edges


def reference_counts(edges):
    if not edges:
        return np.zeros(26, dtype=np.float64)
    return count_exact(Hypergraph(list(edges))).to_array()


class TestDeltaParity:
    def test_initial_state_matches_reference(self):
        rng = ensure_rng(7)
        edges = random_edges(rng, 60, 25)
        state = initial_state(edges)
        np.testing.assert_array_equal(state.counts, reference_counts(edges))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch", [1, 3, 17])
    def test_growing_chain_is_bit_identical_at_every_step(self, seed, batch):
        rng = ensure_rng(seed)
        edges = random_edges(rng, 90, 30)
        state = initial_state()
        accumulated = []
        for start in range(0, len(edges), batch):
            delta = edges[start : start + batch]
            accumulated.extend(delta)
            apply_delta(state, delta)
            np.testing.assert_array_equal(
                state.counts,
                reference_counts(accumulated),
                err_msg=f"diverged after {len(accumulated)} edges (batch={batch})",
            )

    def test_split_point_never_changes_the_answer(self):
        """One big delta == many small ones == from-scratch, bitwise."""
        rng = ensure_rng(11)
        edges = random_edges(rng, 70, 24)
        one_shot = initial_state(edges)
        for split in (1, 7, 35, 69):
            state = initial_state(edges[:split])
            apply_delta(state, edges[split:])
            np.testing.assert_array_equal(state.counts, one_shot.counts)

    def test_deltas_that_introduce_fresh_nodes(self):
        """Added edges over entirely-new node labels extend the id map."""
        base = [frozenset({"a", "b"}), frozenset({"b", "c", "d"})]
        state = initial_state(base)
        delta = [frozenset({"x", "y", "z"}), frozenset({"a", "x"}), frozenset({"q"})]
        stats = apply_delta(state, delta)
        assert stats.added_nodes == 4  # x, y, z, q
        np.testing.assert_array_equal(state.counts, reference_counts(base + delta))

    def test_counts_invariant_under_node_relabeling(self):
        """Shuffled node labels count identically (size/intersection only)."""
        rng = ensure_rng(3)
        edges = random_edges(rng, 50, 20)
        relabel = {old: new for new, old in enumerate(rng.permutation(20))}
        shuffled = [frozenset(relabel[int(n)] for n in edge) for edge in edges]
        plain, renamed = initial_state(), initial_state()
        for start in range(0, len(edges), 10):
            apply_delta(plain, edges[start : start + 10])
            apply_delta(renamed, shuffled[start : start + 10])
        np.testing.assert_array_equal(plain.counts, renamed.counts)

    def test_empty_delta_is_a_noop(self):
        rng = ensure_rng(5)
        edges = random_edges(rng, 30, 15)
        state = initial_state(edges)
        before = state.counts.copy()
        stats = apply_delta(state, [])
        assert stats.added_edges == 0 and stats.affected_anchors == 0
        np.testing.assert_array_equal(state.counts, before)
        assert state.num_edges == len(edges)

    def test_empty_hyperedge_in_delta_is_rejected(self):
        state = initial_state([frozenset({1, 2})])
        with pytest.raises(EmptyHyperedgeError):
            apply_delta(state, [frozenset()])


class TestDeltaStats:
    def test_stats_account_for_the_work_done(self):
        base = [frozenset({1, 2, 3}), frozenset({4, 5}), frozenset({6, 7})]
        state = initial_state(base)
        # One added edge overlapping the first two base edges: both become
        # invalidated anchors; the disjoint third edge stays untouched.
        stats = apply_delta(state, [frozenset({2, 4})])
        assert stats.added_edges == 1
        assert stats.total_edges == 4
        assert stats.invalidated_anchors == 2
        assert stats.affected_anchors == 3  # the two old anchors + the new edge
        np.testing.assert_array_equal(
            state.counts, reference_counts(base + [frozenset({2, 4})])
        )

    def test_disjoint_delta_invalidates_nothing(self):
        base = [frozenset({1, 2}), frozenset({2, 3})]
        state = initial_state(base)
        stats = apply_delta(state, [frozenset({10, 11})])
        assert stats.invalidated_anchors == 0
        assert stats.affected_anchors == 1
        np.testing.assert_array_equal(
            state.counts, reference_counts(base + [frozenset({10, 11})])
        )

    def test_state_starts_empty_and_reports_edges(self):
        state = initial_state()
        assert isinstance(state, DeltaState)
        assert state.num_edges == 0
        np.testing.assert_array_equal(state.counts, np.zeros(26))
