"""Parity and behavior tests for the parallel + async serving executor.

The headline guarantee of the serving layer: ``submit()`` with the thread or
process backend returns **bit-identical** results — counts, profiles,
comparison rows — and identical ordering vs. the serial backend, for exact
and integer-seeded specs. The suite also pins the async front door
(:meth:`EngineServer.submit_async`), executor validation, the LRU engine
pool's evict-then-rebuild-from-disk path, and per-batch dedup accounting.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.api import CompareSpec, CountSpec, PredictSpec, ProfileSpec
from repro.api.results import CompareResult, CountResult, ProfileResult
from repro.exceptions import SpecError
from repro.generators import generate_uniform_random
from repro.store import ArtifactStore
from repro.store.executors import (
    SERVE_BACKENDS,
    hypergraph_from_csr_rows,
    resolve_serve_executor,
)
from repro.store.serve import BatchFuture, EngineServer, ServeRequest

PARALLEL_BACKENDS = ("thread", "process")


def _make_hypergraph(seed: int = 0, num_hyperedges: int = 40):
    return generate_uniform_random(
        num_nodes=24, num_hyperedges=num_hyperedges, seed=seed
    )


@pytest.fixture(scope="module")
def datasets():
    return [_make_hypergraph(seed) for seed in range(3)]


@pytest.fixture(scope="module")
def mixed_requests(datasets):
    """Exact + seeded sampling counts, a seeded profile and compare, + dupes."""
    specs = [
        CountSpec(),
        CountSpec(algorithm="mochy-a+", num_samples=40, seed=0),
        CountSpec(algorithm="mochy-a", num_samples=30, seed=5),
        ProfileSpec(num_random=2, seed=0),
        CompareSpec(num_random=2, seed=1),
    ]
    requests = [
        ServeRequest(dataset, spec) for dataset in datasets for spec in specs
    ]
    # Duplicates exercise dedup fan-out alongside the parallel execution.
    requests.append(ServeRequest(datasets[0], CountSpec()))
    requests.append(ServeRequest(datasets[1], ProfileSpec(num_random=2, seed=0)))
    return requests


def _assert_results_bit_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for expected, actual in zip(reference, candidate):
        assert type(actual) is type(expected)
        assert actual.dataset == expected.dataset
        if isinstance(expected, CountResult):
            assert np.array_equal(
                actual.counts.to_array(), expected.counts.to_array()
            )
            assert actual.num_samples == expected.num_samples
            assert actual.algorithm == expected.algorithm
        elif isinstance(expected, ProfileResult):
            assert np.array_equal(actual.profile.values, expected.profile.values)
            assert np.array_equal(
                actual.profile.significances, expected.profile.significances
            )
            assert np.array_equal(
                actual.profile.real_counts.to_array(),
                expected.profile.real_counts.to_array(),
            )
        elif isinstance(expected, CompareResult):
            assert actual.report.rows == expected.report.rows
        else:  # pragma: no cover - the suite only serves the three kinds
            raise AssertionError(f"unexpected result type {type(expected)}")


class TestBackendParity:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parallel_matches_serial_bit_identically(
        self, tmp_path, mixed_requests, backend
    ):
        serial = EngineServer(store=ArtifactStore(tmp_path / "serial")).submit(
            mixed_requests
        )
        parallel = EngineServer(store=ArtifactStore(tmp_path / backend)).submit(
            mixed_requests, workers=4, backend=backend
        )
        _assert_results_bit_identical(serial, parallel)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_cold_provenance_matches_serial(self, tmp_path, datasets, backend):
        """Cold-batch cache provenance agrees modulo tier (all computed).

        Uses units with no batch-internal sharing: when one unit's work
        feeds another's (a profile's internal count serving a CountSpec
        slot), *which* unit computes first is scheduling-dependent and only
        the payloads — not the provenance flags — are deterministic.
        """
        requests = [
            ServeRequest(dataset, spec)
            for dataset in datasets
            for spec in (
                CountSpec(),
                CountSpec(algorithm="mochy-a+", num_samples=40, seed=0),
            )
        ]
        serial = EngineServer(store=ArtifactStore(tmp_path / "serial")).submit(
            requests
        )
        parallel = EngineServer(store=ArtifactStore(tmp_path / backend)).submit(
            requests, workers=4, backend=backend
        )
        for expected, actual in zip(serial, parallel):
            assert not expected.from_cache
            assert actual.from_cache == expected.from_cache

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_storeless_server_parity(self, mixed_requests, backend):
        serial = EngineServer(store=False).submit(mixed_requests)
        parallel = EngineServer(store=False).submit(
            mixed_requests, workers=3, backend=backend
        )
        _assert_results_bit_identical(serial, parallel)

    def test_process_workers_populate_the_shared_store(self, tmp_path, datasets):
        """Worker processes persist under the parent's fingerprints."""
        store = ArtifactStore(tmp_path / "store")
        requests = [
            ServeRequest(dataset, ProfileSpec(num_random=2, seed=0))
            for dataset in datasets
        ]
        cold = EngineServer(store=store).submit(
            requests, workers=3, backend="process"
        )
        assert all(not result.from_cache for result in cold)
        kinds = {entry.kind for entry in store.entries()}
        assert kinds == {"projection", "count", "null-counts", "profile"}
        # A fresh serial server over the same directory warm-starts from the
        # worker-written artifacts, bit-identically.
        warm = EngineServer(store=ArtifactStore(tmp_path / "store")).submit(requests)
        assert all(result.from_cache for result in warm)
        assert all(result.cache_tier == "disk" for result in warm)
        _assert_results_bit_identical(cold, warm)

    def test_rebuilt_hypergraph_shares_fingerprint_and_results(self):
        """The process-worker reconstruction invariant, pinned directly."""
        hypergraph = _make_hypergraph(seed=9)
        csr = hypergraph.csr()
        rebuilt = hypergraph_from_csr_rows(
            csr.edge_ptr, csr.edge_nodes, hypergraph.name
        )
        assert rebuilt.fingerprint() == hypergraph.fingerprint()
        assert np.array_equal(rebuilt.csr().edge_nodes, csr.edge_nodes)
        assert np.array_equal(rebuilt.csr().edge_ptr, csr.edge_ptr)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_dedup_accounting_is_backend_independent(
        self, mixed_requests, backend
    ):
        serial = EngineServer(store=False)
        serial.submit(mixed_requests)
        parallel = EngineServer(store=False)
        parallel.submit(mixed_requests, workers=4, backend=backend)
        assert parallel.stats.requests == serial.stats.requests
        assert parallel.stats.unique == serial.stats.unique
        assert parallel.stats.deduplicated == serial.stats.deduplicated


class TestExecutorValidation:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(SpecError):
            EngineServer(store=False).submit([], backend="gpu")

    @pytest.mark.parametrize("workers", [0, -1, 1.5, True])
    def test_invalid_workers_are_rejected(self, workers):
        with pytest.raises(SpecError):
            EngineServer(store=False).submit([], workers=workers)

    def test_backend_defaults(self):
        assert resolve_serve_executor(None, 1).name == "serial"
        assert resolve_serve_executor(None, 4).name == "thread"
        for backend in SERVE_BACKENDS:
            assert resolve_serve_executor(backend, 2).name == backend

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_predict_spec_is_rejected_before_workers_run(self, backend):
        server = EngineServer(store=False)
        with pytest.raises(SpecError):
            server.submit(
                [ServeRequest(_make_hypergraph(), PredictSpec())],
                workers=2,
                backend=backend,
            )

    def test_empty_batch(self):
        assert EngineServer(store=False).submit([], workers=4, backend="thread") == []


class TestAsyncServing:
    def test_submit_async_matches_sync(self, datasets):
        with EngineServer(store=False) as server:
            requests = [ServeRequest(datasets[0], CountSpec())]
            future = server.submit_async(requests)
            assert isinstance(future, BatchFuture)
            expected = EngineServer(store=False).submit(requests)
            _assert_results_bit_identical(expected, future.result(timeout=60))
            assert future.done()
            assert future.exception() is None

    def test_overlapping_batches(self, tmp_path, datasets):
        with EngineServer(store=ArtifactStore(tmp_path / "s")) as server:
            futures = [
                server.submit_async(
                    [ServeRequest(dataset, CountSpec())], workers=2, backend="thread"
                )
                for dataset in datasets
            ]
            results = [future.result(timeout=60) for future in futures]
        for dataset, (result,) in zip(datasets, results):
            assert result.dataset == dataset.name

    def test_future_is_awaitable(self, datasets):
        async def go(server):
            return await server.submit_async(
                [ServeRequest(datasets[0], CountSpec())]
            )

        with EngineServer(store=False) as server:
            results = asyncio.run(go(server))
        expected = EngineServer(store=False).submit(
            [ServeRequest(datasets[0], CountSpec())]
        )
        _assert_results_bit_identical(expected, results)

    def test_async_batch_failures_surface_in_the_future(self):
        with EngineServer(store=False) as server:
            future = server.submit_async(
                [ServeRequest(_make_hypergraph(), PredictSpec())]
            )
            assert isinstance(future.exception(timeout=60), SpecError)
            with pytest.raises(SpecError):
                future.result(timeout=60)

    def test_invalid_executor_arguments_raise_in_the_caller(self):
        with EngineServer(store=False) as server:
            with pytest.raises(SpecError):
                server.submit_async([], backend="gpu")

    def test_close_is_idempotent(self):
        server = EngineServer(store=False)
        server.submit_async([])
        server.close()
        server.close()

    def test_generator_requests_are_snapshotted(self, datasets):
        with EngineServer(store=False) as server:
            future = server.submit_async(
                ServeRequest(dataset, CountSpec()) for dataset in datasets
            )
            assert len(future.result(timeout=60)) == len(datasets)


class TestEnginePool:
    def test_evicted_engine_rebuilds_from_the_disk_tier(self, tmp_path):
        """The LRU satellite: eviction loses nothing that hit the store."""
        store = ArtifactStore(tmp_path / "s")
        server = EngineServer(store=store, max_engines=1)
        first, second = _make_hypergraph(1), _make_hypergraph(2)
        cold = server.count([first])[0]
        server.count([second])  # evicts the engine for `first`
        assert server.stats.engines_evicted == 1
        # Drop the shared memory tier too, so the rebuilt engine can only be
        # served by the persistent tier.
        store.clear_memory()
        warm = server.count([_make_hypergraph(1)])[0]
        assert server.stats.engines_built == 3
        assert warm.from_cache and warm.cache_tier == "disk"
        assert np.array_equal(warm.counts.to_array(), cold.counts.to_array())

    @pytest.mark.parametrize("backend", ("serial",) + PARALLEL_BACKENDS)
    def test_dedup_executes_shared_work_once_per_batch(self, tmp_path, backend):
        """The dedup satellite: duplicate slots never recompute or re-project."""
        server = EngineServer(store=ArtifactStore(tmp_path / backend))
        hypergraph = _make_hypergraph(3)
        batch = [ServeRequest(hypergraph, CountSpec())] * 4 + [
            ServeRequest(hypergraph, ProfileSpec(num_random=2, seed=0))
        ]
        results = server.submit(batch, workers=2, backend=backend)
        assert server.stats.requests == 5
        assert server.stats.unique == 2
        assert server.stats.deduplicated == 3
        if backend != "process":
            # Local backends run on the pooled engine: the projection was
            # built exactly once for the whole batch.
            engine = server.engine_for(hypergraph)
            assert engine.num_projection_builds <= 1
        for result in results[:4]:
            assert np.array_equal(
                result.counts.to_array(), results[0].counts.to_array()
            )

    def test_duplicate_slots_get_defensive_copies_under_parallel_backends(
        self, datasets
    ):
        server = EngineServer(store=False)
        hypergraph = datasets[0]
        first, second = server.submit(
            [ServeRequest(hypergraph, CountSpec())] * 2,
            workers=2,
            backend="thread",
        )
        expected = second.counts.to_array().copy()
        first.counts.increment(1, 1000.0)
        assert np.array_equal(second.counts.to_array(), expected)


class TestWorkerPool:
    """Persistent pools: worker reuse across batches, lifecycle, validation."""

    def test_thread_workers_are_reused_across_batches(self):
        from repro.store.executors import ServeUnit, WorkerPool

        def barrier_batch():
            # Both workers must participate in the batch (the barrier only
            # releases once two units run concurrently), so each batch
            # reports the full worker-thread set.
            barrier = threading.Barrier(2)

            def run():
                barrier.wait(timeout=10)
                return threading.get_ident()

            return [
                ServeUnit(run_local=run, make_payload=None) for _ in range(2)
            ]

        with WorkerPool("thread", 2) as pool:
            executor = pool.serve_executor()
            first = set(executor.map(barrier_batch()))
            underlying = pool.executor()
            second = set(executor.map(barrier_batch()))
            # Same concurrent.futures pool object, same two worker threads.
            assert pool.executor() is underlying
            assert len(first) == 2
            assert first == second
        assert pool.closed

    def test_closed_pool_rejects_work(self):
        from repro.store.executors import WorkerPool

        pool = WorkerPool("thread", 2)
        pool.close()
        with pytest.raises(SpecError, match="closed"):
            pool.executor()
        pool.close()  # idempotent

    def test_pool_validation(self):
        from repro.store.executors import WorkerPool

        with pytest.raises(SpecError, match="serial"):
            WorkerPool("serial", 2)
        with pytest.raises(SpecError, match="backend"):
            WorkerPool("fibers", 2)
        with pytest.raises(SpecError, match="workers"):
            WorkerPool("thread", 0)

    def test_engine_server_uses_and_closes_its_pool(self, datasets):
        from repro.store.executors import WorkerPool

        pool = WorkerPool("thread", 2)
        server = EngineServer(store=False, pool=pool)
        assert server.worker_pool is pool
        assert not pool.started
        requests = [ServeRequest(datasets[0], CountSpec())]
        serial = EngineServer(store=False).submit(requests)
        pooled = server.submit(requests)  # workers=None -> the pool
        _assert_results_bit_identical(serial, pooled)
        assert pool.started
        server.close()
        assert pool.closed

    def test_explicit_workers_bypass_the_pool(self, datasets):
        # An explicit workers count is a concurrency cap the caller must
        # actually get, so it runs on an ephemeral pool of that exact width
        # instead of the persistent pool's.
        from repro.store.executors import WorkerPool

        with EngineServer(store=False, pool=WorkerPool("thread", 4)) as server:
            requests = [ServeRequest(datasets[0], CountSpec())]
            explicit = server.submit(requests, workers=2, backend="thread")
            assert not server.worker_pool.started
            pooled = server.submit(requests)
            assert server.worker_pool.started
            _assert_results_bit_identical(explicit, pooled)

    def test_process_pool_reuses_worker_processes(self, tmp_path, datasets):
        from repro.store.executors import WorkerPool

        store = ArtifactStore(tmp_path / "store")
        with EngineServer(store=store, pool=WorkerPool("process", 2)) as server:
            requests = [
                ServeRequest(datasets[0], CountSpec()),
                ServeRequest(datasets[1], CountSpec()),
            ]
            first = server.submit(requests)
            underlying = server.worker_pool.executor()
            second = server.submit(requests)
            assert server.worker_pool.executor() is underlying
        serial = EngineServer(store=False).submit(requests)
        _assert_results_bit_identical(serial, first)
        _assert_results_bit_identical(serial, second)


class TestSubmitStream:
    """Streaming submission: completion-order parity, dedup fan-out, errors."""

    @pytest.mark.parametrize("backend", (None, "thread"))
    def test_stream_payloads_match_submit(self, datasets, mixed_requests, backend):
        reference = EngineServer(store=False).submit(mixed_requests)
        with EngineServer(store=False) as server:
            workers = None if backend is None else 2
            streamed = dict(
                server.submit_stream(mixed_requests, workers=workers, backend=backend)
            )
        ordered = [streamed[index] for index in range(len(mixed_requests))]
        _assert_results_bit_identical(reference, ordered)

    def test_stream_covers_every_duplicate_slot_once(self, datasets):
        requests = [
            ServeRequest(datasets[0], CountSpec()),
            ServeRequest(datasets[0], CountSpec()),
            ServeRequest(datasets[0], CountSpec()),
        ]
        with EngineServer(store=False) as server:
            pairs = list(server.submit_stream(requests))
        assert sorted(index for index, _ in pairs) == [0, 1, 2]
        assert server.stats.unique == 1
        assert server.stats.deduplicated == 2
        # Each slot gets a defensive copy, not an alias.
        outcomes = dict(pairs)
        outcomes[0].counts.increment(1, 1000.0)
        assert not np.array_equal(
            outcomes[0].counts.to_array(), outcomes[1].counts.to_array()
        )

    def test_stream_raises_without_capture(self, datasets):
        requests = [ServeRequest("no-such-dataset-xyz", CountSpec())]
        with EngineServer(store=False) as server:
            with pytest.raises(Exception, match="no-such-dataset-xyz"):
                list(server.submit_stream(requests))
            assert server.stats.in_flight == 0

    @pytest.mark.parametrize("backend", (None, "thread", "process"))
    def test_capture_errors_isolates_failing_units(self, datasets, backend):
        from repro.store.executors import UnitFailure

        requests = [
            ServeRequest("no-such-dataset-xyz", CountSpec()),
            ServeRequest(datasets[0], CountSpec()),
        ]
        with EngineServer(store=False) as server:
            workers = None if backend is None else 2
            outcomes = dict(
                server.submit_stream(
                    requests, workers=workers, backend=backend, capture_errors=True
                )
            )
        assert isinstance(outcomes[0], UnitFailure)
        assert outcomes[0].error_type == "DatasetError"
        assert "no-such-dataset-xyz" in outcomes[0].message
        assert isinstance(outcomes[1], CountResult)
        assert server.stats.unit_failures == 1
        assert server.stats.in_flight == 0

    def test_in_flight_accounting_brackets_the_stream(self, datasets):
        with EngineServer(store=False) as server:
            stream = server.submit_stream([ServeRequest(datasets[0], CountSpec())])
            assert server.stats.in_flight == 0  # generator not started yet
            first = next(stream)
            assert first[0] == 0
            assert server.stats.in_flight == 1
            with pytest.raises(StopIteration):
                next(stream)
            assert server.stats.in_flight == 0
