"""Property-style parity tests: fast-core kernels vs. the seed implementations.

The fast core (``repro.fastcore``) replaces the object-graph hot paths with
CSR arrays and batched classification. These tests pin the contract down:
on seeded random hypergraphs — including single-node hyperedges and duplicate
hyperedges — the array paths must produce **bit-identical** results to the
per-triple seed implementations kept in :mod:`repro.fastcore.reference`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.counting import (
    count_approx_edge_sampling,
    count_exact,
    count_instances_containing,
    run_edge_sampling,
    run_wedge_sampling,
)
from repro.exceptions import DuplicateHyperedgeError
from repro.fastcore.reference import (
    count_containing_reference,
    count_exact_reference,
    count_wedges_reference,
    project_reference,
)
from repro.hypergraph import Hypergraph
from repro.projection import LazyProjection, project, project_parallel

#: Seeds for the random parity corpus (≥ 20 hypergraphs).
PARITY_SEEDS = tuple(range(24))


def random_hypergraph(seed: int, allow_duplicates: bool = False) -> Hypergraph:
    """A seeded random hypergraph with sizes 1..5 (single-node edges included)."""
    rng = np.random.default_rng(seed)
    num_nodes = int(rng.integers(6, 40))
    num_edges = int(rng.integers(4, 55))
    edges = []
    for _ in range(num_edges):
        size = int(rng.integers(1, 6))
        edges.append(frozenset(rng.choice(num_nodes, size=size, replace=False).tolist()))
    if not allow_duplicates:
        seen = set()
        unique = []
        for edge in edges:
            if edge not in seen:
                seen.add(edge)
                unique.append(edge)
        edges = unique
    return Hypergraph(edges, name=f"parity-{seed}")


@pytest.fixture(params=PARITY_SEEDS, ids=lambda seed: f"seed{seed}")
def parity_case(request):
    hypergraph = random_hypergraph(request.param)
    return hypergraph, project(hypergraph), project_reference(hypergraph)


class TestProjectionParity:
    def test_array_projection_matches_dict_projection(self, parity_case):
        _, fast, reference = parity_case
        assert fast == reference

    def test_parallel_projection_matches(self, parity_case):
        hypergraph, fast, _ = parity_case
        assert project_parallel(hypergraph, num_workers=2) == fast


class TestExactParity:
    def test_count_exact_bit_identical(self, parity_case):
        hypergraph, fast_projection, reference_projection = parity_case
        fast = count_exact(hypergraph, fast_projection)
        reference = count_exact_reference(hypergraph, reference_projection)
        assert fast.to_array().tolist() == reference.to_array().tolist()

    def test_count_exact_with_lazy_projection_matches(self, parity_case):
        hypergraph, fast_projection, _ = parity_case
        lazy = LazyProjection(hypergraph, budget=4)
        assert count_exact(hypergraph, lazy) == count_exact(
            hypergraph, fast_projection
        )

    def test_count_instances_containing_matches(self, parity_case):
        hypergraph, fast_projection, reference_projection = parity_case
        for index in range(min(6, hypergraph.num_hyperedges)):
            fast = count_instances_containing(hypergraph, index, fast_projection)
            reference = count_containing_reference(
                hypergraph, reference_projection, [index]
            )
            assert fast == reference


class TestSamplingParity:
    def test_edge_sampling_bit_identical_on_fixed_sample(self, parity_case):
        hypergraph, fast_projection, reference_projection = parity_case
        rng = np.random.default_rng(99)
        sample = rng.integers(0, hypergraph.num_hyperedges, size=12).tolist()
        fast = run_edge_sampling(
            hypergraph, 12, projection=fast_projection, sampled_indices=sample
        )
        reference_raw = count_containing_reference(
            hypergraph, reference_projection, sample
        )
        assert fast.raw_increments == reference_raw.total()
        expected = reference_raw.scaled(hypergraph.num_hyperedges / (3.0 * 12))
        assert fast.estimates == expected

    def test_wedge_sampling_bit_identical_on_fixed_sample(self, parity_case):
        hypergraph, fast_projection, reference_projection = parity_case
        wedges = fast_projection.hyperwedge_list()
        if not wedges:
            pytest.skip("no hyperwedges in this draw")
        rng = np.random.default_rng(7)
        positions = rng.integers(0, len(wedges), size=10)
        sample = [wedges[int(position)] for position in positions]
        fast = run_wedge_sampling(
            hypergraph,
            10,
            projection=fast_projection,
            hyperwedges=wedges,
            sampled_wedges=sample,
        )
        reference_raw = count_wedges_reference(
            hypergraph, reference_projection, sample
        )
        assert fast.raw_increments == reference_raw.total()

    def test_full_edge_sample_recovers_exact_counts(self, parity_case):
        """Sampling every hyperedge once rescales back to exact counts."""
        hypergraph, fast_projection, _ = parity_case
        num_edges = hypergraph.num_hyperedges
        estimate = count_approx_edge_sampling(
            hypergraph,
            num_samples=num_edges,
            projection=fast_projection,
            sampled_indices=list(range(num_edges)),
        )
        exact = count_exact(hypergraph, fast_projection)
        assert estimate.to_dict() == pytest.approx(exact.to_dict())


class TestCornerCases:
    def test_duplicate_hyperedges_raise_on_both_paths(self):
        hypergraph = Hypergraph([{1, 2, 3}, {1, 2, 3}, {2, 3, 4}])
        with pytest.raises(DuplicateHyperedgeError):
            count_exact(hypergraph)
        with pytest.raises(DuplicateHyperedgeError):
            count_exact_reference(hypergraph)

    def test_duplicate_single_node_edges_without_triples_count_zero(self):
        """Two identical single-node edges form a wedge but no triple."""
        hypergraph = Hypergraph([{5}, {5}, {1, 2}])
        fast = count_exact(hypergraph)
        reference = count_exact_reference(hypergraph)
        assert fast == reference
        assert fast.total() == 0

    def test_single_node_edges_in_triples(self):
        """Single-node hyperedges participate in instances like any other."""
        hypergraph = Hypergraph([{0}, {0, 1}, {1, 2, 3}, {3}, {2, 3, 4}])
        fast = count_exact(hypergraph)
        reference = count_exact_reference(hypergraph)
        assert fast.to_array().tolist() == reference.to_array().tolist()
        assert fast.total() > 0

    def test_duplicate_random_hypergraphs_agree_on_behavior(self):
        """With duplicates kept, both paths either raise identically or agree."""
        for seed in range(6):
            hypergraph = random_hypergraph(seed + 1000, allow_duplicates=True)
            try:
                reference = count_exact_reference(hypergraph)
            except DuplicateHyperedgeError:
                with pytest.raises(DuplicateHyperedgeError):
                    count_exact(hypergraph)
            else:
                assert count_exact(hypergraph) == reference

    def test_empty_and_disjoint_hypergraphs(self):
        assert count_exact(Hypergraph([])).total() == 0
        disjoint = Hypergraph([[1, 2], [3, 4], [5]])
        assert count_exact(disjoint) == count_exact_reference(disjoint)


class TestPairChunking:
    def test_chunk_iterator_matches_triu_indices(self, monkeypatch):
        from repro.fastcore import kernels

        monkeypatch.setattr(kernels, "_PAIR_CHUNK", 7)
        for degree in (2, 3, 9, 23):
            chunks = list(kernels._iter_triu_chunks(degree))
            left = np.concatenate([chunk[0] for chunk in chunks])
            right = np.concatenate([chunk[1] for chunk in chunks])
            expected_left, expected_right = np.triu_indices(degree, 1)
            assert np.array_equal(left, expected_left)
            assert np.array_equal(right, expected_right)

    def test_counts_identical_under_forced_chunking(self, monkeypatch):
        """Tiny pair chunks must not change any count (hub-anchor memory path)."""
        from repro.fastcore import kernels

        hypergraph = random_hypergraph(77)
        expected = count_exact(hypergraph)
        monkeypatch.setattr(kernels, "_PAIR_CHUNK", 5)
        assert count_exact(hypergraph).to_array().tolist() == expected.to_array().tolist()
        assert expected == count_exact_reference(hypergraph)

    def test_projection_aggregation_identical_under_forced_slabs(self):
        """Slab-bounded pair aggregation (hub-node memory path) is exact."""
        from repro.fastcore.projection import aggregate_cooccurrence

        hypergraph = random_hypergraph(78)
        csr = hypergraph.csr()
        full = aggregate_cooccurrence(csr.node_ptr, csr.node_edges, csr.num_edges)
        slabbed = aggregate_cooccurrence(
            csr.node_ptr, csr.node_edges, csr.num_edges, max_pairs=3
        )
        assert np.array_equal(full[0], slabbed[0])
        assert np.array_equal(full[1], slabbed[1])


class TestPopcountFallback:
    def test_byte_popcount_matches_native(self):
        """The numpy<2 byte-LUT popcount agrees with np.bitwise_count."""
        from repro.fastcore import kernels

        rng = np.random.default_rng(5)
        masks = rng.integers(0, 2**63, size=(40, 3), dtype=np.int64).astype(
            np.uint64
        )
        assert kernels._popcount_rows_bytes(masks).tolist() == [
            bin(int(a) | (int(b) << 64) | (int(c) << 128)).count("1")
            for a, b, c in masks
        ]

    def test_counts_identical_under_fallback_popcount(self, monkeypatch):
        """Hyperedges wider than 64 nodes pin the multi-word fallback path."""
        from repro.fastcore import kernels

        rng = np.random.default_rng(3)
        wide = [rng.choice(150, size=90, replace=False).tolist() for _ in range(4)]
        small = [rng.choice(150, size=4, replace=False).tolist() for _ in range(30)]
        hypergraph = Hypergraph(wide + small, name="wide")
        expected = count_exact(hypergraph)
        monkeypatch.setattr(kernels, "_popcount_rows", kernels._popcount_rows_bytes)
        assert count_exact(hypergraph).to_array().tolist() == expected.to_array().tolist()
        assert expected == count_exact_reference(hypergraph)
