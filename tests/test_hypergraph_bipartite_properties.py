"""Tests for the bipartite view and structural properties."""

from __future__ import annotations

import pytest

from repro.exceptions import HypergraphError
from repro.hypergraph import (
    BipartiteIncidenceGraph,
    Hypergraph,
    count_hyperwedges,
    degree_distribution,
    density,
    giant_component_fraction,
    hyperedge_connected_components,
    max_hyperedge_size,
    mean_hyperedge_size,
    mean_node_degree,
    node_connected_components,
    size_distribution,
    summarize,
)


class TestBipartite:
    def test_star_expansion_shape(self, paper_hypergraph):
        bipartite = BipartiteIncidenceGraph.from_hypergraph(paper_hypergraph)
        assert bipartite.num_left == paper_hypergraph.num_nodes
        assert bipartite.num_right == paper_hypergraph.num_hyperedges
        assert bipartite.num_edges == sum(paper_hypergraph.hyperedge_sizes())

    def test_degrees_match(self, paper_hypergraph):
        bipartite = BipartiteIncidenceGraph.from_hypergraph(paper_hypergraph)
        assert bipartite.node_degree("L") == paper_hypergraph.degree("L")
        assert bipartite.edge_degree(0) == paper_hypergraph.hyperedge_size(0)

    def test_round_trip(self, paper_hypergraph):
        bipartite = BipartiteIncidenceGraph.from_hypergraph(paper_hypergraph)
        back = bipartite.to_hypergraph()
        assert back == paper_hypergraph

    def test_incidences(self, paper_hypergraph):
        bipartite = BipartiteIncidenceGraph.from_hypergraph(paper_hypergraph)
        incidences = bipartite.incidences()
        assert ("L", 0) in incidences
        assert len(incidences) == bipartite.num_edges

    def test_unknown_lookups_raise(self, paper_hypergraph):
        bipartite = BipartiteIncidenceGraph.from_hypergraph(paper_hypergraph)
        with pytest.raises(HypergraphError):
            bipartite.node_degree("missing")
        with pytest.raises(HypergraphError):
            bipartite.edge_degree(99)

    def test_inconsistent_construction_rejected(self):
        with pytest.raises(HypergraphError):
            BipartiteIncidenceGraph({}, [frozenset({"a"})])

    def test_degree_sequences(self, paper_hypergraph):
        bipartite = BipartiteIncidenceGraph.from_hypergraph(paper_hypergraph)
        node_degrees, edge_degrees = bipartite.degree_sequences()
        assert sum(node_degrees) == sum(edge_degrees)


class TestProperties:
    def test_hyperwedge_count_matches_paper_example(self, paper_hypergraph):
        # The paper states Figure 2(b) has exactly four hyperwedges.
        assert count_hyperwedges(paper_hypergraph) == 4

    def test_distributions(self, paper_hypergraph):
        assert degree_distribution(paper_hypergraph) == {1: 5, 2: 2, 3: 1}
        assert size_distribution(paper_hypergraph) == {3: 4}

    def test_size_summaries(self, paper_hypergraph):
        assert max_hyperedge_size(paper_hypergraph) == 3
        assert mean_hyperedge_size(paper_hypergraph) == pytest.approx(3.0)

    def test_empty_hypergraph_summaries(self):
        empty = Hypergraph([])
        assert max_hyperedge_size(empty) == 0
        assert mean_hyperedge_size(empty) == 0.0
        assert density(empty) == 0.0
        assert mean_node_degree(empty) == 0.0
        assert giant_component_fraction(empty) == 0.0

    def test_connected_components(self):
        hypergraph = Hypergraph([[1, 2], [2, 3], [10, 11]])
        node_components = node_connected_components(hypergraph)
        assert sorted(len(component) for component in node_components) == [2, 3]
        edge_components = hyperedge_connected_components(hypergraph)
        assert sorted(len(component) for component in edge_components) == [1, 2]

    def test_giant_component_fraction(self):
        hypergraph = Hypergraph([[1, 2], [2, 3], [10, 11]])
        assert giant_component_fraction(hypergraph) == pytest.approx(3 / 5)

    def test_density_and_mean_degree(self, paper_hypergraph):
        assert density(paper_hypergraph) == pytest.approx(4 / 8)
        assert mean_node_degree(paper_hypergraph) == pytest.approx(12 / 8)

    def test_summarize(self, paper_hypergraph):
        summary = summarize(paper_hypergraph)
        assert summary.num_nodes == 8
        assert summary.num_hyperedges == 4
        assert summary.num_hyperwedges == 4
        assert summary.as_row()[0] == "figure-2"
