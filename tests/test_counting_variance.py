"""Tests for the variance analysis of the samplers (Theorems 2 and 4)."""

from __future__ import annotations

import pytest

from repro.counting import (
    compute_overlap_statistics,
    count_exact,
    edge_sampling_variance,
    variance_comparison,
    wedge_sampling_variance,
)
from repro.motifs.patterns import NUM_MOTIFS
from repro.projection import project


@pytest.fixture(scope="module")
def statistics():
    from repro.generators import generate_uniform_random

    hypergraph = generate_uniform_random(
        num_nodes=25, num_hyperedges=40, mean_size=3.0, max_size=5, seed=3
    )
    return compute_overlap_statistics(hypergraph), hypergraph


class TestOverlapStatistics:
    def test_counts_match_exact_counter(self, statistics):
        stats, hypergraph = statistics
        assert stats.counts.to_dict() == count_exact(hypergraph).to_dict()

    def test_pair_counts_are_consistent(self, statistics):
        stats, _ = statistics
        for motif in range(1, NUM_MOTIFS + 1):
            total = int(stats.counts[motif])
            total_pairs = total * (total - 1) // 2
            edge_shares = stats.pairs_sharing_edges[motif]
            wedge_shares = stats.pairs_sharing_wedges[motif]
            assert sum(edge_shares.values()) == total_pairs
            assert sum(wedge_shares.values()) == total_pairs
            assert all(value >= 0 for value in edge_shares.values())
            assert all(value >= 0 for value in wedge_shares.values())

    def test_sharing_a_wedge_implies_sharing_two_edges(self, statistics):
        # q1[t] <= p2[t]: a shared hyperwedge means two shared hyperedges.
        stats, _ = statistics
        for motif in range(1, NUM_MOTIFS + 1):
            assert (
                stats.pairs_sharing_wedges[motif][1]
                <= stats.pairs_sharing_edges[motif][2]
            )

    def test_population_sizes_recorded(self, statistics):
        stats, hypergraph = statistics
        assert stats.num_hyperedges == hypergraph.num_hyperedges
        assert stats.num_hyperwedges == project(hypergraph).num_hyperwedges


class TestVarianceFormulas:
    def test_variance_decreases_with_sample_size(self, statistics):
        stats, _ = statistics
        motifs_present = [m for m in range(1, NUM_MOTIFS + 1) if stats.counts[m] > 0]
        motif = motifs_present[0]
        assert edge_sampling_variance(stats, motif, 10) > edge_sampling_variance(
            stats, motif, 100
        )
        assert wedge_sampling_variance(stats, motif, 10) > wedge_sampling_variance(
            stats, motif, 100
        )

    def test_variances_are_positive_for_present_motifs(self, statistics):
        stats, _ = statistics
        for motif in range(1, NUM_MOTIFS + 1):
            if stats.counts[motif] > 0:
                assert edge_sampling_variance(stats, motif, 5) > 0
                assert wedge_sampling_variance(stats, motif, 5) > 0

    def test_invalid_sample_size_rejected(self, statistics):
        stats, _ = statistics
        with pytest.raises(ValueError):
            edge_sampling_variance(stats, 1, 0)
        with pytest.raises(ValueError):
            wedge_sampling_variance(stats, 1, 0)


class TestVarianceComparison:
    def test_wedge_sampling_has_lower_total_variance(self, statistics):
        """The Section 3.3 analysis: Var[MoCHy-A+] <= Var[MoCHy-A] at equal ratio."""
        stats, _ = statistics
        rows = variance_comparison(stats, sampling_ratio=0.2)
        assert rows, "expected at least one motif with instances"
        total_edge = sum(row[1] for row in rows)
        total_wedge = sum(row[2] for row in rows)
        assert total_wedge <= total_edge

    def test_rows_skip_absent_motifs(self, statistics):
        stats, _ = statistics
        rows = variance_comparison(stats, sampling_ratio=0.2)
        present = {row[0] for row in rows}
        for motif in range(1, NUM_MOTIFS + 1):
            if stats.counts[motif] == 0:
                assert motif not in present

    def test_invalid_ratio_rejected(self, statistics):
        stats, _ = statistics
        with pytest.raises(ValueError):
            variance_comparison(stats, sampling_ratio=0)
