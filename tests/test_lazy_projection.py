"""Tests for the lazy (memory-budgeted, memoized) projection of Section 3.4."""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph
from repro.projection import (
    POLICY_DEGREE,
    POLICY_LRU,
    POLICY_RANDOM,
    LazyProjection,
    project,
)


@pytest.fixture
def star_hypergraph() -> Hypergraph:
    """Hub hyperedge 0 overlaps each leaf 1–4; the leaves are pairwise disjoint.

    Projected degrees are therefore known exactly: deg(0) = 4, deg(leaf) = 1,
    which makes eviction-policy behavior fully predictable.
    """
    return Hypergraph(
        [
            {0, 1, 2, 3},
            {0, 10},
            {1, 11},
            {2, 12},
            {3, 13},
        ],
        name="star",
    )


class TestCorrectness:
    @pytest.mark.parametrize("policy", [POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM])
    @pytest.mark.parametrize("budget", [None, 0, 1, 5])
    def test_neighborhoods_match_full_projection(
        self, small_random_hypergraph, policy, budget
    ):
        full = project(small_random_hypergraph)
        lazy = LazyProjection(
            small_random_hypergraph, budget=budget, policy=policy, seed=0
        )
        for i in range(small_random_hypergraph.num_hyperedges):
            assert lazy.neighbors(i) == full.neighbors(i)

    def test_hyperwedge_list_matches_full_projection(self, small_random_hypergraph):
        full = project(small_random_hypergraph)
        lazy = LazyProjection(small_random_hypergraph, budget=3)
        assert sorted(lazy.hyperwedge_list()) == sorted(full.hyperwedge_list())

    def test_overlap_matches(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph)
        assert lazy.overlap(0, 1) == 2
        assert lazy.overlap(1, 3) == 0


class TestMemoization:
    def test_unlimited_budget_computes_each_neighborhood_once(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph)
        for _ in range(3):
            for i in range(paper_hypergraph.num_hyperedges):
                lazy.neighbors(i)
        assert lazy.computations == paper_hypergraph.num_hyperedges
        assert lazy.cache_hits == 2 * paper_hypergraph.num_hyperedges

    def test_zero_budget_recomputes_every_time(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph, budget=0)
        for _ in range(2):
            for i in range(paper_hypergraph.num_hyperedges):
                lazy.neighbors(i)
        assert lazy.cache_size == 0
        assert lazy.computations == 2 * paper_hypergraph.num_hyperedges
        assert lazy.cache_hits == 0

    def test_budget_bounds_cache_size(self, small_random_hypergraph):
        budget = 4
        lazy = LazyProjection(small_random_hypergraph, budget=budget)
        for i in range(small_random_hypergraph.num_hyperedges):
            lazy.neighbors(i)
        assert lazy.cache_size <= budget

    def test_higher_budget_means_fewer_recomputations(self, small_random_hypergraph):
        def total_computations(budget):
            lazy = LazyProjection(small_random_hypergraph, budget=budget, seed=1)
            for _ in range(3):
                for i in range(small_random_hypergraph.num_hyperedges):
                    lazy.neighbors(i)
            return lazy.computations

        assert total_computations(None) <= total_computations(5) <= total_computations(0)

    def test_degree_policy_keeps_high_degree_entries(self, small_random_hypergraph):
        full = project(small_random_hypergraph)
        degrees = full.degrees()
        budget = 3
        lazy = LazyProjection(small_random_hypergraph, budget=budget, policy=POLICY_DEGREE)
        for i in range(small_random_hypergraph.num_hyperedges):
            lazy.neighbors(i)
        cached_degrees = [len(lazy.neighbors(i)) for i in list(lazy._cache)]
        # All retained entries should have degree at least the median degree.
        assert min(cached_degrees) >= sorted(degrees)[len(degrees) // 4]

    def test_prewarm(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph)
        lazy.prewarm(range(paper_hypergraph.num_hyperedges))
        assert lazy.cache_size == paper_hypergraph.num_hyperedges

    def test_invalid_policy_rejected(self, paper_hypergraph):
        with pytest.raises(ValueError):
            LazyProjection(paper_hypergraph, policy="mru")

    def test_negative_budget_rejected(self, paper_hypergraph):
        with pytest.raises(ValueError):
            LazyProjection(paper_hypergraph, budget=-1)

    def test_repr_mentions_policy(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph, budget=2, policy=POLICY_LRU)
        assert "lru" in repr(lazy)


class TestEvictionSemantics:
    """Pin each policy's victim choice, including the budget=1 edge cases."""

    def test_degree_keeps_high_degree_resident_at_budget_one(self, star_hypergraph):
        lazy = LazyProjection(star_hypergraph, budget=1, policy=POLICY_DEGREE)
        lazy.row(0)  # hub, degree 4
        lazy.row(1)  # leaf, degree 1 — must be the victim, not the hub
        assert list(lazy._cache) == [0]

    def test_degree_evicts_the_just_inserted_entry_at_budget_one(
        self, star_hypergraph
    ):
        # With the hub resident, every subsequent leaf insert makes the leaf
        # itself the minimum-degree entry; the intended behavior is to evict
        # it immediately (cheap to recompute) and keep the hub.
        lazy = LazyProjection(star_hypergraph, budget=1, policy=POLICY_DEGREE)
        lazy.row(1)
        lazy.row(0)  # displaces the leaf: hub now resident
        for leaf in (2, 3, 4):
            lazy.row(leaf)
            assert list(lazy._cache) == [0]
        # The leaves were computed but never retained, so re-reads recompute.
        computations = lazy.computations
        lazy.row(2)
        assert lazy.computations == computations + 1

    def test_lru_keeps_the_most_recent_at_budget_one(self, star_hypergraph):
        lazy = LazyProjection(star_hypergraph, budget=1, policy=POLICY_LRU)
        lazy.row(0)
        lazy.row(3)
        assert list(lazy._cache) == [3]
        lazy.row(0)  # miss: 0 was evicted when 3 came in
        assert list(lazy._cache) == [0]
        assert lazy.cache_hits == 0

    def test_lru_touch_refreshes_recency(self, star_hypergraph):
        lazy = LazyProjection(star_hypergraph, budget=2, policy=POLICY_LRU)
        lazy.row(1)
        lazy.row(2)
        lazy.row(1)  # hit: 1 becomes most recent, 2 is now the LRU entry
        lazy.row(3)
        assert list(lazy._cache) == [1, 3]

    def test_random_eviction_is_seed_deterministic(self, small_random_hypergraph):
        def final_keys(seed):
            lazy = LazyProjection(
                small_random_hypergraph, budget=3, policy=POLICY_RANDOM, seed=seed
            )
            for i in range(small_random_hypergraph.num_hyperedges):
                lazy.row(i)
            return list(lazy._cache)

        assert final_keys(7) == final_keys(7)

    def test_random_eviction_stays_within_budget(self, small_random_hypergraph):
        lazy = LazyProjection(
            small_random_hypergraph, budget=2, policy=POLICY_RANDOM, seed=0
        )
        for i in range(small_random_hypergraph.num_hyperedges):
            lazy.row(i)
            assert lazy.cache_size <= 2

    def test_zero_budget_never_caches_under_any_policy(self, star_hypergraph):
        for policy in (POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM):
            lazy = LazyProjection(star_hypergraph, budget=0, policy=policy, seed=0)
            for i in range(star_hypergraph.num_hyperedges):
                lazy.row(i)
            assert lazy.cache_size == 0
            assert lazy.cache_hits == 0
