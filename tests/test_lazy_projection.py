"""Tests for the lazy (memory-budgeted, memoized) projection of Section 3.4."""

from __future__ import annotations

import pytest

from repro.projection import (
    POLICY_DEGREE,
    POLICY_LRU,
    POLICY_RANDOM,
    LazyProjection,
    project,
)


class TestCorrectness:
    @pytest.mark.parametrize("policy", [POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM])
    @pytest.mark.parametrize("budget", [None, 0, 1, 5])
    def test_neighborhoods_match_full_projection(
        self, small_random_hypergraph, policy, budget
    ):
        full = project(small_random_hypergraph)
        lazy = LazyProjection(
            small_random_hypergraph, budget=budget, policy=policy, seed=0
        )
        for i in range(small_random_hypergraph.num_hyperedges):
            assert lazy.neighbors(i) == full.neighbors(i)

    def test_hyperwedge_list_matches_full_projection(self, small_random_hypergraph):
        full = project(small_random_hypergraph)
        lazy = LazyProjection(small_random_hypergraph, budget=3)
        assert sorted(lazy.hyperwedge_list()) == sorted(full.hyperwedge_list())

    def test_overlap_matches(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph)
        assert lazy.overlap(0, 1) == 2
        assert lazy.overlap(1, 3) == 0


class TestMemoization:
    def test_unlimited_budget_computes_each_neighborhood_once(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph)
        for _ in range(3):
            for i in range(paper_hypergraph.num_hyperedges):
                lazy.neighbors(i)
        assert lazy.computations == paper_hypergraph.num_hyperedges
        assert lazy.cache_hits == 2 * paper_hypergraph.num_hyperedges

    def test_zero_budget_recomputes_every_time(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph, budget=0)
        for _ in range(2):
            for i in range(paper_hypergraph.num_hyperedges):
                lazy.neighbors(i)
        assert lazy.cache_size == 0
        assert lazy.computations == 2 * paper_hypergraph.num_hyperedges
        assert lazy.cache_hits == 0

    def test_budget_bounds_cache_size(self, small_random_hypergraph):
        budget = 4
        lazy = LazyProjection(small_random_hypergraph, budget=budget)
        for i in range(small_random_hypergraph.num_hyperedges):
            lazy.neighbors(i)
        assert lazy.cache_size <= budget

    def test_higher_budget_means_fewer_recomputations(self, small_random_hypergraph):
        def total_computations(budget):
            lazy = LazyProjection(small_random_hypergraph, budget=budget, seed=1)
            for _ in range(3):
                for i in range(small_random_hypergraph.num_hyperedges):
                    lazy.neighbors(i)
            return lazy.computations

        assert total_computations(None) <= total_computations(5) <= total_computations(0)

    def test_degree_policy_keeps_high_degree_entries(self, small_random_hypergraph):
        full = project(small_random_hypergraph)
        degrees = full.degrees()
        budget = 3
        lazy = LazyProjection(small_random_hypergraph, budget=budget, policy=POLICY_DEGREE)
        for i in range(small_random_hypergraph.num_hyperedges):
            lazy.neighbors(i)
        cached_degrees = [len(lazy.neighbors(i)) for i in list(lazy._cache)]
        # All retained entries should have degree at least the median degree.
        assert min(cached_degrees) >= sorted(degrees)[len(degrees) // 4]

    def test_prewarm(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph)
        lazy.prewarm(range(paper_hypergraph.num_hyperedges))
        assert lazy.cache_size == paper_hypergraph.num_hyperedges

    def test_invalid_policy_rejected(self, paper_hypergraph):
        with pytest.raises(ValueError):
            LazyProjection(paper_hypergraph, policy="mru")

    def test_negative_budget_rejected(self, paper_hypergraph):
        with pytest.raises(ValueError):
            LazyProjection(paper_hypergraph, budget=-1)

    def test_repr_mentions_policy(self, paper_hypergraph):
        lazy = LazyProjection(paper_hypergraph, budget=2, policy=POLICY_LRU)
        assert "lru" in repr(lazy)
