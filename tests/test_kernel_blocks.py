"""Tests for the anchor-block kernel internals of :mod:`repro.fastcore.kernels`.

Pins the triu-cache accounting under concurrency (the double-charge race fix),
the byte-LUT popcount fallback against an independent reference, and the
block partitioning: shrunk-to-budget anchor blocks, singleton hub blocks that
take the chunked pair path, and the lazy projection driving the same kernels
— all bit-identical to :mod:`repro.fastcore.reference` counts.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.counting.classification import fast_adjacency
from repro.fastcore import kernels
from repro.fastcore.reference import (
    count_containing_reference,
    count_exact_reference,
    count_wedges_reference,
    project_reference,
)
from repro.generators import generate_uniform_random
from repro.projection import LazyProjection, project


@pytest.fixture()
def graph():
    hypergraph = generate_uniform_random(
        num_nodes=30, num_hyperedges=50, mean_size=3.5, max_size=7, seed=21
    )
    projection = project(hypergraph)
    return hypergraph, projection, fast_adjacency(projection)


class TestTriuCacheAccounting:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        with kernels._TRIU_CACHE_LOCK:
            saved = dict(kernels._TRIU_CACHE), kernels._triu_cached_pairs
            kernels._TRIU_CACHE.clear()
            kernels._triu_cached_pairs = 0
        yield
        with kernels._TRIU_CACHE_LOCK:
            kernels._TRIU_CACHE.clear()
            kernels._TRIU_CACHE.update(saved[0])
            kernels._triu_cached_pairs = saved[1]

    def test_single_call_charges_the_pair_count(self):
        kernels._triu_pairs(10)
        assert kernels._triu_cached_pairs == 45
        assert set(kernels._TRIU_CACHE) == {10}

    def test_racing_threads_charge_each_size_once(self):
        """Two threads materializing the same size must not double-charge.

        The original code checked the cache only outside the lock, so every
        thread that lost the race still added ``num_pairs`` to the budget
        counter — inflating it until spurious cache clears kicked in.
        """
        sizes = [8, 16, 32, 64]
        threads_per_size = 8
        barrier = threading.Barrier(len(sizes) * threads_per_size)
        results = []
        results_lock = threading.Lock()

        def worker(size: int) -> None:
            barrier.wait()
            pair = kernels._triu_pairs(size)
            with results_lock:
                results.append((size, pair))

        threads = [
            threading.Thread(target=worker, args=(size,))
            for size in sizes
            for _ in range(threads_per_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = sum(size * (size - 1) // 2 for size in sizes)
        assert kernels._triu_cached_pairs == expected
        assert set(kernels._TRIU_CACHE) == set(sizes)
        # Every caller got the exact triu pairs regardless of who won.
        for size, (left, right) in results:
            want_left, want_right = np.triu_indices(size, 1)
            assert np.array_equal(left, want_left)
            assert np.array_equal(right, want_right)

    def test_budget_overflow_clears_before_storing(self, monkeypatch):
        monkeypatch.setattr(kernels, "_TRIU_CACHE_PAIR_BUDGET", 50)
        kernels._triu_pairs(10)  # 45 pairs cached
        kernels._triu_pairs(5)  # +10 would exceed 50: clear, then store
        assert set(kernels._TRIU_CACHE) == {5}
        assert kernels._triu_cached_pairs == 10


class TestPopcountFallback:
    def test_byte_lut_matches_python_popcount(self):
        rng = np.random.default_rng(3)
        masks = rng.integers(0, 2**64, size=(64, 3), dtype=np.uint64)
        got = kernels._popcount_rows_bytes(masks)
        want = np.array(
            [sum(int(word).bit_count() for word in row) for row in masks],
            dtype=np.int64,
        )
        assert np.array_equal(got, want)

    @pytest.mark.skipif(
        not hasattr(np, "bitwise_count"), reason="numpy < 2.0 has no bitwise_count"
    )
    def test_byte_lut_matches_bitwise_count(self):
        rng = np.random.default_rng(11)
        for shape in [(1, 1), (7, 2), (128, 4)]:
            masks = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
            assert np.array_equal(
                kernels._popcount_rows_bytes(masks),
                np.bitwise_count(masks).sum(axis=1).astype(np.int64),
            )

    def test_extreme_words(self):
        masks = np.array([[0], [2**64 - 1]], dtype=np.uint64)
        assert kernels._popcount_rows_bytes(masks).tolist() == [0, 64]

    def test_active_popcount_agrees_with_fallback(self):
        rng = np.random.default_rng(29)
        masks = rng.integers(0, 2**64, size=(33, 2), dtype=np.uint64)
        assert np.array_equal(
            kernels._popcount_rows(masks), kernels._popcount_rows_bytes(masks)
        )


class TestBlockBoundaries:
    """Tiny block budgets force every partitioning branch; counts must not move."""

    @pytest.mark.parametrize("budget,block", [(1, 1), (8, 3), (64, 7)])
    def test_exact_counts_invariant_under_block_geometry(
        self, graph, monkeypatch, budget, block
    ):
        hypergraph, _, adjacency = graph
        monkeypatch.setattr(kernels, "_BLOCK_PAIR_BUDGET", budget)
        monkeypatch.setattr(kernels, "_ANCHOR_BLOCK", block)
        got = kernels.count_exact_batched(hypergraph.csr(), adjacency)
        assert np.array_equal(got, count_exact_reference(hypergraph).to_array())

    def test_hub_anchor_takes_the_chunked_pair_path(self, graph, monkeypatch):
        hypergraph, _, adjacency = graph
        # Budget 1 makes every anchor a singleton "hub" whose pair total
        # exceeds the block budget; chunk size 7 forces several slabs per hub.
        monkeypatch.setattr(kernels, "_BLOCK_PAIR_BUDGET", 1)
        monkeypatch.setattr(kernels, "_PAIR_CHUNK", 7)
        got = kernels.count_exact_batched(hypergraph.csr(), adjacency)
        assert np.array_equal(got, count_exact_reference(hypergraph).to_array())

    def test_containing_counts_invariant_under_block_geometry(
        self, graph, monkeypatch
    ):
        hypergraph, projection, adjacency = graph
        anchors = list(range(0, hypergraph.num_hyperedges, 2)) * 2  # duplicates
        want = count_containing_reference(
            hypergraph, project_reference(hypergraph), anchors
        ).to_array()
        monkeypatch.setattr(kernels, "_BLOCK_PAIR_BUDGET", 8)
        monkeypatch.setattr(kernels, "_ANCHOR_BLOCK", 3)
        got = kernels.count_containing_batched(hypergraph.csr(), adjacency, anchors)
        assert np.array_equal(got, want)

    def test_wedge_counts_invariant_under_block_geometry(self, graph, monkeypatch):
        hypergraph, projection, adjacency = graph
        wedges = projection.hyperwedge_list()[:80]
        want = count_wedges_reference(
            hypergraph, project_reference(hypergraph), wedges
        ).to_array()
        monkeypatch.setattr(kernels, "_BLOCK_PAIR_BUDGET", 8)
        monkeypatch.setattr(kernels, "_ANCHOR_BLOCK", 3)
        got = kernels.count_wedges_batched(hypergraph.csr(), adjacency, wedges)
        assert np.array_equal(got, want)


class TestLazySourceThroughKernels:
    """The lazy projection drives the same block kernels, budget and all."""

    @pytest.mark.parametrize("budget", [None, 0, 1, 5])
    def test_exact_parity(self, graph, budget):
        hypergraph, _, _ = graph
        lazy = LazyProjection(hypergraph, budget=budget, policy="lru")
        got = kernels.count_exact_batched(hypergraph.csr(), lazy)
        assert np.array_equal(got, count_exact_reference(hypergraph).to_array())

    def test_containing_parity(self, graph):
        hypergraph, _, _ = graph
        anchors = [0, 3, 3, 7, 11]
        lazy = LazyProjection(hypergraph, budget=4)
        got = kernels.count_containing_batched(hypergraph.csr(), lazy, anchors)
        want = count_containing_reference(
            hypergraph, project_reference(hypergraph), anchors
        ).to_array()
        assert np.array_equal(got, want)

    def test_wedge_parity(self, graph):
        hypergraph, projection, _ = graph
        wedges = projection.hyperwedge_list()[:40]
        lazy = LazyProjection(hypergraph, budget=4)
        got = kernels.count_wedges_batched(hypergraph.csr(), lazy, wedges)
        want = count_wedges_reference(
            hypergraph, project_reference(hypergraph), wedges
        ).to_array()
        assert np.array_equal(got, want)
