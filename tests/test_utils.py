"""Tests for the shared utilities (rng, timer, logging, validation)."""

from __future__ import annotations

import logging
import time

import numpy as np
import pytest

from repro.utils import (
    Timer,
    ensure_rng,
    get_logger,
    require_in_range,
    require_non_negative_int,
    require_positive_int,
    require_probability,
    spawn_rngs,
)
from repro.utils.logging import enable_console_logging
from repro.utils.rng import sample_indices_with_replacement, weighted_choice
from repro.utils.timer import StageTimings


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(3).integers(0, 100) == ensure_rng(3).integers(0, 100)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_seed_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [rng.integers(0, 1000) for rng in spawn_rngs(7, 3)]
        second = [rng.integers(0, 1000) for rng in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) > 1 or len(first) == 1

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_sample_indices(self):
        indices = sample_indices_with_replacement(ensure_rng(0), 10, 100)
        assert indices.min() >= 0 and indices.max() < 10
        with pytest.raises(ValueError):
            sample_indices_with_replacement(ensure_rng(0), 0, 5)

    def test_weighted_choice(self):
        rng = ensure_rng(0)
        picks = [weighted_choice(rng, np.array([0.0, 1.0])) for _ in range(20)]
        assert set(picks) == {1}
        array = weighted_choice(rng, np.array([1.0, 1.0]), size=10)
        assert len(array) == 10
        with pytest.raises(ValueError):
            weighted_choice(rng, np.array([]))
        with pytest.raises(ValueError):
            weighted_choice(rng, np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            weighted_choice(rng, np.array([0.0, 0.0]))


class TestTimer:
    def test_elapsed_is_positive(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_elapsed_before_use_is_zero(self):
        assert Timer().elapsed == 0.0

    def test_stage_timings(self):
        timings = StageTimings()
        timings.record("projection", 1.0)
        timings.record("projection", 2.0)
        timings.record("counting", 4.0)
        assert timings.total("projection") == 3.0
        assert timings.mean("projection") == 1.5
        assert timings.total("missing") == 0.0
        assert timings.mean("missing") == 0.0
        assert timings.stages() == ["counting", "projection"]
        with pytest.raises(ValueError):
            timings.record("bad", -1.0)


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("repro.counting").name == "repro.counting"
        assert get_logger("custom").name == "repro.custom"

    def test_enable_console_logging(self):
        handler = enable_console_logging(logging.DEBUG)
        try:
            assert handler in logging.getLogger("repro").handlers
        finally:
            logging.getLogger("repro").removeHandler(handler)


class TestValidation:
    def test_positive_int(self):
        assert require_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            require_positive_int(0, "x")
        with pytest.raises(TypeError):
            require_positive_int(1.5, "x")
        with pytest.raises(TypeError):
            require_positive_int(True, "x")

    def test_non_negative_int(self):
        assert require_non_negative_int(0, "x") == 0
        with pytest.raises(ValueError):
            require_non_negative_int(-1, "x")

    def test_probability(self):
        assert require_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            require_probability(1.5, "p")
        with pytest.raises(TypeError):
            require_probability("0.5", "p")

    def test_in_range(self):
        assert require_in_range(2, "x", 0, 5) == 2.0
        with pytest.raises(ValueError):
            require_in_range(9, "x", 0, 5)
