"""Tests for instance classification (the paper's h({e_i, e_j, e_k}))."""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.exceptions import DuplicateHyperedgeError, MotifError, NotConnectedError
from repro.motifs import (
    classify_from_cardinalities,
    classify_instance,
    motif_is_closed,
    motif_is_open,
    pattern_from_cardinalities,
    region_cardinalities_from_sizes,
    triple_overlap_size,
)


class TestRegionCardinalities:
    def test_simple_disjoint_union(self):
        regions = region_cardinalities_from_sizes(2, 2, 2, 1, 1, 1, 1)
        # only_i = 2 - 1 - 1 + 1 = 1 for each, pairwise exclusive = 0, triple = 1
        assert regions == (1, 1, 1, 0, 0, 0, 1)

    def test_inconsistent_inputs_raise(self):
        with pytest.raises(MotifError):
            region_cardinalities_from_sizes(1, 1, 1, 5, 0, 0, 0)

    def test_pattern_reflects_emptiness(self):
        pattern = pattern_from_cardinalities(3, 3, 3, 1, 1, 1, 0)
        assert pattern == (True, True, True, True, True, True, False)


class TestTripleOverlap:
    def test_counts_common_nodes(self):
        assert triple_overlap_size({1, 2, 3}, {2, 3, 4}, {3, 2, 9}) == 2

    def test_empty_when_no_common_node(self):
        assert triple_overlap_size({1, 2}, {2, 3}, {3, 1}) == 0


class TestClassifyInstance:
    def test_paper_figure2_instances_are_distinguished(self, paper_hypergraph):
        edges = paper_hypergraph.hyperedges()
        e1, e2, e3, e4 = edges
        # {e1, e2, e4} and {e1, e3, e4} have identical pairwise relations but
        # different h-motifs (paper Section 2.2, "Why Non-pairwise Relations?").
        first = classify_instance(e1, e2, e4)
        second = classify_instance(e1, e3, e4)
        assert first != second

    def test_closed_instance_maps_to_closed_motif(self, triangle_hypergraph):
        e1, e2, e3 = triangle_hypergraph.hyperedges()
        assert motif_is_closed(classify_instance(e1, e2, e3))

    def test_open_instance_maps_to_open_motif(self, open_chain_hypergraph):
        e1, e2, e3 = open_chain_hypergraph.hyperedges()
        assert motif_is_open(classify_instance(e1, e2, e3))

    def test_order_invariance(self, triangle_hypergraph):
        edges = list(triangle_hypergraph.hyperedges())
        results = {
            classify_instance(edges[a], edges[b], edges[c])
            for a, b, c in permutations(range(3))
        }
        assert len(results) == 1

    def test_subset_instance_is_motif_17_or_18(self):
        # A hyperedge with two disjoint subsets (paper: motifs 17 and 18).
        outer = {1, 2, 3, 4}
        left = {1, 2}
        right = {3, 4}
        assert classify_instance(outer, left, right) == 17
        outer_with_extra = {1, 2, 3, 4, 5}
        assert classify_instance(outer_with_extra, left, right) == 18

    def test_all_regions_nonempty_is_motif_16(self):
        e1 = {1, 4, 6, 7}
        e2 = {2, 4, 5, 7}
        e3 = {3, 5, 6, 7}
        assert classify_instance(e1, e2, e3) == 16

    def test_disconnected_triple_raises(self):
        with pytest.raises(NotConnectedError):
            classify_instance({1, 2}, {3, 4}, {5, 6})

    def test_single_adjacency_is_not_connected(self):
        with pytest.raises(NotConnectedError):
            classify_instance({1, 2}, {2, 3}, {7, 8})

    def test_duplicate_hyperedges_raise(self):
        with pytest.raises(DuplicateHyperedgeError):
            classify_instance({1, 2}, {1, 2}, {2, 3})

    def test_supplied_overlaps_must_be_consistent(self):
        with pytest.raises(MotifError):
            classify_instance({1, 2}, {2, 3}, {3, 1}, overlap_ij=5)

    def test_accepts_precomputed_overlaps(self):
        e1, e2, e3 = {1, 2, 3}, {2, 3, 4}, {3, 4, 5}
        direct = classify_instance(e1, e2, e3)
        with_overlaps = classify_instance(
            e1, e2, e3, overlap_ij=2, overlap_jk=2, overlap_ki=1
        )
        assert direct == with_overlaps


class TestClassifyFromCardinalities:
    def test_matches_set_based_classification(self):
        e1, e2, e3 = {1, 2, 3, 4}, {3, 4, 5}, {4, 5, 6, 7}
        expected = classify_instance(e1, e2, e3)
        actual = classify_from_cardinalities(
            len(e1),
            len(e2),
            len(e3),
            len(e1 & e2),
            len(e2 & e3),
            len(e3 & e1),
            len(e1 & e2 & e3),
        )
        assert actual == expected

    def test_size_independence(self):
        """Scaling region sizes leaves the motif unchanged (paper: size independent)."""
        base = classify_from_cardinalities(2, 2, 2, 1, 1, 1, 1)
        scaled = classify_from_cardinalities(20, 20, 20, 10, 10, 10, 10)
        assert base == scaled
