"""Tests for the h-motif pattern table and canonicalization."""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.exceptions import MotifError
from repro.motifs import patterns as pat


class TestEnumeration:
    def test_exactly_26_motifs(self):
        assert len(pat.all_motif_patterns()) == pat.NUM_MOTIFS == 26

    def test_all_patterns_distinct(self):
        assert len(set(pat.all_motif_patterns())) == 26

    def test_six_open_and_twenty_closed(self):
        assert len(pat.open_motif_indices()) == 6
        assert len(pat.closed_motif_indices()) == 20

    def test_open_motifs_are_17_through_22(self):
        assert pat.open_motif_indices() == tuple(range(17, 23))

    def test_closed_motifs_are_the_rest(self):
        expected = tuple(list(range(1, 17)) + list(range(23, 27)))
        assert pat.closed_motif_indices() == expected

    def test_motif_16_has_all_regions_non_empty(self):
        assert pat.motif_pattern(16) == tuple([True] * 7)

    def test_motifs_17_and_18_are_subset_patterns(self):
        # Both consist of a hyperedge containing two disjoint subsets: the
        # pairwise regions AB and CA are non-empty, BC and ABC are empty.
        for index in (17, 18):
            pattern = pat.motif_pattern(index)
            assert not pat.is_closed(pattern)
            non_empty = {
                name for name, filled in zip(pat.REGION_NAMES, pattern) if filled
            }
            assert "ABC" not in non_empty
            # Exactly one pair of hyperedges is disjoint.
            adjacent = [
                pat.edges_are_adjacent(pattern, i, j)
                for i, j in ((0, 1), (1, 2), (0, 2))
            ]
            assert sum(adjacent) == 2

    def test_motif_22_is_open_with_five_regions(self):
        pattern = pat.motif_pattern(22)
        assert not pat.is_closed(pattern)
        assert sum(pattern) == 5

    def test_every_pattern_is_valid_and_canonical(self):
        for pattern in pat.all_motif_patterns():
            assert pat.is_valid(pattern)
            assert pat.canonicalize(pattern) == pattern


class TestCanonicalization:
    def test_canonical_form_is_permutation_invariant(self):
        for pattern in pat.all_motif_patterns():
            for perm in permutations(range(3)):
                permuted = pat.permute_pattern(pattern, perm)
                assert pat.canonicalize(permuted) == pattern

    def test_motif_index_is_permutation_invariant(self):
        for index in range(1, 27):
            pattern = pat.motif_pattern(index)
            for perm in permutations(range(3)):
                assert pat.motif_index(pat.permute_pattern(pattern, perm)) == index

    def test_permute_pattern_rejects_bad_permutation(self):
        pattern = pat.motif_pattern(1)
        with pytest.raises(MotifError):
            pat.permute_pattern(pattern, (0, 0, 1))

    def test_every_valid_raw_pattern_maps_to_some_motif(self):
        covered = set()
        for code in range(128):
            pattern = pat.pattern_from_int(code)
            if pat.is_valid(pattern):
                covered.add(pat.motif_index(pattern))
        assert covered == set(range(1, 27))

    def test_invalid_pattern_raises(self):
        all_empty = pat.pattern_from_bits([0] * 7)
        with pytest.raises(MotifError):
            pat.motif_index(all_empty)


class TestPatternPredicates:
    def test_duplicate_detection(self):
        # Only AB and ABC non-empty: e1 and e2 have identical member sets.
        pattern = pat.pattern_from_bits([0, 0, 1, 1, 0, 0, 1])
        assert pat.edges_are_duplicated(pattern, 0, 1)
        assert not pat.is_valid(pattern)

    def test_empty_edge_detection(self):
        pattern = pat.pattern_from_bits([1, 1, 0, 1, 0, 0, 0])
        assert pat.edge_is_empty(pattern, 2)
        assert not pat.is_valid(pattern)

    def test_disconnected_pattern_detection(self):
        # Three pairwise-disjoint hyperedges.
        pattern = pat.pattern_from_bits([1, 1, 1, 0, 0, 0, 0])
        assert not pat.is_connected(pattern)
        assert not pat.is_valid(pattern)

    def test_open_closed_helpers_agree_with_pattern(self):
        for index in range(1, 27):
            assert pat.motif_is_open(index) != pat.motif_is_closed(index)
            assert pat.motif_is_open(index) == (17 <= index <= 22)

    def test_motif_pattern_rejects_out_of_range(self):
        with pytest.raises(MotifError):
            pat.motif_pattern(0)
        with pytest.raises(MotifError):
            pat.motif_pattern(27)


class TestEncoding:
    def test_int_round_trip(self):
        for code in range(128):
            assert pat.pattern_to_int(pat.pattern_from_int(code)) == code

    def test_pattern_from_bits_requires_length_7(self):
        with pytest.raises(MotifError):
            pat.pattern_from_bits([1, 0, 1])

    def test_pattern_from_int_rejects_out_of_range(self):
        with pytest.raises(MotifError):
            pat.pattern_from_int(128)

    def test_describe_motif_mentions_open_or_closed(self):
        assert "open" in pat.describe_motif(17)
        assert "closed" in pat.describe_motif(16)
