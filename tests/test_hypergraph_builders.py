"""Tests for hypergraph builders and the temporal hypergraph."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.hypergraph import (
    Hypergraph,
    TemporalHypergraph,
    deduplicate_hyperedges,
    filter_by_size,
    from_hyperedge_list,
    from_node_memberships,
    merge_hypergraphs,
    relabel_nodes_to_integers,
)


class TestBuilders:
    def test_from_hyperedge_list(self):
        hypergraph = from_hyperedge_list([[1, 2], [2, 3]], name="demo")
        assert hypergraph.num_hyperedges == 2
        assert hypergraph.name == "demo"

    def test_deduplicate(self):
        hypergraph = Hypergraph([[1, 2], [2, 1], [1, 3]])
        deduplicated = deduplicate_hyperedges(hypergraph)
        assert deduplicated.num_hyperedges == 2

    def test_filter_by_size(self):
        hypergraph = Hypergraph([[1], [1, 2], [1, 2, 3], [1, 2, 3, 4]])
        filtered = filter_by_size(hypergraph, min_size=2, max_size=3)
        assert filtered.num_hyperedges == 2
        assert set(filtered.hyperedge_sizes()) == {2, 3}

    def test_filter_by_size_validates(self):
        hypergraph = Hypergraph([[1, 2]])
        with pytest.raises(ValueError):
            filter_by_size(hypergraph, min_size=0)
        with pytest.raises(ValueError):
            filter_by_size(hypergraph, min_size=3, max_size=2)

    def test_relabel_nodes(self):
        hypergraph = Hypergraph([["a", "b"], ["b", "c"]])
        relabelled, mapping = relabel_nodes_to_integers(hypergraph)
        assert set(mapping.values()) == {0, 1, 2}
        assert relabelled.num_hyperedges == 2
        assert all(isinstance(node, int) for node in relabelled.nodes())

    def test_from_node_memberships(self):
        hypergraph = from_node_memberships({"a": [0, 1], "b": [0], "c": [1]})
        assert hypergraph.num_hyperedges == 2
        assert hypergraph.hyperedge(0) == frozenset({"a", "b"})

    def test_from_node_memberships_empty(self):
        assert from_node_memberships({}).num_hyperedges == 0

    def test_merge(self):
        first = Hypergraph([[1, 2]])
        second = Hypergraph([[2, 3]])
        merged = merge_hypergraphs([first, second])
        assert merged.num_hyperedges == 2
        assert merged.num_nodes == 3


class TestTemporalHypergraph:
    @pytest.fixture
    def temporal(self):
        return TemporalHypergraph(
            [
                (2014, [1, 2]),
                (2014, [2, 3]),
                (2015, [1, 2, 3]),
                (2016, [3, 4]),
                (2016, [1, 2]),
            ],
            name="temporal",
        )

    def test_timestamps(self, temporal):
        assert temporal.timestamps() == [2014, 2015, 2016]
        assert temporal.num_hyperedges == 5

    def test_snapshot(self, temporal):
        snapshot = temporal.snapshot(2014)
        assert snapshot.num_hyperedges == 2

    def test_window(self, temporal):
        window = temporal.window(2014, 2015)
        assert window.num_hyperedges == 3

    def test_window_deduplicates(self, temporal):
        # {1, 2} appears in 2014 and 2016; the full window keeps one copy.
        window = temporal.window(2014, 2016)
        assert window.num_hyperedges == 4

    def test_window_validates_order(self, temporal):
        with pytest.raises(ValueError):
            temporal.window(2016, 2014)

    def test_cumulative(self, temporal):
        assert temporal.cumulative(2015).num_hyperedges == 3

    def test_snapshots_mapping(self, temporal):
        snapshots = temporal.snapshots()
        assert set(snapshots) == {2014, 2015, 2016}

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(DatasetError):
            TemporalHypergraph([(2014, [])])

    def test_len_iter_repr(self, temporal):
        assert len(temporal) == 5
        assert len(list(temporal)) == 5
        assert "2014" in repr(temporal)

    def test_construction_order_does_not_change_identity(self):
        """Regression: the same (timestamp, edge) pairs fed in any order
        must produce identical fingerprints and identical slices.

        Temporal pairs are canonically ordered internally; before that,
        shuffled construction reshuffled ``cumulative()`` edge lists and
        with them every content fingerprint — breaking warm store lookups
        and lineage chains for datasets loaded from differently-ordered
        files.
        """
        import random

        pairs = [
            (2014, [1, 2, 3]),
            (2014, [2, 5]),
            (2015, [3, 4]),
            (2015, [1, 4, 5]),
            (2016, [2, 3, 4]),
            (2016, [5, 6]),
            (2017, [1, 6]),
        ]
        reference = TemporalHypergraph(pairs, name="ref")
        rng = random.Random(42)
        for _ in range(5):
            shuffled = list(pairs)
            rng.shuffle(shuffled)
            other = TemporalHypergraph(shuffled, name="shuffled")
            assert other.fingerprint() == reference.fingerprint()
            assert list(other) == list(reference)
            for stamp in reference.timestamps():
                assert (
                    other.cumulative(stamp).fingerprint()
                    == reference.cumulative(stamp).fingerprint()
                )
                assert (
                    other.snapshot(stamp).fingerprint()
                    == reference.snapshot(stamp).fingerprint()
                )
