"""Tests for the synthetic hypergraph generators and the corpus."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.generators import (
    DOMAINS,
    build_corpus,
    dataset_domain,
    dataset_names,
    dataset_specs,
    generate_coauthorship,
    generate_contact,
    generate_email,
    generate_planted_triple,
    generate_tags,
    generate_temporal_coauthorship,
    generate_threads,
    generate_uniform_random,
)
from repro.hypergraph import Hypergraph, deduplicate_hyperedges

GENERATORS = [
    (generate_coauthorship, {"num_authors": 80, "num_papers": 60}),
    (generate_contact, {"num_people": 40, "num_interactions": 60}),
    (generate_email, {"num_accounts": 40, "num_messages": 60}),
    (generate_tags, {"num_tags": 50, "num_posts": 60}),
    (generate_threads, {"num_users": 60, "num_threads": 50}),
    (generate_uniform_random, {"num_nodes": 40, "num_hyperedges": 50}),
]


class TestDomainGenerators:
    @pytest.mark.parametrize("generator, kwargs", GENERATORS)
    def test_generates_valid_hypergraph(self, generator, kwargs):
        hypergraph = generator(seed=0, **kwargs)
        assert isinstance(hypergraph, Hypergraph)
        assert hypergraph.num_hyperedges > 10
        assert all(size >= 1 for size in hypergraph.hyperedge_sizes())

    @pytest.mark.parametrize("generator, kwargs", GENERATORS)
    def test_no_duplicate_hyperedges(self, generator, kwargs):
        hypergraph = generator(seed=1, **kwargs)
        assert deduplicate_hyperedges(hypergraph).num_hyperedges == hypergraph.num_hyperedges

    @pytest.mark.parametrize("generator, kwargs", GENERATORS)
    def test_seed_reproducibility(self, generator, kwargs):
        assert generator(seed=5, **kwargs) == generator(seed=5, **kwargs)

    @pytest.mark.parametrize("generator, kwargs", GENERATORS)
    def test_different_seeds_differ(self, generator, kwargs):
        assert generator(seed=1, **kwargs) != generator(seed=2, **kwargs)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_coauthorship(num_authors=0)
        with pytest.raises(ValueError):
            generate_contact(num_interactions=-1)

    def test_contact_hypergraph_is_small_population(self):
        hypergraph = generate_contact(num_people=30, num_interactions=80, seed=0)
        assert hypergraph.num_nodes <= 30

    def test_email_hyperedges_have_bounded_size(self):
        hypergraph = generate_email(
            num_accounts=50, num_messages=80, max_recipients=6, seed=0
        )
        assert max(hypergraph.hyperedge_sizes()) <= 7  # sender + recipients

    def test_tags_hyperedges_are_small(self):
        hypergraph = generate_tags(num_tags=60, num_posts=80, max_tags_per_post=4, seed=0)
        assert max(hypergraph.hyperedge_sizes()) <= 4

    def test_planted_triple(self):
        base = generate_uniform_random(num_nodes=10, num_hyperedges=5, seed=0)
        planted = generate_planted_triple(base, [[100, 101], [101, 102], [100, 102]])
        assert planted.num_hyperedges == base.num_hyperedges + 3


class TestCorpus:
    def test_eleven_datasets_in_five_domains(self):
        names = dataset_names()
        assert len(names) == 11
        domains = {dataset_domain(name) for name in names}
        assert domains == set(DOMAINS)

    def test_specs_reference_paper_datasets(self):
        papers = {spec.paper_dataset for spec in dataset_specs()}
        assert "coauth-DBLP" in papers
        assert "tags-math" in papers
        assert len(papers) == 11

    def test_build_small_corpus(self):
        corpus = build_corpus(scale=0.3, domains=("contact", "email"))
        assert len(corpus) == 4
        for name, (hypergraph, domain) in corpus.items():
            assert domain in ("contact", "email")
            assert hypergraph.num_hyperedges > 5

    def test_scale_changes_size(self):
        small = build_corpus(scale=0.3, domains=("contact",))
        large = build_corpus(scale=1.0, domains=("contact",))
        for name in small:
            assert small[name][0].num_hyperedges < large[name][0].num_hyperedges

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            dataset_domain("nope")
        from repro.generators import generate_dataset

        with pytest.raises(DatasetError):
            generate_dataset("nope")
        with pytest.raises(DatasetError):
            generate_dataset(dataset_names()[0], scale=0)


class TestTemporalGenerator:
    def test_snapshot_count_and_growth(self):
        temporal = generate_temporal_coauthorship(
            num_years=5, initial_authors=60, initial_papers=40, seed=0
        )
        years = temporal.timestamps()
        assert len(years) == 5
        first = temporal.snapshot(years[0])
        last = temporal.snapshot(years[-1])
        assert last.num_hyperedges >= first.num_hyperedges

    def test_seed_reproducibility(self):
        first = generate_temporal_coauthorship(num_years=3, seed=4)
        second = generate_temporal_coauthorship(num_years=3, seed=4)
        assert list(first) == list(second)

    def test_invalid_years_rejected(self):
        with pytest.raises(ValueError):
            generate_temporal_coauthorship(num_years=0)
