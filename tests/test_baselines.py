"""Tests for the graph substrate and the network-motif baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GRAPH_MOTIF_NAMES,
    Graph,
    count_graph_motifs,
    graph_motif_vector,
    graph_profile_correlation,
    graph_similarity_matrix,
    network_motif_profile,
)
from repro.exceptions import HypergraphError
from repro.hypergraph import Hypergraph


class TestGraph:
    def test_add_edges_and_degrees(self):
        graph = Graph([(1, 2), (2, 3)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.degree(2) == 2
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(1, 3)

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(HypergraphError):
            graph.add_edge(1, 1)

    def test_duplicate_edge_ignored(self):
        graph = Graph([(1, 2), (2, 1)])
        assert graph.num_edges == 1

    def test_unknown_vertex_raises(self):
        graph = Graph([(1, 2)])
        with pytest.raises(HypergraphError):
            graph.degree(99)
        with pytest.raises(HypergraphError):
            graph.neighbors(99)

    def test_edges_iterated_once(self):
        graph = Graph([(1, 2), (2, 3), (3, 1)])
        assert len(list(graph.edges())) == 3

    def test_star_expansion(self, paper_hypergraph):
        graph = Graph.from_star_expansion(paper_hypergraph)
        assert graph.num_vertices == paper_hypergraph.num_nodes + paper_hypergraph.num_hyperedges
        assert graph.num_edges == sum(paper_hypergraph.hyperedge_sizes())
        assert graph.degree(("node", "L")) == 3

    def test_clique_expansion(self):
        hypergraph = Hypergraph([[1, 2, 3]])
        graph = Graph.from_clique_expansion(hypergraph)
        assert graph.num_edges == 3

    def test_from_biadjacency(self):
        graph = Graph.from_biadjacency([[0, 1], [1, 2]], num_left=3)
        assert graph.num_edges == 4
        with pytest.raises(HypergraphError):
            Graph.from_biadjacency([[5]], num_left=3)


class TestGraphMotifCounts:
    def test_triangle_graph(self):
        graph = Graph([(1, 2), (2, 3), (3, 1)])
        counts = count_graph_motifs(graph)
        assert counts["triangle"] == 1
        assert counts["wedge"] == 3
        assert counts["cycle4"] == 0

    def test_path_graph(self):
        graph = Graph([(1, 2), (2, 3), (3, 4)])
        counts = count_graph_motifs(graph)
        assert counts["triangle"] == 0
        assert counts["wedge"] == 2
        assert counts["path4"] == 1
        assert counts["claw"] == 0

    def test_star_graph(self):
        graph = Graph([(0, 1), (0, 2), (0, 3)])
        counts = count_graph_motifs(graph)
        assert counts["claw"] == 1
        assert counts["wedge"] == 3
        assert counts["path4"] == 0

    def test_four_cycle(self):
        graph = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        counts = count_graph_motifs(graph)
        assert counts["cycle4"] == 1
        assert counts["triangle"] == 0

    def test_paw_graph(self):
        graph = Graph([(1, 2), (2, 3), (3, 1), (3, 4)])
        counts = count_graph_motifs(graph)
        assert counts["triangle"] == 1
        assert counts["triangle_edge"] == 1

    def test_bipartite_graph_has_no_odd_cycles(self, paper_hypergraph):
        graph = Graph.from_star_expansion(paper_hypergraph)
        counts = count_graph_motifs(graph)
        assert counts["triangle"] == 0
        assert counts["triangle_edge"] == 0

    def test_vector_order(self):
        graph = Graph([(1, 2), (2, 3), (3, 1)])
        vector = graph_motif_vector(graph)
        assert vector.shape == (len(GRAPH_MOTIF_NAMES),)
        assert vector[GRAPH_MOTIF_NAMES.index("triangle")] == 1


class TestNetworkMotifProfile:
    def test_profile_is_normalized(self, medium_random_hypergraph):
        profile = network_motif_profile(medium_random_hypergraph, num_random=2, seed=0)
        norm = np.linalg.norm(profile.values)
        assert norm == pytest.approx(1.0) or norm == 0.0
        assert profile.real_counts.shape == (len(GRAPH_MOTIF_NAMES),)

    def test_similarity_matrix(self, small_random_hypergraph, medium_random_hypergraph):
        first = network_motif_profile(small_random_hypergraph, num_random=2, seed=0)
        second = network_motif_profile(medium_random_hypergraph, num_random=2, seed=0)
        matrix = graph_similarity_matrix([first, second])
        assert matrix.shape == (2, 2)
        assert matrix[0, 1] == pytest.approx(graph_profile_correlation(first, second))
        assert np.allclose(np.diag(matrix), 1.0)
