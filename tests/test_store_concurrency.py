"""Stress tests: concurrent writers and readers on one store directory.

The scenarios mirror the parallel serving path: N threads sharing one
:class:`ArtifactStore` instance, N threads on *separate* instances (so they
contend on the interprocess file lock, not the instance lock), and N worker
processes each opening its own store over the same directory — all with
overlapping fingerprints, exactly what deduplicated-but-racing batches
produce. Afterwards the invariants must hold: the manifest parses at the
current format version, every entry decodes and passes its checksum, and
``gc()`` finds nothing to reap (no orphans, no corrupt entries).
"""

from __future__ import annotations

import json
import threading
import zlib
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.store import ArtifactStore, FileLock
from repro.store.artifacts import FORMAT_VERSION

#: Overlapping key space shared by every worker: a handful of fingerprints
#: and params, so concurrent writers keep colliding on the same entries.
FINGERPRINTS = ("fp-a", "fp-b", "fp-c")
KINDS = ("count", "projection")
NUM_PARAMS = 4


def _key_for(op: int):
    """Deterministic (kind, fingerprint, params) cycling through collisions."""
    return (
        KINDS[op % len(KINDS)],
        FINGERPRINTS[op % len(FINGERPRINTS)],
        {"p": op % NUM_PARAMS},
    )


def _expected_arrays(kind: str, fingerprint: str, params) -> dict:
    """Content derived from the key alone — what every writer of it stores.

    Mirrors the real system, where artifacts are deterministic functions of
    their key, so racing writers of one entry write identical bytes.
    """
    # zlib.crc32, not hash(): string hashing is salted per process, and the
    # expected content must agree across parent and worker processes.
    seed = zlib.crc32(f"{kind}/{fingerprint}/{params['p']}".encode("utf-8"))
    rng = np.random.default_rng(seed)
    return {"values": rng.random(64), "ids": rng.integers(0, 100, size=16)}


def _hammer(directory: str, worker_id: int, num_ops: int = 40) -> int:
    """One worker: interleaved puts and gets over the overlapping key space.

    Module-level so process pools can pickle it by reference. Returns the
    number of distinct keys touched (a cheap liveness signal).
    """
    store = ArtifactStore(directory, lock_timeout=30.0)
    touched = set()
    for op in range(num_ops):
        kind, fingerprint, params = _key_for(op + worker_id)
        touched.add((kind, fingerprint, params["p"]))
        store.put(kind, fingerprint, params, _expected_arrays(kind, fingerprint, params))
        hit = store.get(kind, fingerprint, params)
        assert hit is not None, "a just-written artifact must be readable"
        arrays, _, _ = hit
        assert np.array_equal(
            arrays["values"], _expected_arrays(kind, fingerprint, params)["values"]
        )
    return len(touched)


def _assert_store_clean(directory: Path, expect_entries: bool = True) -> None:
    """The post-stress invariants: clean manifest, verifying entries, no-op gc."""
    manifest = json.loads((directory / "manifest.json").read_text(encoding="utf-8"))
    assert manifest["format_version"] == FORMAT_VERSION

    fresh = ArtifactStore(directory)
    assert not fresh.disk_stale
    assert fresh.disk_error is None
    entries = fresh.entries()
    if expect_entries:
        assert entries, "stress run should have persisted artifacts"
    for entry in entries:
        hit = fresh.get(entry.kind, entry.fingerprint, entry.params)
        assert hit is not None, f"entry {entry.path.name} failed to decode"
        arrays, _, _ = hit
        assert np.array_equal(
            arrays["values"],
            _expected_arrays(entry.kind, entry.fingerprint, entry.params)["values"],
        )
    stats = fresh.gc(verify_checksums=True)
    assert stats.removed_entries == 0, stats.details
    assert stats.removed_files == 0, stats.details
    assert stats.kept_entries == len(entries)
    assert fresh.stats.corrupt_entries == 0


class TestThreadStress:
    def test_threads_sharing_one_instance(self, tmp_path):
        directory = tmp_path / "store"
        store = ArtifactStore(directory)
        errors = []

        def run(worker_id: int) -> None:
            try:
                for op in range(40):
                    kind, fingerprint, params = _key_for(op + worker_id)
                    store.put(
                        kind,
                        fingerprint,
                        params,
                        _expected_arrays(kind, fingerprint, params),
                    )
                    assert store.get(kind, fingerprint, params) is not None
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        _assert_store_clean(directory)

    def test_threads_on_separate_instances(self, tmp_path):
        """Separate instances contend on the *file* lock, not the instance lock."""
        directory = tmp_path / "store"
        errors = []

        def run(worker_id: int) -> None:
            try:
                _hammer(str(directory), worker_id, num_ops=25)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        _assert_store_clean(directory)

    def test_concurrent_gc_and_writers(self, tmp_path):
        """Compaction racing writers never produces orphans or lost manifests."""
        directory = tmp_path / "store"
        store = ArtifactStore(directory)
        stop = threading.Event()
        errors = []

        def write_loop() -> None:
            try:
                op = 0
                while not stop.is_set():
                    kind, fingerprint, params = _key_for(op)
                    store.put(
                        kind,
                        fingerprint,
                        params,
                        _expected_arrays(kind, fingerprint, params),
                    )
                    op += 1
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def gc_loop() -> None:
            try:
                for _ in range(10):
                    ArtifactStore(directory).gc()
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        writers = [threading.Thread(target=write_loop) for _ in range(3)]
        collector = threading.Thread(target=gc_loop)
        for thread in writers:
            thread.start()
        collector.start()
        collector.join()
        stop.set()
        for thread in writers:
            thread.join()
        assert not errors
        _assert_store_clean(directory)


class TestProcessStress:
    def test_processes_hammering_one_directory(self, tmp_path):
        directory = tmp_path / "store"
        num_workers = 4
        with ProcessPoolExecutor(max_workers=num_workers) as executor:
            futures = [
                executor.submit(_hammer, str(directory), worker_id, 30)
                for worker_id in range(num_workers)
            ]
            results = [future.result(timeout=120) for future in futures]
        assert all(result > 0 for result in results)
        _assert_store_clean(directory)


class TestLockContention:
    def _block_shard(self, store, fingerprint):
        # Writers serialize on their fingerprint's *shard* lock, not a
        # store-global one; holding it from a second FileLock instance
        # simulates another process mid-write in the same shard.
        lock_path = store.shard_lock_path(fingerprint)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        blocker = FileLock(lock_path)
        assert blocker.acquire(timeout=1.0)
        return blocker

    def test_put_degrades_to_memory_under_contention(self, tmp_path):
        directory = tmp_path / "store"
        store = ArtifactStore(directory, lock_timeout=0.05)
        blocker = self._block_shard(store, "fp")
        try:
            store.put("count", "fp", {"p": 1}, {"values": np.ones(4)})
            # Never raised; the artifact lives in the memory tier only.
            assert store.stats.lock_contention >= 1
            hit = store.get("count", "fp", {"p": 1})
            assert hit is not None and hit[2] == "memory"
            cold = ArtifactStore(directory)
            assert cold.get("count", "fp", {"p": 1}) is None
        finally:
            blocker.release()

    def test_put_on_other_shards_is_unaffected(self, tmp_path):
        # The point of per-shard locking: contention on one shard never
        # blocks writers whose fingerprints hash elsewhere.
        directory = tmp_path / "store"
        store = ArtifactStore(directory, lock_timeout=0.05)
        blocker = self._block_shard(store, "aa" * 32)
        try:
            store.put("count", "bb" * 32, {"p": 1}, {"values": np.ones(4)})
            assert store.stats.lock_contention == 0
            cold = ArtifactStore(directory)
            assert cold.get("count", "bb" * 32, {"p": 1}) is not None
        finally:
            blocker.release()

    def test_gc_skipped_under_contention(self, tmp_path):
        directory = tmp_path / "store"
        store = ArtifactStore(directory, lock_timeout=0.05)
        store.put("count", "fp", {"p": 1}, {"values": np.ones(4)})
        blocker = self._block_shard(store, "fp")
        try:
            stats = store.gc()
            assert stats.kept_entries == 0 and stats.removed_files == 0
            assert any("contention" in detail for detail in stats.details)
        finally:
            blocker.release()
        # With the lock free again, compaction proceeds normally.
        stats = store.gc()
        assert stats.kept_entries == 1

    def test_writes_resume_after_contention_clears(self, tmp_path):
        directory = tmp_path / "store"
        store = ArtifactStore(directory, lock_timeout=0.05)
        blocker = self._block_shard(store, "fp")
        store.put("count", "fp", {"p": 1}, {"values": np.ones(4)})
        blocker.release()
        store.put("count", "fp", {"p": 2}, {"values": np.ones(4)})
        cold = ArtifactStore(directory)
        assert cold.get("count", "fp", {"p": 2}) is not None


class TestFileLock:
    def test_reentrant_within_one_instance(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert lock.acquire(timeout=1.0)
        assert lock.acquire(timeout=1.0)
        assert lock.held
        lock.release()
        assert lock.held
        lock.release()
        assert not lock.held

    def test_instances_exclude_each_other(self, tmp_path):
        first = FileLock(tmp_path / "x.lock")
        second = FileLock(tmp_path / "x.lock")
        assert first.acquire(timeout=1.0)
        try:
            assert not second.acquire(timeout=0.05)
        finally:
            first.release()
        assert second.acquire(timeout=1.0)
        second.release()

    def test_release_of_unheld_lock_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            FileLock(tmp_path / "x.lock").release()

    def test_context_manager(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert lock.held
        assert not lock.held
