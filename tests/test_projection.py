"""Tests for the projected graph and its builders (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import ProjectionError
from repro.hypergraph import Hypergraph
from repro.projection import (
    ProjectedGraph,
    neighborhood_of,
    project,
    project_parallel,
)


class TestProjectedGraphContainer:
    def test_validation_rejects_asymmetry(self):
        with pytest.raises(ProjectionError):
            ProjectedGraph(2, {0: {1: 1}})

    def test_validation_rejects_self_loops(self):
        with pytest.raises(ProjectionError):
            ProjectedGraph(2, {0: {0: 1}})

    def test_validation_rejects_bad_weights(self):
        with pytest.raises(ProjectionError):
            ProjectedGraph(2, {0: {1: 0}, 1: {0: 0}})

    def test_validation_rejects_out_of_range_vertices(self):
        with pytest.raises(ProjectionError):
            ProjectedGraph(2, {0: {5: 1}, 5: {0: 1}})

    def test_empty_graph(self):
        graph = ProjectedGraph(3, {})
        assert graph.num_hyperwedges == 0
        assert graph.degree(0) == 0
        assert graph.neighbors(2) == {}


class TestProjection:
    def test_paper_example_projection(self, paper_hypergraph):
        projection = project(paper_hypergraph)
        # The paper lists exactly these four hyperwedges for Figure 2(b).
        assert set(projection.hyperwedges()) == {(0, 1), (0, 2), (1, 2), (0, 3)}
        assert projection.num_hyperwedges == 4

    def test_weights_are_overlap_sizes(self, paper_hypergraph):
        projection = project(paper_hypergraph)
        assert projection.overlap(0, 1) == 2  # {L, K}
        assert projection.overlap(0, 2) == 1  # {L}
        assert projection.overlap(0, 3) == 1  # {F}
        assert projection.overlap(1, 3) == 0

    def test_weights_match_hypergraph_overlaps(self, small_random_hypergraph):
        projection = project(small_random_hypergraph)
        for i, j in projection.hyperwedges():
            assert projection.overlap(i, j) == small_random_hypergraph.overlap_size(i, j)

    def test_neighbors_and_degree(self, paper_hypergraph):
        projection = project(paper_hypergraph)
        assert set(projection.neighbor_indices(0)) == {1, 2, 3}
        assert projection.degree(0) == 3
        assert projection.degrees() == [3, 2, 2, 1]

    def test_are_adjacent(self, paper_hypergraph):
        projection = project(paper_hypergraph)
        assert projection.are_adjacent(0, 1)
        assert not projection.are_adjacent(1, 3)

    def test_out_of_range_vertex_raises(self, paper_hypergraph):
        projection = project(paper_hypergraph)
        with pytest.raises(ProjectionError):
            projection.neighbors(10)

    def test_total_neighborhood_work(self, paper_hypergraph):
        projection = project(paper_hypergraph)
        assert projection.total_neighborhood_work() == 3**2 + 2**2 + 2**2 + 1**2

    def test_neighborhood_of_single_edge(self, paper_hypergraph):
        assert neighborhood_of(paper_hypergraph, 0) == {1: 2, 2: 1, 3: 1}
        assert neighborhood_of(paper_hypergraph, 3) == {0: 1}

    def test_hyperedges_without_overlap(self):
        hypergraph = Hypergraph([[1, 2], [3, 4]])
        projection = project(hypergraph)
        assert projection.num_hyperwedges == 0


class TestParallelProjection:
    def test_matches_serial(self, small_random_hypergraph):
        serial = project(small_random_hypergraph)
        parallel = project_parallel(small_random_hypergraph, num_workers=2)
        assert parallel == serial

    def test_single_worker_falls_back(self, paper_hypergraph):
        assert project_parallel(paper_hypergraph, num_workers=1) == project(paper_hypergraph)

    def test_more_workers_than_edges(self, paper_hypergraph):
        assert project_parallel(paper_hypergraph, num_workers=16) == project(paper_hypergraph)

    def test_rejects_non_positive_workers(self, paper_hypergraph):
        with pytest.raises(ValueError):
            project_parallel(paper_hypergraph, num_workers=0)
