"""Tests for significance and characteristic profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motifs import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.profile import (
    characteristic_profile,
    domain_separation,
    motif_significance,
    normalize_significances,
    profile_correlation,
    profile_distance,
    profile_from_counts,
    relative_count,
    significance_dict,
    significance_vector,
    similarity_matrix,
)


class TestSignificance:
    def test_equal_counts_give_zero(self):
        assert motif_significance(10, 10) == 0.0

    def test_sign_follows_over_or_under_representation(self):
        assert motif_significance(100, 10) > 0
        assert motif_significance(10, 100) < 0

    def test_bounded_by_one(self):
        assert -1 < motif_significance(0, 1e12) < 1
        assert -1 < motif_significance(1e12, 0) < 1

    def test_epsilon_guard(self):
        assert motif_significance(0, 0) == 0.0
        with pytest.raises(ValueError):
            motif_significance(1, 1, epsilon=-1)

    def test_vector_and_dict_agree(self):
        real = MotifCounts.from_dict({1: 100, 2: 5})
        random = MotifCounts.from_dict({1: 10, 2: 50})
        vector = significance_vector(real, random)
        mapping = significance_dict(real, random)
        assert vector[0] == pytest.approx(mapping[1])
        assert mapping[1] > 0 > mapping[2]
        assert len(vector) == NUM_MOTIFS

    def test_relative_count(self):
        assert relative_count(3, 1) == pytest.approx(0.5)
        assert relative_count(0, 0) == 0.0
        assert relative_count(0, 10) == -1.0


class TestNormalization:
    def test_unit_norm(self):
        values = np.zeros(NUM_MOTIFS)
        values[0] = 3.0
        values[1] = 4.0
        normalized = normalize_significances(values)
        assert np.linalg.norm(normalized) == pytest.approx(1.0)
        assert normalized[0] == pytest.approx(0.6)

    def test_zero_vector_stays_zero(self):
        assert np.allclose(normalize_significances(np.zeros(NUM_MOTIFS)), 0.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            normalize_significances(np.zeros(5))


class TestProfileFromCounts:
    def test_profile_values_are_normalized(self):
        real = MotifCounts.from_dict({1: 100, 5: 40, 22: 7})
        random = MotifCounts.from_dict({1: 10, 5: 80, 22: 7})
        profile = profile_from_counts(real, random, name="demo")
        assert profile.name == "demo"
        assert np.linalg.norm(profile.values) == pytest.approx(1.0)
        assert profile.values[0] > 0 > profile.values[4]
        assert profile.as_dict()[1] == pytest.approx(float(profile.values[0]))

    def test_correlation_of_identical_profiles_is_one(self):
        real = MotifCounts.from_dict({1: 100, 2: 50, 3: 10})
        random = MotifCounts.from_dict({1: 10, 2: 50, 3: 100})
        profile = profile_from_counts(real, random)
        assert profile.correlation(profile) == pytest.approx(1.0)


class TestProfileComparison:
    def test_correlation_symmetry_and_bounds(self):
        rng = np.random.default_rng(0)
        first = rng.normal(size=NUM_MOTIFS)
        second = rng.normal(size=NUM_MOTIFS)
        value = profile_correlation(first, second)
        assert -1.0 <= value <= 1.0
        assert value == pytest.approx(profile_correlation(second, first))

    def test_constant_profile_gives_zero_correlation(self):
        assert profile_correlation(np.ones(NUM_MOTIFS), np.arange(NUM_MOTIFS)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            profile_correlation(np.ones(NUM_MOTIFS), np.ones(5))

    def test_similarity_matrix_properties(self):
        real = MotifCounts.from_dict({1: 100, 2: 50})
        random = MotifCounts.from_dict({1: 10, 2: 80})
        profile_a = profile_from_counts(real, random, name="a")
        profile_b = profile_from_counts(random, real, name="b")
        matrix = similarity_matrix([profile_a, profile_b])
        assert matrix.shape == (2, 2)
        assert np.allclose(np.diag(matrix), 1.0)
        assert matrix[0, 1] == pytest.approx(matrix[1, 0])

    def test_profile_distance_zero_for_identical(self):
        real = MotifCounts.from_dict({1: 100})
        random = MotifCounts.from_dict({1: 10})
        profile = profile_from_counts(real, random)
        assert profile_distance(profile, profile) == 0.0

    def test_domain_separation(self):
        base = np.zeros(NUM_MOTIFS)
        base[0] = 1.0
        other = np.zeros(NUM_MOTIFS)
        other[1] = 1.0
        make = lambda values, name: profile_from_counts(  # noqa: E731
            MotifCounts.zeros(), MotifCounts.zeros(), name=name
        ).__class__(
            name=name,
            values=values,
            significances=values,
            real_counts=MotifCounts.zeros(),
            random_counts=MotifCounts.zeros(),
        )
        profiles = [
            make(base + np.random.default_rng(1).normal(0, 0.01, NUM_MOTIFS), "a1"),
            make(base + np.random.default_rng(2).normal(0, 0.01, NUM_MOTIFS), "a2"),
            make(other + np.random.default_rng(3).normal(0, 0.01, NUM_MOTIFS), "b1"),
            make(other + np.random.default_rng(4).normal(0, 0.01, NUM_MOTIFS), "b2"),
        ]
        separation = domain_separation(profiles, ["A", "A", "B", "B"])
        assert separation.within_mean > separation.across_mean
        assert separation.gap > 0

    def test_domain_separation_length_mismatch(self):
        with pytest.raises(ValueError):
            domain_separation([], ["A"])


class TestEndToEndProfile:
    def test_characteristic_profile_pipeline(self, medium_random_hypergraph):
        profile = characteristic_profile(
            medium_random_hypergraph, num_random=2, seed=0
        )
        assert profile.name == medium_random_hypergraph.name
        assert len(profile.values) == NUM_MOTIFS
        norm = np.linalg.norm(profile.values)
        assert norm == pytest.approx(1.0) or norm == 0.0

    def test_profile_accepts_precomputed_real_counts(self, small_random_hypergraph):
        from repro.counting import count_exact

        real = count_exact(small_random_hypergraph)
        profile = characteristic_profile(
            small_random_hypergraph, num_random=2, seed=0, real_counts=real
        )
        assert profile.real_counts.to_dict() == real.to_dict()
