"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

from itertools import permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.counting import count_approx_wedge_sampling, count_exact
from repro.exceptions import ReproError
from repro.hypergraph import Hypergraph, count_hyperwedges
from repro.motifs import MotifCounts, classify_instance
from repro.motifs import patterns as pat
from repro.prediction.metrics import roc_auc
from repro.projection import project
from tests.conftest import brute_force_counts

# ----------------------------------------------------------------- strategies
node_strategy = st.integers(min_value=0, max_value=14)
hyperedge_strategy = st.frozensets(node_strategy, min_size=1, max_size=6)


@st.composite
def hypergraphs(draw, min_edges=0, max_edges=12):
    """Random hypergraphs with distinct, non-empty hyperedges."""
    edges = draw(
        st.lists(hyperedge_strategy, min_size=min_edges, max_size=max_edges, unique=True)
    )
    return Hypergraph(edges)


@st.composite
def connected_triples(draw):
    """Three distinct hyperedges guaranteed to be connected through the first."""
    center = draw(st.frozensets(node_strategy, min_size=2, max_size=6))
    first_anchor = draw(st.sampled_from(sorted(center)))
    second_anchor = draw(st.sampled_from(sorted(center)))
    left = draw(hyperedge_strategy) | {first_anchor}
    right = draw(hyperedge_strategy) | {second_anchor}
    if left == center or right == center or left == right:
        # Force distinctness by adding out-of-range sentinels.
        left = left | {100}
        right = right | {200}
    return center, left, right


# ------------------------------------------------------------------- patterns
class TestPatternProperties:
    @given(st.integers(min_value=0, max_value=127))
    def test_canonicalization_is_idempotent(self, code):
        pattern = pat.pattern_from_int(code)
        canonical = pat.canonicalize(pattern)
        assert pat.canonicalize(canonical) == canonical

    @given(st.integers(min_value=0, max_value=127), st.permutations(range(3)))
    def test_validity_is_permutation_invariant(self, code, perm):
        pattern = pat.pattern_from_int(code)
        assert pat.is_valid(pattern) == pat.is_valid(pat.permute_pattern(pattern, perm))

    @given(st.integers(min_value=0, max_value=127), st.permutations(range(3)))
    def test_motif_index_is_permutation_invariant(self, code, perm):
        pattern = pat.pattern_from_int(code)
        if not pat.is_valid(pattern):
            return
        assert pat.motif_index(pattern) == pat.motif_index(
            pat.permute_pattern(pattern, perm)
        )


# -------------------------------------------------------------- classification
class TestClassificationProperties:
    @given(connected_triples())
    @settings(max_examples=150)
    def test_classification_uniqueness_over_orderings(self, triple):
        """Exhaustive + unique: every connected triple maps to exactly one motif."""
        results = set()
        for ordering in permutations(triple):
            try:
                results.add(classify_instance(*ordering))
            except ReproError:
                results.add(None)
        assert len(results) == 1

    @given(connected_triples(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=80)
    def test_size_independence_under_node_cloning(self, triple, factor):
        """Replacing every node by `factor` clones leaves the motif unchanged."""
        center, left, right = triple
        try:
            expected = classify_instance(center, left, right)
        except ReproError:
            return

        def clone(edge):
            return frozenset((node, copy) for node in edge for copy in range(factor))

        assert classify_instance(clone(center), clone(left), clone(right)) == expected


# ------------------------------------------------------------------- counting
class TestCountingProperties:
    @given(hypergraphs(max_edges=10))
    @settings(max_examples=40, deadline=None)
    def test_exact_counts_match_brute_force(self, hypergraph):
        assert count_exact(hypergraph).to_dict() == brute_force_counts(hypergraph).to_dict()

    @given(hypergraphs(min_edges=3, max_edges=10))
    @settings(max_examples=40, deadline=None)
    def test_full_wedge_sampling_equals_exact(self, hypergraph):
        projection = project(hypergraph)
        wedges = projection.hyperwedge_list()
        if not wedges:
            return
        exact = count_exact(hypergraph, projection)
        estimate = count_approx_wedge_sampling(
            hypergraph,
            num_samples=len(wedges),
            projection=projection,
            hyperwedges=wedges,
            sampled_wedges=wedges,
        )
        assert estimate.to_dict() == pytest.approx(exact.to_dict())

    @given(hypergraphs(max_edges=10))
    @settings(max_examples=40, deadline=None)
    def test_hyperwedge_count_matches_projection(self, hypergraph):
        assert count_hyperwedges(hypergraph) == project(hypergraph).num_hyperwedges

    @given(hypergraphs(max_edges=10))
    @settings(max_examples=40, deadline=None)
    def test_projection_is_symmetric_and_positive(self, hypergraph):
        projection = project(hypergraph)
        for i, j in projection.hyperwedges():
            assert projection.overlap(i, j) == projection.overlap(j, i) > 0


# ------------------------------------------------------------------ containers
class TestContainerProperties:
    @given(st.dictionaries(st.integers(1, 26), st.floats(0, 1e6), max_size=26))
    def test_counts_round_trip_through_dict(self, mapping):
        counts = MotifCounts.from_dict(mapping)
        assert counts == MotifCounts.from_dict(counts.to_dict())

    @given(
        st.dictionaries(st.integers(1, 26), st.integers(0, 1000), max_size=26),
        st.dictionaries(st.integers(1, 26), st.integers(0, 1000), max_size=26),
    )
    def test_addition_is_commutative(self, first_map, second_map):
        first = MotifCounts.from_dict(first_map)
        second = MotifCounts.from_dict(second_map)
        assert first + second == second + first

    @given(st.dictionaries(st.integers(1, 26), st.integers(0, 1000), min_size=1, max_size=26))
    def test_fractions_sum_to_one_when_nonzero(self, mapping):
        counts = MotifCounts.from_dict(mapping)
        total = counts.total()
        if total == 0:
            return
        assert sum(counts.fractions().values()) == pytest.approx(1.0)


# --------------------------------------------------------------------- metrics
class TestMetricProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1)), min_size=4, max_size=60)
    )
    def test_auc_is_symmetric_under_score_inversion(self, pairs):
        labels = [label for label, _ in pairs]
        scores = [score for _, score in pairs]
        if len(set(labels)) < 2:
            return
        direct = roc_auc(labels, scores)
        inverted = roc_auc(labels, [-score for score in scores])
        assert direct + inverted == pytest.approx(1.0)
