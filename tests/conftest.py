"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.exceptions import ReproError
from repro.hypergraph import Hypergraph
from repro.generators import generate_uniform_random
from repro.motifs import MotifCounts, classify_instance
from repro.obs import metrics as obs_metrics
from repro.projection import project
from repro.store import ENV_STORE_DIR, reset_default_store


@pytest.fixture(autouse=True)
def _reset_metrics_registry():
    """Zero the process-wide metrics registry around every test.

    The :mod:`repro.obs` counters are process-global by design; resetting
    (not clearing — module-level family handles stay registered) keeps each
    test's exact-count assertions independent of what ran before it.
    """
    obs_metrics.reset_metrics()
    yield
    obs_metrics.reset_metrics()


@pytest.fixture(autouse=True)
def _isolated_default_store(monkeypatch):
    """Keep tests away from any developer-configured persistent store.

    Clears ``REPRO_STORE_DIR`` and the cached process default, so engines
    built with the default ``store=True`` run store-less unless a test opts
    in (by setting the variable itself — :func:`repro.store.default_store`
    detects the change — or passing an explicit ``ArtifactStore``).
    """
    monkeypatch.delenv(ENV_STORE_DIR, raising=False)
    reset_default_store()
    yield
    reset_default_store()


@pytest.fixture
def paper_hypergraph() -> Hypergraph:
    """The running example of the paper's Figure 2.

    Hyperedges: e1 = {L, K, F}, e2 = {L, H, K}, e3 = {B, G, L}, e4 = {S, R, F}.
    The paper states this hypergraph has exactly four hyperwedges
    (∧12, ∧13, ∧23, ∧14).
    """
    return Hypergraph(
        [
            {"L", "K", "F"},
            {"L", "H", "K"},
            {"B", "G", "L"},
            {"S", "R", "F"},
        ],
        name="figure-2",
    )


@pytest.fixture
def triangle_hypergraph() -> Hypergraph:
    """Three mutually overlapping hyperedges with a common core (closed instance)."""
    return Hypergraph(
        [
            {0, 1, 2, 3},
            {2, 3, 4, 5},
            {3, 5, 6, 0},
        ],
        name="triangle",
    )


@pytest.fixture
def open_chain_hypergraph() -> Hypergraph:
    """Three hyperedges forming an open chain (the outer two are disjoint)."""
    return Hypergraph(
        [
            {0, 1},
            {1, 2, 3},
            {3, 4},
        ],
        name="open-chain",
    )


@pytest.fixture
def small_random_hypergraph() -> Hypergraph:
    """A small random hypergraph with enough structure for counting tests."""
    return generate_uniform_random(
        num_nodes=20, num_hyperedges=30, mean_size=3.0, max_size=6, seed=7
    )


@pytest.fixture
def medium_random_hypergraph() -> Hypergraph:
    """A somewhat larger random hypergraph used by sampling-accuracy tests."""
    return generate_uniform_random(
        num_nodes=40, num_hyperedges=80, mean_size=3.0, max_size=6, seed=11
    )


def brute_force_counts(hypergraph: Hypergraph) -> MotifCounts:
    """Reference motif counts by explicit enumeration of all hyperedge triples.

    Quadratic/cubic in the number of hyperedges, so only usable on small
    fixtures, but completely independent of the MoCHy implementation.
    """
    counts = MotifCounts.zeros()
    edges = hypergraph.hyperedges()
    for i, j, k in itertools.combinations(range(len(edges)), 3):
        first, second, third = edges[i], edges[j], edges[k]
        if first == second or second == third or first == third:
            continue
        adjacent_pairs = sum(
            1 for a, b in ((first, second), (second, third), (first, third)) if a & b
        )
        if adjacent_pairs < 2:
            continue
        try:
            motif = classify_instance(first, second, third)
        except ReproError:
            continue
        counts.increment(motif)
    return counts


@pytest.fixture
def brute_counter():
    """Expose the brute-force counter as a fixture-injectable callable."""
    return brute_force_counts


@pytest.fixture
def paper_projection(paper_hypergraph):
    """Projected graph of the Figure 2 hypergraph."""
    return project(paper_hypergraph)
