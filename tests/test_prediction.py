"""Tests for the hyperedge-prediction pipeline (features, negatives, metrics, task)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PredictionTaskError
from repro.generators import generate_temporal_coauthorship
from repro.hypergraph import Hypergraph
from repro.prediction import (
    FEATURE_SETS,
    HC_FEATURE_NAMES,
    accuracy,
    build_prediction_dataset,
    candidate_overlaps,
    confusion_matrix,
    generate_fake_hyperedges,
    hc_features,
    hm26_features,
    motif_counts_for_candidate,
    roc_auc,
    run_prediction_experiment,
    select_high_variance_features,
)
from repro.counting import count_instances_containing
from repro.ml import LogisticRegression, RandomForestClassifier
from repro.motifs.patterns import NUM_MOTIFS
from repro.projection import project


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_auc_perfect_and_inverted(self):
        labels = [0, 0, 1, 1]
        assert roc_auc(labels, [0.1, 0.2, 0.8, 0.9]) == 1.0
        assert roc_auc(labels, [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_auc_with_ties_is_half(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_auc_single_class(self):
        assert roc_auc([1, 1], [0.2, 0.9]) == 0.5

    def test_confusion_matrix(self):
        matrix = confusion_matrix([1, 0, 1, 0], [1, 1, 0, 0])
        assert matrix == {
            "true_positive": 1,
            "true_negative": 1,
            "false_positive": 1,
            "false_negative": 1,
        }

    def test_validation(self):
        with pytest.raises(PredictionTaskError):
            accuracy([], [])
        with pytest.raises(PredictionTaskError):
            accuracy([1, 0], [1])
        with pytest.raises(PredictionTaskError):
            roc_auc([1, 2], [0.1, 0.2])


class TestNegatives:
    def test_fakes_have_same_count_and_sizes(self, medium_random_hypergraph):
        positives = list(medium_random_hypergraph.hyperedges())[:10]
        fakes = generate_fake_hyperedges(
            medium_random_hypergraph, positives, replace_fraction=0.5, seed=0
        )
        assert len(fakes) == len(positives)
        for fake, positive in zip(fakes, positives):
            assert len(fake) == len(positive)
            assert fake != frozenset(positive)

    def test_fakes_avoid_existing_hyperedges(self, medium_random_hypergraph):
        positives = list(medium_random_hypergraph.hyperedges())[:20]
        fakes = generate_fake_hyperedges(
            medium_random_hypergraph, positives, replace_fraction=0.5, seed=1
        )
        existing = set(medium_random_hypergraph.hyperedges())
        overlap = sum(1 for fake in fakes if fake in existing)
        assert overlap <= 1  # collisions are possible but must be rare

    def test_invalid_parameters(self, small_random_hypergraph):
        positives = list(small_random_hypergraph.hyperedges())[:3]
        with pytest.raises(PredictionTaskError):
            generate_fake_hyperedges(small_random_hypergraph, positives, replace_fraction=0)
        with pytest.raises(ValueError):
            generate_fake_hyperedges(small_random_hypergraph, positives, replace_fraction=2)
        with pytest.raises(PredictionTaskError):
            generate_fake_hyperedges(Hypergraph([]), positives, 0.5)


class TestFeatures:
    def test_candidate_overlaps(self, paper_hypergraph):
        overlaps = candidate_overlaps(paper_hypergraph, {"L", "K", "Z"})
        assert overlaps == {0: 2, 1: 2, 2: 1}

    def test_candidate_counts_match_member_edge_counts(self, medium_random_hypergraph):
        """For a hyperedge already in the hypergraph, the candidate feature equals
        the number of instances containing that hyperedge (minus itself as a partner)."""
        projection = project(medium_random_hypergraph)
        index = 0
        member_counts = count_instances_containing(
            medium_random_hypergraph, index, projection
        )
        # Build the context without hyperedge `index`, then ask for the candidate
        # features of that hyperedge against the reduced context.
        remaining = [
            edge
            for position, edge in enumerate(medium_random_hypergraph.hyperedges())
            if position != index
        ]
        context = Hypergraph(remaining)
        candidate = medium_random_hypergraph.hyperedge(index)
        candidate_counts = motif_counts_for_candidate(context, candidate)
        assert candidate_counts.to_dict() == member_counts.to_dict()

    def test_hm26_feature_matrix_shape(self, small_random_hypergraph):
        candidates = list(small_random_hypergraph.hyperedges())[:5]
        matrix = hm26_features(small_random_hypergraph, candidates)
        assert matrix.shape == (5, NUM_MOTIFS)
        assert np.all(matrix >= 0)

    def test_hc_feature_matrix(self, small_random_hypergraph):
        candidates = list(small_random_hypergraph.hyperedges())[:4]
        matrix = hc_features(small_random_hypergraph, candidates)
        assert matrix.shape == (4, len(HC_FEATURE_NAMES))
        sizes = [len(candidate) for candidate in candidates]
        assert list(matrix[:, HC_FEATURE_NAMES.index("size")]) == sizes

    def test_hc_features_for_unknown_nodes_are_zero_degree(self, small_random_hypergraph):
        matrix = hc_features(small_random_hypergraph, [{"unseen-1", "unseen-2"}])
        assert matrix[0, HC_FEATURE_NAMES.index("mean_degree")] == 0.0

    def test_high_variance_selection(self):
        features = np.zeros((10, 5))
        features[:, 2] = np.arange(10)
        features[:, 4] = np.arange(10) * 3
        chosen = select_high_variance_features(features, num_features=2)
        assert set(chosen) == {2, 4}
        with pytest.raises(ValueError):
            select_high_variance_features(np.zeros(3), 2)


class TestExperiment:
    @pytest.fixture(scope="class")
    def temporal(self):
        return generate_temporal_coauthorship(
            num_years=4,
            initial_authors=90,
            initial_papers=60,
            seed=3,
        )

    def test_dataset_construction(self, temporal):
        years = temporal.timestamps()
        dataset = build_prediction_dataset(
            temporal,
            context_start=years[0],
            context_end=years[-2],
            test_start=years[-1],
            test_end=years[-1],
            max_positives=40,
            seed=0,
        )
        for feature_set in FEATURE_SETS:
            assert dataset.features_train[feature_set].shape[0] == len(dataset.labels_train)
            assert dataset.features_test[feature_set].shape[0] == len(dataset.labels_test)
        assert set(dataset.labels_train) == {0, 1}
        assert dataset.features_train["HM7"].shape[1] == 7

    def test_window_validation(self, temporal):
        years = temporal.timestamps()
        with pytest.raises(PredictionTaskError):
            build_prediction_dataset(temporal, years[1], years[0], years[2], years[2])

    def test_experiment_scores_and_feature_ordering(self, temporal):
        years = temporal.timestamps()
        result = run_prediction_experiment(
            temporal,
            context_start=years[0],
            context_end=years[-2],
            test_start=years[-1],
            test_end=years[-1],
            classifiers={
                "logistic-regression": LogisticRegression(),
                "random-forest": RandomForestClassifier(num_trees=10, seed=0),
            },
            max_positives=40,
            seed=0,
        )
        assert len(result.scores) == 2 * len(FEATURE_SETS)
        for _, _, acc, auc in result.as_rows():
            assert 0.0 <= acc <= 1.0
            assert 0.0 <= auc <= 1.0
        # The paper's headline: h-motif features beat the hand-crafted baseline.
        assert result.mean_metric("HM26", "auc") > 0.5
        assert result.mean_metric("HM26", "auc") >= result.mean_metric("HC", "auc") - 0.05
        score = result.score("random-forest", "HM26")
        assert score.feature_set == "HM26"
        with pytest.raises(PredictionTaskError):
            result.score("random-forest", "HM99")
