"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.generators import generate_uniform_random
from repro.hypergraph import io as hio


@pytest.fixture
def hypergraph_file(tmp_path):
    hypergraph = generate_uniform_random(num_nodes=25, num_hyperedges=40, seed=0)
    path = tmp_path / "hypergraph.txt"
    hio.write_plain(hypergraph, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_defaults(self, hypergraph_file):
        arguments = build_parser().parse_args(["count", str(hypergraph_file)])
        assert arguments.algorithm == "exact"
        assert arguments.workers == 1


class TestCommands:
    def test_count_exact(self, hypergraph_file, capsys):
        assert main(["count", str(hypergraph_file)]) == 0
        output = capsys.readouterr().out
        assert "total instances" in output
        assert "algorithm: exact" in output

    def test_count_with_sampling(self, hypergraph_file, capsys):
        code = main(
            ["count", str(hypergraph_file), "--algorithm", "mochy-a+", "--ratio", "0.5", "--seed", "1"]
        )
        assert code == 0
        assert "wedge-sampling" in capsys.readouterr().out

    def test_count_missing_file(self, tmp_path, capsys):
        assert main(["count", str(tmp_path / "missing.txt")]) == 1
        assert "error" in capsys.readouterr().err

    def test_count_invalid_algorithm(self, hypergraph_file, capsys):
        assert main(["count", str(hypergraph_file), "--algorithm", "bogus"]) == 1
        assert "unknown algorithm" in capsys.readouterr().err

    def test_profile(self, hypergraph_file, capsys):
        assert main(["profile", str(hypergraph_file), "--random", "2", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "characteristic profile" in output
        # One line per motif plus two header lines.
        assert len(output.strip().splitlines()) == 28

    def test_compare(self, hypergraph_file, capsys):
        assert main(["compare", str(hypergraph_file), "--random", "2", "--seed", "0"]) == 0
        assert "dataset:" in capsys.readouterr().out

    def test_generate(self, tmp_path, capsys):
        output_path = tmp_path / "generated.txt"
        code = main(
            ["generate", "contact-primary-like", str(output_path), "--scale", "0.3"]
        )
        assert code == 0
        assert output_path.exists()
        loaded = hio.read_plain(output_path)
        assert loaded.num_hyperedges > 0

    def test_generate_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "unknown-dataset", str(tmp_path / "x.txt")])

    def test_verbose_flag(self, hypergraph_file):
        assert main(["--verbose", "count", str(hypergraph_file)]) == 0

    def test_count_rejects_samples_and_ratio_together(self, hypergraph_file, capsys):
        code = main(
            [
                "count", str(hypergraph_file),
                "--algorithm", "mochy-a", "--samples", "5", "--ratio", "0.2",
            ]
        )
        assert code == 1
        assert "either --samples or --ratio" in capsys.readouterr().err

    def test_count_json_output(self, hypergraph_file, capsys):
        code = main(
            ["count", str(hypergraph_file), "--algorithm", "mochy-a",
             "--samples", "10", "--seed", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "count"
        assert payload["algorithm"] == "edge-sampling"
        assert payload["num_samples"] == 10
        assert len(payload["counts"]) == 26

    def test_profile_json_output(self, hypergraph_file, capsys):
        code = main(
            ["profile", str(hypergraph_file), "--random", "2", "--seed", "0", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "profile"
        assert len(payload["values"]) == 26

    def test_count_lazy_projection(self, hypergraph_file, capsys):
        code = main(
            ["count", str(hypergraph_file), "--projection", "lazy", "--budget", "4"]
        )
        assert code == 0
        assert "total instances" in capsys.readouterr().out

    def test_count_budget_requires_lazy(self, hypergraph_file, capsys):
        assert main(["count", str(hypergraph_file), "--budget", "4"]) == 1
        assert "lazy" in capsys.readouterr().err

    def test_count_registered_dataset_name(self, capsys):
        assert main(["count", "contact-primary-like"]) == 0
        assert "contact-primary-like" in capsys.readouterr().out

    def test_unknown_dataset_suggests_nearest_match(self, capsys):
        assert main(["count", "contact-primary-lik"]) == 1
        error = capsys.readouterr().err
        assert "did you mean 'contact-primary-like'?" in error
        assert "registered datasets:" in error

    def test_compare_json_output(self, hypergraph_file, capsys):
        code = main(
            ["compare", str(hypergraph_file), "--random", "2", "--seed", "0", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "compare"
        assert len(payload["rows"]) == 26

    def test_predict_json_output(self, capsys):
        code = main(
            ["predict", "--years", "3", "--max-positives", "20", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "predict"
        assert payload["scores"]


class TestStoreCommands:
    def test_second_invocation_warm_starts_from_store(
        self, hypergraph_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert main(["count", str(hypergraph_file), "--store", store, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        # A fresh invocation builds a fresh engine and a fresh ArtifactStore
        # instance, so the hit must come from the persistent tier.
        assert main(["count", str(hypergraph_file), "--store", store, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert not cold["from_cache"]
        assert warm["from_cache"] and warm["cache_tier"] == "disk"
        assert warm["counts"] == cold["counts"]

    def test_store_and_no_store_conflict(self, hypergraph_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["count", str(hypergraph_file), "--store", store, "--no-store", "--json"]
        ) == 1
        assert "either --store or --no-store" in capsys.readouterr().err

    def test_no_store_skips_persistence(
        self, hypergraph_file, tmp_path, monkeypatch, capsys
    ):
        store_dir = tmp_path / "store"
        monkeypatch.setenv("REPRO_STORE_DIR", str(store_dir))
        # The opted-out run must neither read nor write artifacts.
        assert main(["count", str(hypergraph_file), "--no-store", "--json"]) == 0
        assert not json.loads(capsys.readouterr().out)["from_cache"]
        assert not list(store_dir.glob("shards/*/*/*.npz"))
        # A warmed store is then ignored by a --no-store run.
        assert main(["count", str(hypergraph_file), "--json"]) == 0
        capsys.readouterr()
        assert main(["count", str(hypergraph_file), "--no-store", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert not payload["from_cache"]

    def test_unusable_explicit_store_fails_loudly(self, tmp_path, hypergraph_file, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory", encoding="utf-8")
        bad = str(blocker / "store")
        assert main(["count", str(hypergraph_file), "--store", bad, "--json"]) == 1
        assert "unusable" in capsys.readouterr().err
        assert main(["cache", "--store", bad, "ls"]) == 1
        assert "unusable" in capsys.readouterr().err

    def test_unusable_env_store_degrades_silently(
        self, tmp_path, hypergraph_file, monkeypatch, capsys
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory", encoding="utf-8")
        monkeypatch.setenv("REPRO_STORE_DIR", str(blocker / "store"))
        assert main(["count", str(hypergraph_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert not payload["from_cache"]

    def test_env_store_warms_cli(self, hypergraph_file, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main(["count", str(hypergraph_file), "--json"]) == 0
        capsys.readouterr()
        assert main(["count", str(hypergraph_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["from_cache"]

    def test_cache_requires_a_store_directory(self, capsys):
        assert main(["cache", "ls"]) == 1
        assert "REPRO_STORE_DIR" in capsys.readouterr().err

    def test_cache_warm_then_ls(self, hypergraph_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            ["cache", "--store", store, "warm", str(hypergraph_file), "--profile", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "count computed" in output
        assert "profile computed" in output
        assert main(["cache", "--store", store, "ls"]) == 0
        listing = capsys.readouterr().out
        for kind in ("projection", "count", "null-counts", "profile"):
            assert kind in listing
        assert "total:" in listing

    def test_cache_warm_hit_on_second_run(self, hypergraph_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["cache", "--store", store, "warm", str(hypergraph_file)]) == 0
        capsys.readouterr()
        assert main(["cache", "--store", store, "warm", str(hypergraph_file)]) == 0
        assert "count hit" in capsys.readouterr().out

    def test_cache_warm_unknown_dataset(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["cache", "--store", store, "warm", "no-such-dataset"]) == 1
        assert "no-such-dataset" in capsys.readouterr().err

    def test_cache_ls_json(self, hypergraph_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["count", str(hypergraph_file), "--store", store]) == 0
        capsys.readouterr()
        assert main(["cache", "--store", store, "ls", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_entries"] >= 1
        assert payload["occupancy"]["layout"] == "lsm"
        for entry in payload["entries"]:
            assert set(entry) >= {
                "kind", "fingerprint", "shard", "level", "size_bytes",
                "age_seconds", "created", "params",
            }
            assert entry["shard"] == entry["fingerprint"][:2]
            assert entry["age_seconds"] >= 0

    def test_cache_ls_empty_store(self, tmp_path, capsys):
        assert main(["cache", "--store", str(tmp_path / "store"), "ls"]) == 0
        assert "(no artifacts)" in capsys.readouterr().out

    def test_cache_gc(self, hypergraph_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["count", str(hypergraph_file), "--store", store]) == 0
        # Drop the shard's manifest log: its payloads become orphans.
        log = next((tmp_path / "store" / "shards").glob("*/manifest.log"))
        log.unlink()
        capsys.readouterr()
        assert main(["cache", "--store", store, "gc"]) == 0
        output = capsys.readouterr().out
        assert "removed" in output and "kept" in output


class TestServeBatch:
    @pytest.fixture
    def request_file(self, hypergraph_file, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"source": str(hypergraph_file)}),
                    "# comments and blank lines are skipped",
                    "",
                    json.dumps(
                        {
                            "source": str(hypergraph_file),
                            "spec": {"type": "profile", "num_random": 2, "seed": 0},
                        }
                    ),
                    # Terse form: spec fields inlined beside "source".
                    json.dumps(
                        {
                            "source": str(hypergraph_file),
                            "type": "count",
                            "algorithm": "mochy-a+",
                            "num_samples": 25,
                            "seed": 0,
                        }
                    ),
                    json.dumps({"source": str(hypergraph_file)}),  # dedup slot
                ]
            ),
            encoding="utf-8",
        )
        return path

    def test_serve_batch_table_output(self, request_file, tmp_path, capsys):
        assert (
            main(
                [
                    "serve-batch",
                    str(request_file),
                    "--store",
                    str(tmp_path / "store"),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "served 4 requests (3 unique, 1 deduplicated)" in output
        assert "profile" in output

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_serve_batch_parallel_backends(
        self, request_file, tmp_path, backend, capsys
    ):
        assert (
            main(
                [
                    "serve-batch",
                    str(request_file),
                    "--workers",
                    "2",
                    "--backend",
                    backend,
                    "--store",
                    str(tmp_path / "store"),
                ]
            )
            == 0
        )
        assert "served 4 requests" in capsys.readouterr().out

    def test_serve_batch_parallel_matches_serial_json(
        self, request_file, tmp_path, capsys
    ):
        assert main(["serve-batch", str(request_file), "--json", "--no-store"]) == 0
        serial = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert (
            main(
                [
                    "serve-batch",
                    str(request_file),
                    "--json",
                    "--no-store",
                    "--workers",
                    "2",
                    "--backend",
                    "process",
                ]
            )
            == 0
        )
        parallel = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(serial) == len(parallel) == 4
        for cold, hot in zip(serial, parallel):
            assert cold["kind"] == hot["kind"]
            if "counts" in cold:
                assert cold["counts"] == hot["counts"]
            if "values" in cold:
                assert cold["values"] == hot["values"]

    def test_serve_batch_missing_file(self, capsys):
        assert main(["serve-batch", "/nonexistent.jsonl", "--no-store"]) == 1
        assert "request file not found" in capsys.readouterr().err

    def test_serve_batch_invalid_json_line(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json", encoding="utf-8")
        assert main(["serve-batch", str(path), "--no-store"]) == 1
        assert "line 1" in capsys.readouterr().err

    def test_serve_batch_missing_source(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"spec": {"type": "count"}}), encoding="utf-8")
        assert main(["serve-batch", str(path), "--no-store"]) == 1
        assert 'missing or invalid "source"' in capsys.readouterr().err

    def test_serve_batch_unknown_spec_type(self, hypergraph_file, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"source": str(hypergraph_file), "spec": {"type": "tally"}}),
            encoding="utf-8",
        )
        assert main(["serve-batch", str(path), "--no-store"]) == 1
        assert "unknown spec type" in capsys.readouterr().err

    def test_serve_batch_rejects_predict_spec(
        self, hypergraph_file, tmp_path, capsys
    ):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"source": str(hypergraph_file), "spec": {"type": "predict"}}),
            encoding="utf-8",
        )
        assert main(["serve-batch", str(path), "--no-store"]) == 1
        assert "not servable" in capsys.readouterr().err

    def test_serve_batch_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n# only a comment\n", encoding="utf-8")
        assert main(["serve-batch", str(path), "--no-store"]) == 1
        assert "no requests" in capsys.readouterr().err


class TestParallelWarm:
    def test_cache_warm_with_process_workers_then_serial_hit(
        self, hypergraph_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert (
            main(
                [
                    "cache",
                    "--store",
                    store,
                    "warm",
                    str(hypergraph_file),
                    "--profile",
                    "2",
                    "--workers",
                    "2",
                    "--backend",
                    "process",
                ]
            )
            == 0
        )
        assert "count computed, profile computed" in capsys.readouterr().out
        # The worker-written artifacts serve a fresh serial invocation.
        assert (
            main(
                ["cache", "--store", store, "warm", str(hypergraph_file), "--profile", "2"]
            )
            == 0
        )
        assert "count hit, profile hit" in capsys.readouterr().out
