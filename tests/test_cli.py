"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.generators import generate_uniform_random
from repro.hypergraph import io as hio


@pytest.fixture
def hypergraph_file(tmp_path):
    hypergraph = generate_uniform_random(num_nodes=25, num_hyperedges=40, seed=0)
    path = tmp_path / "hypergraph.txt"
    hio.write_plain(hypergraph, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_defaults(self, hypergraph_file):
        arguments = build_parser().parse_args(["count", str(hypergraph_file)])
        assert arguments.algorithm == "exact"
        assert arguments.workers == 1


class TestCommands:
    def test_count_exact(self, hypergraph_file, capsys):
        assert main(["count", str(hypergraph_file)]) == 0
        output = capsys.readouterr().out
        assert "total instances" in output
        assert "algorithm: exact" in output

    def test_count_with_sampling(self, hypergraph_file, capsys):
        code = main(
            ["count", str(hypergraph_file), "--algorithm", "mochy-a+", "--ratio", "0.5", "--seed", "1"]
        )
        assert code == 0
        assert "wedge-sampling" in capsys.readouterr().out

    def test_count_missing_file(self, tmp_path, capsys):
        assert main(["count", str(tmp_path / "missing.txt")]) == 1
        assert "error" in capsys.readouterr().err

    def test_count_invalid_algorithm(self, hypergraph_file, capsys):
        assert main(["count", str(hypergraph_file), "--algorithm", "bogus"]) == 1
        assert "unknown algorithm" in capsys.readouterr().err

    def test_profile(self, hypergraph_file, capsys):
        assert main(["profile", str(hypergraph_file), "--random", "2", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "characteristic profile" in output
        # One line per motif plus two header lines.
        assert len(output.strip().splitlines()) == 28

    def test_compare(self, hypergraph_file, capsys):
        assert main(["compare", str(hypergraph_file), "--random", "2", "--seed", "0"]) == 0
        assert "dataset:" in capsys.readouterr().out

    def test_generate(self, tmp_path, capsys):
        output_path = tmp_path / "generated.txt"
        code = main(
            ["generate", "contact-primary-like", str(output_path), "--scale", "0.3"]
        )
        assert code == 0
        assert output_path.exists()
        loaded = hio.read_plain(output_path)
        assert loaded.num_hyperedges > 0

    def test_generate_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "unknown-dataset", str(tmp_path / "x.txt")])

    def test_verbose_flag(self, hypergraph_file):
        assert main(["--verbose", "count", str(hypergraph_file)]) == 0

    def test_count_rejects_samples_and_ratio_together(self, hypergraph_file, capsys):
        code = main(
            [
                "count", str(hypergraph_file),
                "--algorithm", "mochy-a", "--samples", "5", "--ratio", "0.2",
            ]
        )
        assert code == 1
        assert "either --samples or --ratio" in capsys.readouterr().err

    def test_count_json_output(self, hypergraph_file, capsys):
        code = main(
            ["count", str(hypergraph_file), "--algorithm", "mochy-a",
             "--samples", "10", "--seed", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "count"
        assert payload["algorithm"] == "edge-sampling"
        assert payload["num_samples"] == 10
        assert len(payload["counts"]) == 26

    def test_profile_json_output(self, hypergraph_file, capsys):
        code = main(
            ["profile", str(hypergraph_file), "--random", "2", "--seed", "0", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "profile"
        assert len(payload["values"]) == 26

    def test_count_lazy_projection(self, hypergraph_file, capsys):
        code = main(
            ["count", str(hypergraph_file), "--projection", "lazy", "--budget", "4"]
        )
        assert code == 0
        assert "total instances" in capsys.readouterr().out

    def test_count_budget_requires_lazy(self, hypergraph_file, capsys):
        assert main(["count", str(hypergraph_file), "--budget", "4"]) == 1
        assert "lazy" in capsys.readouterr().err

    def test_count_registered_dataset_name(self, capsys):
        assert main(["count", "contact-primary-like"]) == 0
        assert "contact-primary-like" in capsys.readouterr().out
