"""Tests for :mod:`repro.store`: fingerprints, the tiered store, engine wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import CompareSpec, CountSpec, MotifEngine, ProfileSpec
from repro.exceptions import StoreError
from repro.generators import generate_uniform_random
from repro.hypergraph import Hypergraph
from repro.store import (
    ENV_STORE_DIR,
    ArtifactStore,
    default_store,
    params_digest,
    reset_default_store,
    resolve_store,
)
from repro.store.artifacts import FORMAT_VERSION
from repro.store import codecs


def _make_hypergraph(seed: int = 0) -> Hypergraph:
    return generate_uniform_random(num_nodes=25, num_hyperedges=40, seed=seed)


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


def _put_dummy(store, fingerprint="f" * 64, value=1.0, kind="count"):
    arrays = {"counts": np.full(26, value)}
    store.put(kind, fingerprint, {"algorithm": "exact"}, arrays, {"num_samples": None})
    return arrays


class TestFingerprint:
    def test_same_content_same_fingerprint(self):
        assert _make_hypergraph().fingerprint() == _make_hypergraph().fingerprint()

    def test_name_is_not_part_of_the_identity(self):
        hypergraph = _make_hypergraph()
        assert hypergraph.fingerprint() == hypergraph.with_name("other").fingerprint()

    def test_node_labels_are_not_part_of_the_identity(self):
        first = Hypergraph([{1, 2}, {2, 3}], name="ints")
        second = Hypergraph([{"a", "b"}, {"b", "c"}], name="strings")
        assert first.fingerprint() == second.fingerprint()

    def test_structure_changes_the_fingerprint(self):
        assert (
            Hypergraph([{1, 2}, {2, 3}]).fingerprint()
            != Hypergraph([{1, 2}, {1, 3}]).fingerprint()
        )

    def test_hyperedge_order_is_part_of_the_identity(self):
        # Derived artifacts (projections, hyperwedge lists, seeded draws) are
        # indexed by hyperedge position, so permuted edges must not share them.
        assert (
            Hypergraph([{1, 2}, {2, 3}]).fingerprint()
            != Hypergraph([{2, 3}, {1, 2}]).fingerprint()
        )

    def test_params_digest_is_order_insensitive(self):
        assert params_digest({"a": 1, "b": None}) == params_digest({"b": None, "a": 1})
        assert params_digest({"a": 1}) != params_digest({"a": 2})


class TestArtifactStoreTiers:
    def test_round_trip_hits_memory(self, store):
        arrays = _put_dummy(store)
        hit = store.get("count", "f" * 64, {"algorithm": "exact"})
        assert hit is not None
        got, meta, tier = hit
        assert tier == "memory"
        assert np.array_equal(got["counts"], arrays["counts"])
        assert meta == {"num_samples": None}

    def test_second_instance_hits_disk(self, store):
        _put_dummy(store)
        reopened = ArtifactStore(store.directory)
        hit = reopened.get("count", "f" * 64, {"algorithm": "exact"})
        assert hit is not None
        assert hit[2] == "disk"
        assert reopened.stats.disk_hits == 1

    def test_memory_eviction_keeps_disk_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", memory_items=2)
        for index in range(3):
            _put_dummy(store, fingerprint=f"{index:064d}")
        assert store.stats.evictions == 1
        hit = store.get("count", f"{0:064d}", {"algorithm": "exact"})
        assert hit is not None and hit[2] == "disk"

    def test_memory_only_store(self):
        store = ArtifactStore()
        _put_dummy(store)
        assert store.get("count", "f" * 64, {"algorithm": "exact"})[2] == "memory"
        assert not store.persistent
        assert store.entries() == []

    def test_miss_on_unknown_key(self, store):
        assert store.get("count", "f" * 64, {"algorithm": "exact"}) is None
        assert store.stats.misses == 1

    def test_returned_arrays_are_read_only(self, store):
        _put_dummy(store)
        got, _, _ = store.get("count", "f" * 64, {"algorithm": "exact"})
        with pytest.raises(ValueError):
            got["counts"][0] = 99.0

    def test_resolve_store_contract(self, store):
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        assert resolve_store(store) is store
        with pytest.raises(StoreError):
            resolve_store("not-a-store")


class TestFailurePaths:
    def _entry_files(self, store):
        logs = list(store.directory.glob("shards/*/manifest.log"))
        payloads = list(store.directory.glob("shards/*/*/*.npz"))
        assert logs and payloads
        return logs[0], payloads[0]

    def test_truncated_payload_is_a_miss(self, store):
        _put_dummy(store)
        _, payload = self._entry_files(store)
        payload.write_bytes(payload.read_bytes()[:10])
        reopened = ArtifactStore(store.directory)
        assert reopened.get("count", "f" * 64, {"algorithm": "exact"}) is None
        assert reopened.stats.corrupt_entries == 1

    def test_garbage_log_is_a_miss(self, store):
        _put_dummy(store)
        log, _ = self._entry_files(store)
        log.write_text("{not json", encoding="utf-8")
        reopened = ArtifactStore(store.directory)
        assert reopened.get("count", "f" * 64, {"algorithm": "exact"}) is None

    def test_trailing_partial_log_record_is_skipped(self, store):
        # A writer crashed mid-append: the log's last line is half a record.
        # Replay-on-open must keep every complete record and skip the tail.
        _put_dummy(store)
        log, _ = self._entry_files(store)
        with open(log, "ab") as handle:
            handle.write(b'{"format_version": 2, "op": "put", "kind": "tru')
        reopened = ArtifactStore(store.directory)
        assert reopened.get("count", "f" * 64, {"algorithm": "exact"}) is not None

    def test_version_mismatched_entry_is_a_miss(self, store):
        _put_dummy(store)
        log, _ = self._entry_files(store)
        record = json.loads(log.read_text(encoding="utf-8").splitlines()[0])
        record["format_version"] = FORMAT_VERSION + 1
        log.write_text(json.dumps(record) + "\n", encoding="utf-8")
        reopened = ArtifactStore(store.directory)
        assert reopened.get("count", "f" * 64, {"algorithm": "exact"}) is None

    def test_version_mismatched_manifest_suspends_disk(self, store):
        _put_dummy(store)
        manifest = store.directory / "manifest.json"
        manifest.write_text(json.dumps({"format_version": 999}), encoding="utf-8")
        stale = ArtifactStore(store.directory)
        assert stale.disk_stale
        assert stale.get("count", "f" * 64, {"algorithm": "exact"}) is None
        assert stale.entries() == []
        # gc compacts the stale directory, rewrites the manifest and
        # re-enables persistence.
        stats = stale.gc()
        assert stats.removed_files > 0
        assert not stale.disk_stale
        _put_dummy(stale)
        assert ArtifactStore(store.directory).get(
            "count", "f" * 64, {"algorithm": "exact"}
        ) is not None

    def test_concurrent_writers_do_not_clobber(self, tmp_path):
        first = ArtifactStore(tmp_path / "s")
        second = ArtifactStore(tmp_path / "s")
        _put_dummy(first, value=3.0)
        _put_dummy(second, value=3.0)
        reopened = ArtifactStore(tmp_path / "s")
        hit = reopened.get("count", "f" * 64, {"algorithm": "exact"})
        assert hit is not None
        assert np.array_equal(hit[0]["counts"], np.full(26, 3.0))

    def test_leftover_temp_files_are_ignored_and_collected(self, store):
        _put_dummy(store)
        log, _ = self._entry_files(store)
        junk = log.with_name("manifest.base.json.tmp-999-dead")
        junk.write_bytes(b"partial write")
        reopened = ArtifactStore(store.directory)
        assert reopened.get("count", "f" * 64, {"algorithm": "exact"}) is not None
        stats = reopened.gc()
        assert not junk.exists()
        assert stats.kept_entries == 1

    def test_write_errors_degrade_gracefully(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        # Block the disk tier by occupying the shard root with a plain file;
        # the put must absorb the OSError and still serve the memory tier.
        (store.directory / "shards").write_text("in the way", encoding="utf-8")
        _put_dummy(store)
        assert store.stats.write_errors == 1
        assert store.get("count", "f" * 64, {"algorithm": "exact"})[2] == "memory"

    def test_unusable_directory_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory", encoding="utf-8")
        store = ArtifactStore(blocker / "store")  # mkdir fails: degrade
        assert store.disk_error is not None
        assert not store.persistent
        _put_dummy(store)
        assert store.get("count", "f" * 64, {"algorithm": "exact"})[2] == "memory"
        assert store.entries() == []
        stats = store.gc()
        assert any("unavailable" in detail for detail in stats.details)
        # Once the obstruction is gone, gc re-probes and restores persistence.
        blocker.unlink()
        assert store.gc().details == []
        assert store.persistent


class TestGC:
    def test_gc_removes_orphans_and_invalid_entries(self, store):
        _put_dummy(store, fingerprint="a" * 64)
        _put_dummy(store, fingerprint="b" * 64)
        logs = sorted(store.directory.glob("shards/*/manifest.log"))
        payloads = sorted(store.directory.glob("shards/*/*/*.npz"))
        logs[0].unlink()  # shard aa loses its records -> payload orphaned
        payloads[1].write_bytes(b"corrupted")  # shard bb: checksum failure
        extra = store.directory / "shards" / "cc" / ("c" * 64) / "count-dead.npz"
        extra.parent.mkdir(parents=True)
        extra.write_bytes(b"no record")
        stats = store.gc()
        assert stats.kept_entries == 0
        assert stats.removed_entries >= 1  # the corrupt recorded entry
        assert stats.removed_files >= 3
        assert list(store.directory.glob("shards/*/*/*.npz")) == []

    def test_gc_keeps_valid_entries(self, store):
        _put_dummy(store)
        stats = store.gc()
        assert stats.kept_entries == 1
        assert stats.removed_files == 0
        assert ArtifactStore(store.directory).get(
            "count", "f" * 64, {"algorithm": "exact"}
        ) is not None

    def test_gc_on_memory_only_store_is_a_noop(self):
        stats = ArtifactStore().gc()
        assert stats.kept_entries == 0 and stats.removed_files == 0


class TestDefaultStore:
    def test_disabled_without_environment(self):
        assert default_store() is None

    def test_env_configures_and_is_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "env-store"))
        store = default_store()
        assert store is not None
        assert store.directory == tmp_path / "env-store"
        assert default_store() is store

    def test_env_change_rebuilds(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "one"))
        first = default_store()
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "two"))
        second = default_store()
        assert first is not second
        assert second.directory == tmp_path / "two"
        reset_default_store()

    def test_default_engine_uses_env_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "env-store"))
        engine = MotifEngine(_make_hypergraph())
        assert engine.store is default_store()
        engine.count()
        assert any(
            entry.kind == codecs.KIND_COUNT for entry in engine.store.entries()
        )


class TestEngineIntegration:
    def test_warm_start_count_is_bit_identical(self, store):
        cold = MotifEngine(_make_hypergraph(), store=store).count()
        warm_engine = MotifEngine(_make_hypergraph(), store=ArtifactStore(store.directory))
        warm = warm_engine.count()
        assert warm.from_cache and warm.cache_tier == "disk"
        assert warm_engine.num_projection_builds == 0
        assert np.array_equal(warm.counts.to_array(), cold.counts.to_array())
        assert warm.counting_seconds == 0.0 and warm.projection_seconds == 0.0

    def test_warm_start_seeded_sampling_is_bit_identical(self, store):
        spec = CountSpec(algorithm="mochy-a+", num_samples=9, seed=4)
        cold = MotifEngine(_make_hypergraph(), store=store).count(spec)
        warm = MotifEngine(
            _make_hypergraph(), store=ArtifactStore(store.directory)
        ).count(spec)
        assert warm.from_cache and warm.cache_tier == "disk"
        assert np.array_equal(warm.counts.to_array(), cold.counts.to_array())

    def test_unseeded_sampling_is_never_stored(self, store):
        spec = CountSpec(algorithm="mochy-a", num_samples=8)
        engine = MotifEngine(_make_hypergraph(), store=store)
        engine.count(spec)
        kinds = {entry.kind for entry in store.entries()}
        assert codecs.KIND_COUNT not in kinds  # only the projection persists
        assert kinds == {codecs.KIND_PROJECTION}

    def test_projection_served_without_rebuild(self, store):
        first = MotifEngine(_make_hypergraph(), store=store)
        first.count()
        second = MotifEngine(_make_hypergraph(), store=ArtifactStore(store.directory))
        assert second.projection == first.projection
        assert second.num_projection_builds == 0

    def test_warm_start_profile_and_compare(self, store):
        hypergraph = _make_hypergraph()
        cold_engine = MotifEngine(hypergraph, store=store)
        cold_profile = cold_engine.profile(ProfileSpec(num_random=2, seed=0))
        cold_compare = cold_engine.compare(CompareSpec(num_random=2, seed=0))
        warm_engine = MotifEngine(
            _make_hypergraph(), store=ArtifactStore(store.directory)
        )
        warm_profile = warm_engine.profile(ProfileSpec(num_random=2, seed=0))
        assert warm_profile.from_cache and warm_profile.cache_tier == "disk"
        assert np.array_equal(warm_profile.values, cold_profile.values)
        assert np.array_equal(
            warm_profile.profile.real_counts.to_array(),
            cold_profile.profile.real_counts.to_array(),
        )
        warm_compare = warm_engine.compare(CompareSpec(num_random=2, seed=0))
        assert warm_compare.from_cache and warm_compare.cache_tier == "disk"
        assert warm_compare.report.rows == cold_compare.report.rows

    def test_randomized_null_hypergraphs_are_not_stored(self, store):
        # Only the real dataset's artifacts and the *aggregated* null counts
        # persist; the ephemeral -randN hypergraphs (whose fingerprints never
        # recur across unseeded runs) must not grow the store.
        engine = MotifEngine(_make_hypergraph(), store=store)
        engine.profile(ProfileSpec(num_random=2, seed=0))
        fingerprints = {entry.fingerprint for entry in store.entries()}
        assert fingerprints == {engine.fingerprint}

    def test_unseeded_profile_is_never_stored(self, store):
        engine = MotifEngine(_make_hypergraph(), store=store)
        engine.profile(ProfileSpec(num_random=2, seed=None))
        kinds = {entry.kind for entry in store.entries()}
        assert codecs.KIND_PROFILE not in kinds
        assert codecs.KIND_NULL not in kinds

    def test_explicit_real_counts_bypass_the_store(self, store):
        engine = MotifEngine(_make_hypergraph(), store=store)
        counts = engine.count().counts
        doctored = counts + counts
        result = engine.profile(
            ProfileSpec(num_random=2, seed=0), real_counts=doctored
        )
        assert not result.from_cache
        kinds = {entry.kind for entry in store.entries()}
        assert codecs.KIND_PROFILE not in kinds

    def test_store_disabled_engine_never_touches_disk(self, store):
        engine = MotifEngine(_make_hypergraph(), store=False)
        assert engine.store is None
        engine.count()
        assert store.entries() == []

    def test_corrupted_count_artifact_falls_back_to_recompute(self, store):
        cold = MotifEngine(_make_hypergraph(), store=store).count()
        for payload in store.directory.glob("shards/*/*/count-*.npz"):
            payload.write_bytes(b"garbage")
        warm_engine = MotifEngine(
            _make_hypergraph(), store=ArtifactStore(store.directory)
        )
        warm = warm_engine.count()
        assert not warm.from_cache
        assert np.array_equal(warm.counts.to_array(), cold.counts.to_array())

    def test_memory_tier_shared_across_engines_in_process(self, store):
        hypergraph = _make_hypergraph()
        MotifEngine(hypergraph, store=store).count()
        hit = MotifEngine(_make_hypergraph(), store=store).count()
        assert hit.from_cache and hit.cache_tier == "memory"

    def test_mutating_store_hit_does_not_poison_cache(self, store):
        hypergraph = _make_hypergraph()
        MotifEngine(hypergraph, store=store).count()
        warm = MotifEngine(_make_hypergraph(), store=store)
        first = warm.count()
        expected = first.counts.to_array()
        first.counts.increment(1, 1000.0)
        assert np.array_equal(warm.count().counts.to_array(), expected)
