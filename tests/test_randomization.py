"""Tests for the Chung–Lu null model and the randomization driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RandomizationError
from repro.hypergraph import Hypergraph
from repro.randomization import (
    NULL_MODEL_CHUNG_LU,
    NULL_MODEL_SLOT_FILL,
    NULL_MODELS,
    chung_lu_bipartite,
    chung_lu_hypergraph,
    get_randomizer,
    random_motif_counts,
    randomize,
    weighted_slot_fill,
)
from repro.utils.rng import ensure_rng


class TestChungLuBipartite:
    def test_preserves_expected_degrees_roughly(self):
        rng = ensure_rng(0)
        node_degrees = np.array([10.0, 8.0, 6.0, 4.0, 2.0, 2.0, 2.0, 1.0, 1.0])
        edge_sizes = np.array([4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0])
        totals = np.zeros(len(node_degrees))
        trials = 200
        for _ in range(trials):
            memberships = chung_lu_bipartite(node_degrees, edge_sizes, rng)
            for members in memberships:
                for node in members:
                    totals[node] += 1
        observed = totals / trials
        # Higher-weight nodes should receive systematically more incidences.
        assert observed[0] > observed[-1]
        assert np.corrcoef(observed, node_degrees)[0, 1] > 0.9

    def test_rejects_negative_degrees(self):
        with pytest.raises(RandomizationError):
            chung_lu_bipartite([-1.0, 2.0], [1.0], ensure_rng(0))

    def test_rejects_zero_totals(self):
        with pytest.raises(RandomizationError):
            chung_lu_bipartite([0.0, 0.0], [1.0], ensure_rng(0))

    def test_zero_size_edges_get_no_members(self):
        memberships = chung_lu_bipartite([2.0, 2.0], [0.0, 2.0], ensure_rng(0))
        assert memberships[0] == []


class TestHypergraphRandomization:
    def test_chung_lu_preserves_scale(self, medium_random_hypergraph):
        randomized = chung_lu_hypergraph(medium_random_hypergraph, seed=0)
        assert randomized.num_hyperedges > 0
        # Total incidences should be roughly preserved (within a factor of 2).
        original = sum(medium_random_hypergraph.hyperedge_sizes())
        generated = sum(randomized.hyperedge_sizes())
        assert 0.5 * original < generated < 2.0 * original

    def test_chung_lu_uses_original_node_labels(self, paper_hypergraph):
        randomized = chung_lu_hypergraph(paper_hypergraph, seed=1)
        assert set(randomized.nodes()) <= set(paper_hypergraph.nodes())

    def test_slot_fill_preserves_sizes_exactly_modulo_duplicates(
        self, medium_random_hypergraph
    ):
        randomized = weighted_slot_fill(medium_random_hypergraph, seed=0)
        original_sizes = sorted(medium_random_hypergraph.hyperedge_sizes())
        generated_sizes = sorted(randomized.hyperedge_sizes())
        # Duplicate randomized hyperedges are dropped, so allow a small deficit.
        assert len(generated_sizes) >= 0.8 * len(original_sizes)
        assert set(generated_sizes) <= set(original_sizes)

    def test_empty_hypergraph_rejected(self):
        with pytest.raises(RandomizationError):
            chung_lu_hypergraph(Hypergraph([]))
        with pytest.raises(RandomizationError):
            weighted_slot_fill(Hypergraph([]))

    def test_seed_reproducibility(self, small_random_hypergraph):
        first = chung_lu_hypergraph(small_random_hypergraph, seed=9)
        second = chung_lu_hypergraph(small_random_hypergraph, seed=9)
        assert first == second


class TestRandomizationDriver:
    def test_randomize_produces_requested_count(self, small_random_hypergraph):
        samples = randomize(small_random_hypergraph, num_samples=3, seed=0)
        assert len(samples) == 3
        assert len({sample.name for sample in samples}) == 3

    def test_randomize_with_slot_fill(self, small_random_hypergraph):
        samples = randomize(
            small_random_hypergraph, num_samples=2, null_model=NULL_MODEL_SLOT_FILL, seed=0
        )
        assert len(samples) == 2

    def test_unknown_null_model_rejected(self):
        with pytest.raises(RandomizationError):
            get_randomizer("shuffle")

    def test_known_null_models_registered(self):
        for name in NULL_MODELS:
            assert callable(get_randomizer(name))

    def test_random_motif_counts(self, small_random_hypergraph):
        result = random_motif_counts(
            small_random_hypergraph, num_random=3, seed=0, null_model=NULL_MODEL_CHUNG_LU
        )
        assert len(result.per_sample_counts) == 3
        assert result.mean_counts.total() >= 0
        assert result.null_model == NULL_MODEL_CHUNG_LU

    def test_random_counts_differ_from_real(self, medium_random_hypergraph):
        from repro.counting import count_exact

        real = count_exact(medium_random_hypergraph)
        null = random_motif_counts(medium_random_hypergraph, num_random=2, seed=1)
        assert null.mean_counts.to_dict() != real.to_dict()
