"""Evolution serving: ``MotifEngine.evolve``, lineage chains, the wire.

Pins the tentpole contracts of the incremental temporal serving stack:

- **Parity**: an incremental chain is bit-identical (counts *and*
  fingerprints) to rebuilding every snapshot from scratch.
- **Lineage**: a second run over the same store serves every snapshot as
  ``cached`` without recounting, keyed by the parent-fingerprint chain.
- **Torn chains degrade, never lie**: a missing lineage sidecar downgrades
  a snapshot to a recount with the same counts (see also test_chaos.py).
- **The wire**: ``POST /v1/evolve`` streams one NDJSON record per snapshot
  in chain order; malformed specs are structured 4xxs before the stream
  starts; the spec_version reader tolerates newer minors and rejects
  foreign majors.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager

import numpy as np
import pytest

from repro.api import (
    CountSpec,
    EvolveSpec,
    EvolutionResult,
    MotifEngine,
    SNAPSHOT_MODE_CACHED,
    SNAPSHOT_MODE_FULL,
    SNAPSHOT_MODE_INCREMENTAL,
    SPEC_VERSION,
    VarianceSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.exceptions import SpecError
from repro.generators.temporal import generate_temporal_coauthorship
from repro.hypergraph.builders import TemporalHypergraph
from repro.store import ArtifactStore, codecs
from repro.store.client import ServiceClient, ServiceError
from repro.store.serve import EngineServer
from repro.store.server import build_server, shutdown_gracefully


@pytest.fixture(scope="module")
def temporal():
    return generate_temporal_coauthorship(
        num_years=5, initial_authors=40, initial_papers=22, seed=13
    )


def snapshots_of(engine, spec):
    return engine.evolve(spec).snapshots


class TestEvolveParity:
    def test_incremental_matches_rebuild_bitwise(self, temporal):
        fast = MotifEngine(temporal, store=False).evolve(EvolveSpec())
        slow = MotifEngine(temporal, store=False).evolve(
            EvolveSpec(incremental=False)
        )
        assert isinstance(fast, EvolutionResult)
        assert len(fast.snapshots) == len(slow.snapshots) > 2
        # Counts are bit-identical; fingerprints are *not* compared across
        # modes on purpose — the incremental chain is keyed by lineage
        # fingerprints H(parent, delta), the rebuild path by per-snapshot
        # content fingerprints, each matching the artifacts it serves from.
        for a, b in zip(fast.snapshots, slow.snapshots):
            assert a.label == b.label
            assert a.num_hyperedges == b.num_hyperedges
            np.testing.assert_array_equal(
                a.counts.to_array(), b.counts.to_array()
            )
        assert fast.snapshot_modes() == {
            SNAPSHOT_MODE_FULL: 1,
            SNAPSHOT_MODE_INCREMENTAL: len(fast.snapshots) - 1,
        }
        assert set(slow.snapshot_modes()) == {SNAPSHOT_MODE_FULL}

    def test_final_snapshot_matches_plain_count(self, temporal):
        chain = MotifEngine(temporal, store=False).evolve(EvolveSpec())
        last_stamp = temporal.timestamps()[-1]
        flat = MotifEngine(temporal.cumulative(last_stamp), store=False).count(
            CountSpec()
        )
        np.testing.assert_array_equal(
            chain.snapshots[-1].counts.to_array(), flat.counts.to_array()
        )

    def test_explicit_delta_chain(self):
        base = [frozenset({1, 2, 3}), frozenset({2, 3, 4})]
        deltas = [
            [frozenset({1, 4})],
            [frozenset({4, 5, 6}), frozenset({1, 6})],
        ]
        from repro.hypergraph import Hypergraph

        engine = MotifEngine(Hypergraph(base, name="delta-base"), store=False)
        result = engine.evolve(EvolveSpec(deltas=deltas))
        assert [s.label for s in result.snapshots] == [
            "base",
            "delta-1",
            "delta-2",
        ]
        assert [s.num_hyperedges for s in result.snapshots] == [2, 3, 5]
        final = MotifEngine(
            Hypergraph(base + deltas[0] + deltas[1]), store=False
        ).count(CountSpec())
        np.testing.assert_array_equal(
            result.snapshots[-1].counts.to_array(), final.counts.to_array()
        )

    def test_min_hyperedges_skips_a_prefix(self, temporal):
        sizes = [
            s.num_hyperedges
            for s in snapshots_of(MotifEngine(temporal, store=False), EvolveSpec())
        ]
        threshold = sizes[1] + 1  # skip at least the first two snapshots
        trimmed = snapshots_of(
            MotifEngine(temporal, store=False),
            EvolveSpec(min_hyperedges=threshold),
        )
        assert len(trimmed) == sum(1 for size in sizes if size >= threshold)
        assert all(s.num_hyperedges >= threshold for s in trimmed)
        # The surviving suffix is identical to the untrimmed chain's.
        full = snapshots_of(MotifEngine(temporal, store=False), EvolveSpec())
        tail = [s for s in full if s.num_hyperedges >= threshold]
        for a, b in zip(trimmed, tail):
            assert a.fingerprint == b.fingerprint
            np.testing.assert_array_equal(
                a.counts.to_array(), b.counts.to_array()
            )

    def test_validation_is_eager(self, temporal):
        from repro.hypergraph import Hypergraph

        static = MotifEngine(Hypergraph([[1, 2]], name="s"), store=False)
        with pytest.raises(SpecError):
            static.evolve_iter(EvolveSpec())  # no temporal data, no deltas
        empty = MotifEngine(TemporalHypergraph([], name="empty"), store=False)
        with pytest.raises(SpecError):
            empty.evolve_iter(EvolveSpec())  # raises before any iteration


class TestLineageChains:
    def test_warm_chain_is_served_cached(self, temporal, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = MotifEngine(temporal, store=store).evolve(EvolveSpec())
        warm = MotifEngine(temporal, store=store).evolve(EvolveSpec())
        assert set(warm.snapshot_modes()) == {SNAPSHOT_MODE_CACHED}
        for a, b in zip(cold.snapshots, warm.snapshots):
            assert a.fingerprint == b.fingerprint
            np.testing.assert_array_equal(
                a.counts.to_array(), b.counts.to_array()
            )

    def test_lineage_sidecars_link_parents(self, temporal, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        result = MotifEngine(temporal, store=store).evolve(EvolveSpec())
        fingerprints = [s.fingerprint for s in result.snapshots]
        # The root has no sidecar; every child links to its predecessor.
        assert (
            store.get(codecs.KIND_LINEAGE, fingerprints[0], codecs.lineage_params())
            is None
        )
        for depth, (parent, child) in enumerate(
            zip(fingerprints, fingerprints[1:]), start=1
        ):
            hit = store.get(
                codecs.KIND_LINEAGE, child, codecs.lineage_params()
            )
            assert hit is not None
            lineage = codecs.decode_lineage(hit[0], hit[1])
            assert lineage is not None
            assert lineage["parent"] == parent
            assert lineage["depth"] == depth

    def test_torn_chain_recounts_instead_of_lying(self, temporal, tmp_path):
        """Deleting one lineage sidecar downgrades that snapshot to a
        recount (and the rest of the chain keeps serving warm)."""
        store_dir = tmp_path / "store"
        cold = MotifEngine(temporal, store=ArtifactStore(store_dir)).evolve(
            EvolveSpec()
        )
        victim = cold.snapshots[2].fingerprint
        # A fresh store instance (no memory tier) with the victim's sidecar
        # gone from disk: the chain is torn at index 2.
        torn = ArtifactStore(store_dir, memory_items=0)
        entry = next(
            e
            for e in torn.entries()
            if e.kind == codecs.KIND_LINEAGE and e.fingerprint == victim
        )
        entry.path.unlink()
        torn2 = ArtifactStore(store_dir, memory_items=0)
        rerun = MotifEngine(temporal, store=torn2).evolve(EvolveSpec())
        modes = [s.mode for s in rerun.snapshots]
        assert modes[2] != SNAPSHOT_MODE_CACHED
        for a, b in zip(cold.snapshots, rerun.snapshots):
            assert a.fingerprint == b.fingerprint
            np.testing.assert_array_equal(
                a.counts.to_array(), b.counts.to_array()
            )

    def test_root_interops_with_plain_count(self, temporal, tmp_path):
        """A plain count() of the first cumulative snapshot pre-warms the
        chain root — the fingerprints are shared content fingerprints."""
        store = ArtifactStore(tmp_path / "store")
        first = temporal.cumulative(temporal.timestamps()[0])
        MotifEngine(first, store=store).count(CountSpec())
        chain = MotifEngine(temporal, store=store).evolve(EvolveSpec())
        assert chain.snapshots[0].mode == SNAPSHOT_MODE_CACHED


class TestEvolveSpecWire:
    def test_round_trip(self):
        spec = EvolveSpec(mode="snapshot", algorithm="exact", min_hyperedges=3)
        payload = spec_to_dict(spec)
        assert payload["type"] == "evolve"
        assert payload["spec_version"] == SPEC_VERSION
        assert spec_from_dict(json.loads(json.dumps(payload))) == spec

    def test_variance_round_trip(self):
        spec = VarianceSpec(sampling_ratio=0.25)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_newer_minor_drops_unknown_fields(self):
        payload = spec_to_dict(EvolveSpec())
        major, minor = SPEC_VERSION.split(".")
        payload["spec_version"] = f"{major}.{int(minor) + 3}"
        payload["field_from_the_future"] = True
        assert spec_from_dict(payload) == EvolveSpec()

    def test_foreign_major_is_rejected(self):
        payload = spec_to_dict(EvolveSpec())
        payload["spec_version"] = "9.0"
        with pytest.raises(SpecError):
            spec_from_dict(payload)

    def test_absent_version_is_strict(self):
        with pytest.raises(SpecError):
            spec_from_dict({"type": "evolve", "field_from_the_future": True})


class TestServability:
    def test_evolve_spec_is_not_batch_servable(self, temporal):
        from repro.store.serve import ServeRequest

        server = EngineServer(store=False)
        with pytest.raises(SpecError, match="/v1/evolve"):
            server.submit([ServeRequest(temporal, EvolveSpec())])

    def test_variance_spec_is_batch_servable(self):
        from repro.store.serve import ServeRequest

        server = EngineServer(store=False)
        [result] = server.submit(
            [ServeRequest("email-enron-like", VarianceSpec(sampling_ratio=0.5))]
        )
        assert result.rows and result.sampling_ratio == 0.5

    def test_instance_enumeration_is_not_servable(self):
        from repro.store.serve import ServeRequest

        server = EngineServer(store=False)
        with pytest.raises(SpecError, match="instance"):
            server.submit(
                [
                    ServeRequest(
                        "email-enron-like", CountSpec(include_instances=True)
                    )
                ]
            )

    def test_engine_server_evolve_stream(self, temporal):
        server = EngineServer(store=False)
        snapshots = list(server.evolve_stream(temporal))
        assert [s.index for s in snapshots] == list(range(len(snapshots)))
        with pytest.raises(SpecError):
            server.evolve_stream(temporal, CountSpec())


@contextmanager
def running_server(**kwargs):
    server = build_server(port=0, **kwargs)
    loop = threading.Thread(target=server.serve_forever, daemon=True)
    loop.start()
    client = ServiceClient(port=server.port, timeout=60.0)
    client.wait_until_healthy()
    try:
        yield server, client
    finally:
        shutdown_gracefully(server, drain_seconds=10.0)


SOURCE = "coauth-temporal-like"


class TestEvolveHTTP:
    def test_streams_one_record_per_snapshot_then_done(self, tmp_path):
        with running_server(store=ArtifactStore(tmp_path / "store")) as (
            _,
            client,
        ):
            records = list(client.evolve_stream(SOURCE))
            done = records[-1]
            snapshots = [r for r in records if r["status"] == "ok"]
            assert done["status"] == "done"
            assert done["count"] == len(snapshots) > 2
            assert done["errors"] == 0
            indices = [r["snapshot"]["index"] for r in snapshots]
            assert indices == list(range(len(snapshots)))
            assert all(
                r["request_id"] == client.last_request_id for r in records
            )
            # Warm rerun over the same store: all cached, same fingerprints.
            warm = client.evolve(SOURCE)
            assert {s["mode"] for s in warm} == {SNAPSHOT_MODE_CACHED}
            assert [s["fingerprint"] for s in warm] == [
                r["snapshot"]["fingerprint"] for r in snapshots
            ]

    def test_spec_defaults_when_omitted(self):
        with running_server() as (_, client):
            records = list(client.evolve_stream(SOURCE))
            assert records[-1]["status"] == "done"
            assert records[-1]["count"] > 0

    def test_malformed_specs_are_structured_4xx(self):
        with running_server() as (_, client):
            with pytest.raises(ServiceError) as excinfo:
                list(client.evolve_stream(SOURCE, {"mode": "bogus"}))
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                list(
                    client.evolve_stream(
                        SOURCE, {"type": "count"}  # wrong spec type
                    )
                )
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                list(
                    client.evolve_stream(
                        SOURCE,
                        {"mode": "cumulative", "spec_version": "9.0"},
                    )
                )
            assert excinfo.value.status == 400
            assert "spec_version" in str(excinfo.value)

    def test_non_temporal_source_streams_error_record(self):
        with running_server() as (_, client):
            records = list(
                client.evolve_stream("email-enron-like", {"mode": "cumulative"})
            )
            assert [r["status"] for r in records] == ["error", "done"]
            assert records[0]["error"]["type"] == "SpecError"
            assert records[-1]["errors"] == 1

    def test_stats_and_metrics_count_the_stream(self, tmp_path):
        with running_server(store=ArtifactStore(tmp_path / "store")) as (
            _,
            client,
        ):
            snapshots = client.evolve(SOURCE)
            stats = client.stats()["service"]
            assert stats["evolve_accepted"] == 1
            assert stats["evolve_completed"] == 1
            assert stats["snapshots_streamed"] == len(snapshots)
            metrics = client.metrics()
            served = {}
            for line in metrics.splitlines():
                if line.startswith("repro_evolve_snapshots_total{"):
                    label, value = line.rsplit(" ", 1)
                    mode = label.split('mode="')[1].split('"')[0]
                    served[mode] = served.get(mode, 0) + int(float(value))
            assert sum(served.values()) >= len(snapshots)
