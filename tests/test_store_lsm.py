"""Tests for the log-structured disk tier (:mod:`repro.store.lsm`).

Covers what the flat-layout tests cannot: shard routing, flat-v1 migration,
crash-safety of compaction (via ``store.manifest_append`` chaos faults in a
child process), many-process writes on distinct shards, the eviction
policy, occupancy reporting, and the new hyperwedge/predict warm starts.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import MotifEngine, PredictSpec
from repro.generators import (
    generate_temporal_coauthorship,
    generate_uniform_random,
)
from repro.store import ArtifactStore, EvictionPolicy, shard_of
from repro.store import codecs
from repro.store.faults import ENV_FAULTS, encode_env
from repro.store.fingerprint import params_digest
from repro.store.lsm import FLAT_FORMAT_VERSION, LEVEL_BASE, LEVEL_LOG
from repro.store.serve import EngineServer

FP_A = "a" * 64  # shard "aa"
FP_B = "b" * 64  # shard "bb"


def _subprocess_env(**faults) -> dict:
    """Child-process environment: importable ``repro`` + armed faults."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if faults:
        env[ENV_FAULTS] = encode_env(faults)
    return env


def _npz_bytes(arrays) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **dict(arrays))
    return buffer.getvalue()


class TestSharding:
    def test_hex_fingerprints_use_their_prefix(self):
        assert shard_of(FP_A) == "aa"
        assert shard_of("0F" + "c" * 62) == "0f"

    def test_non_hex_fingerprints_hash_into_hex_buckets(self):
        bucket = shard_of("not-hex")
        assert len(bucket) == 2 and all(c in "0123456789abcdef" for c in bucket)
        assert shard_of("not-hex") == bucket  # deterministic

    def test_payloads_land_in_their_shard(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("count", FP_A, {"p": 1}, {"values": np.ones(4)})
        store.put("count", FP_B, {"p": 1}, {"values": np.ones(4)})
        shards = tmp_path / "store" / "shards"
        assert (shards / "aa" / "manifest.log").is_file()
        assert (shards / "bb" / "manifest.log").is_file()
        assert list((shards / "aa" / FP_A).glob("count-*.npz"))
        (entry_a,) = [e for e in store.entries() if e.fingerprint == FP_A]
        assert entry_a.shard == "aa" and entry_a.level == LEVEL_LOG

    def test_compaction_promotes_log_records_to_base(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("count", FP_A, {"p": 1}, {"values": np.ones(4)})
        stats = store.gc()
        assert stats.compacted_shards == 1 and stats.kept_entries == 1
        assert "aa" in stats.shards
        fresh = ArtifactStore(tmp_path / "store")
        (entry,) = fresh.entries()
        assert entry.level == LEVEL_BASE
        assert not (tmp_path / "store" / "shards" / "aa" / "manifest.log").exists()


class TestFlatMigration:
    """A store written by the flat version-1 layout is migrated on open."""

    def _write_flat_entry(
        self, directory, kind, fingerprint, params, arrays, dataset=None
    ):
        data = _npz_bytes(arrays)
        digest = params_digest(params)
        bucket = directory / "data" / fingerprint
        bucket.mkdir(parents=True, exist_ok=True)
        (bucket / f"{kind}-{digest}.npz").write_bytes(data)
        record = {
            "format_version": FLAT_FORMAT_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "params": params,
            "meta": {"source": "flat"},
            "dataset": dataset,
            "checksum": hashlib.sha256(data).hexdigest(),
            "payload": f"{kind}-{digest}.npz",
            "created": 1700000000.0,
        }
        (bucket / f"{kind}-{digest}.json").write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8"
        )

    def _write_flat_store(self, directory) -> dict:
        directory.mkdir(parents=True)
        (directory / "manifest.json").write_text(
            json.dumps({"format_version": 1, "store": "repro.store"}) + "\n",
            encoding="utf-8",
        )
        entries = {
            ("count", FP_A): {"values": np.arange(8.0)},
            ("projection", FP_A): {"weights": np.ones((3, 3))},
            ("count", FP_B): {"values": np.full(8, 2.0)},
        }
        for (kind, fingerprint), arrays in entries.items():
            self._write_flat_entry(
                directory, kind, fingerprint, {"p": 1}, arrays, dataset="flat-ds"
            )
        return entries

    def test_round_trip_preserves_every_artifact(self, tmp_path):
        directory = tmp_path / "store"
        expected = self._write_flat_store(directory)
        store = ArtifactStore(directory)
        assert store.persistent and not store.disk_stale
        # The old tree is gone, the manifest is current, shards exist.
        assert not (directory / "data").exists()
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["format_version"] == 2
        assert (directory / "shards" / "aa").is_dir()
        for (kind, fingerprint), arrays in expected.items():
            hit = store.get(kind, fingerprint, {"p": 1})
            assert hit is not None, f"{kind}/{fingerprint[:4]} lost in migration"
            loaded, meta, tier = hit
            assert tier == "disk"
            assert meta == {"source": "flat"}
            for name, array in arrays.items():
                assert np.array_equal(loaded[name], array)
        entries = store.entries()
        assert len(entries) == len(expected)
        assert {entry.created for entry in entries} == {1700000000.0}
        assert {entry.dataset for entry in entries} == {"flat-ds"}

    def test_migrated_store_compacts_cleanly(self, tmp_path):
        directory = tmp_path / "store"
        expected = self._write_flat_store(directory)
        stats = ArtifactStore(directory).gc()
        assert stats.kept_entries == len(expected)
        assert stats.removed_entries == 0 and stats.removed_files == 0

    def test_flat_junk_is_dropped_not_migrated(self, tmp_path):
        directory = tmp_path / "store"
        self._write_flat_store(directory)
        bucket = directory / "data" / FP_A
        # A sidecar without its payload, and a payload without a sidecar.
        (bucket / "count-dangling.json").write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "kind": "count",
                    "fingerprint": FP_A,
                    "checksum": "0" * 64,
                }
            ),
            encoding="utf-8",
        )
        (bucket / "profile-orphan.npz").write_bytes(b"orphan")
        store = ArtifactStore(directory)
        assert not (directory / "data").exists()
        kinds = {entry.kind for entry in store.entries()}
        assert kinds == {"count", "projection"}
        assert len(store.entries()) == 3


#: Child snippets for the crash tests (run via ``python -c``). The armed
#: fault (from REPRO_FAULTS) calls os._exit(3) inside the marked step.
_GC_CHILD = """
import sys
from repro.store import ArtifactStore
ArtifactStore(sys.argv[1]).gc()
"""

_PUT_CHILD = """
import sys
import numpy as np
from repro.store import ArtifactStore
ArtifactStore(sys.argv[1]).put(
    "count", "a" * 64, {"p": 1}, {"values": np.ones(8)}
)
"""


class TestCrashSafety:
    """Kill the process inside a manifest mutation; nothing committed is lost."""

    def _run_child(self, snippet: str, directory: Path, fault_key: str) -> None:
        result = subprocess.run(
            [sys.executable, "-c", snippet, str(directory)],
            env=_subprocess_env(
                **{
                    "store.manifest_append": {"mode": "crash", "key": fault_key}
                }
            ),
            capture_output=True,
            timeout=120,
        )
        assert result.returncode == 3, result.stderr.decode()

    @pytest.mark.parametrize("step", ["base", "log"])
    def test_crash_mid_compaction_loses_nothing(self, tmp_path, step):
        directory = tmp_path / "store"
        store = ArtifactStore(directory)
        store.put("count", FP_A, {"p": 1}, {"values": np.arange(8.0)})
        store.put("profile", FP_A, {"p": 2}, {"values": np.arange(26.0)})
        self._run_child(_GC_CHILD, directory, f"compact:aa:{step}")
        # Replay-on-open: the committed artifacts survive the torn compaction.
        fresh = ArtifactStore(directory)
        for kind, params, values in (
            ("count", {"p": 1}, np.arange(8.0)),
            ("profile", {"p": 2}, np.arange(26.0)),
        ):
            hit = fresh.get(kind, FP_A, params)
            assert hit is not None, f"{kind} lost after crash at {step} step"
            assert np.array_equal(hit[0]["values"], values)
        # The next compaction completes and leaves a clean shard behind.
        stats = fresh.gc()
        assert stats.kept_entries == 2 and stats.removed_entries == 0
        assert ArtifactStore(directory).get("count", FP_A, {"p": 1}) is not None

    def test_crash_mid_put_leaves_an_orphan_not_a_torn_record(self, tmp_path):
        directory = tmp_path / "store"
        ArtifactStore(directory)  # settle the manifest before the child runs
        self._run_child(_PUT_CHILD, directory, f"count:{FP_A}")
        # Payload published, record never appended: reads miss cleanly...
        fresh = ArtifactStore(directory)
        assert fresh.get("count", FP_A, {"p": 1}) is None
        orphans = list(directory.glob("shards/aa/*/count-*.npz"))
        assert orphans, "the crash fired after the payload write"
        # ...and gc reaps the orphan, after which the put can be replayed.
        stats = fresh.gc()
        assert stats.removed_files >= 1
        assert not list(directory.glob("shards/aa/*/count-*.npz"))
        fresh.put("count", FP_A, {"p": 1}, {"values": np.ones(8)})
        assert ArtifactStore(directory).get("count", FP_A, {"p": 1}) is not None


def _distinct_shard_worker(directory: str, worker_id: int, num_ops: int) -> dict:
    """One process hammering its own shard (module-level for pickling)."""
    fingerprint = f"{worker_id:02x}" * 32
    store = ArtifactStore(directory, lock_timeout=5.0)
    for op in range(num_ops):
        params = {"p": op}
        store.put("count", fingerprint, params, {"values": np.full(16, float(op))})
        assert store.get("count", fingerprint, params) is not None
    return store.stats.as_dict()


class TestDistinctShardWriters:
    def test_eight_processes_never_contend(self, tmp_path):
        directory = tmp_path / "store"
        ArtifactStore(directory)  # settle the manifest before the fleet starts
        num_workers = 8
        with ProcessPoolExecutor(max_workers=num_workers) as executor:
            futures = [
                executor.submit(_distinct_shard_worker, str(directory), i, 15)
                for i in range(num_workers)
            ]
            results = [future.result(timeout=180) for future in futures]
        # Distinct fingerprint prefixes -> distinct shards -> no writer ever
        # waits on another's lock, and nothing degrades.
        assert sum(stats["lock_contention"] for stats in results) == 0
        assert sum(stats["write_errors"] for stats in results) == 0
        fresh = ArtifactStore(directory)
        occupancy = fresh.occupancy()
        assert occupancy["shards_used"] == num_workers
        assert occupancy["entries"] == num_workers * 15
        for worker_id in range(num_workers):
            fingerprint = f"{worker_id:02x}" * 32
            assert fresh.get("count", fingerprint, {"p": 14}) is not None
        stats = fresh.gc()
        assert stats.removed_entries == 0, stats.details
        assert stats.compacted_shards == num_workers


class TestEvictionPolicy:
    def test_ttl_expires_per_kind(self, tmp_path):
        policy = EvictionPolicy(ttl_seconds={"profile": 0.0})
        store = ArtifactStore(tmp_path / "store", policy=policy)
        store.put("profile", FP_A, {"p": 1}, {"values": np.ones(26)})
        store.put("count", FP_A, {"p": 1}, {"values": np.ones(26)})
        time.sleep(0.01)
        stats = store.gc()
        assert stats.evicted_entries == 1 and stats.kept_entries == 1
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get("profile", FP_A, {"p": 1}) is None
        assert fresh.get("count", FP_A, {"p": 1}) is not None

    def test_byte_budget_evicts_cold_bulky_kinds_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("projection", FP_A, {"p": 1}, {"weights": np.ones((64, 64))})
        store.put("count", FP_A, {"p": 1}, {"values": np.ones(26)})
        total = sum(entry.payload_bytes for entry in store.entries())
        small = min(entry.payload_bytes for entry in store.entries())
        # A budget that fits the count vector but not the projection: the
        # projection (priority 0) is the victim, never the hot count.
        bounded = ArtifactStore(
            tmp_path / "store", policy=EvictionPolicy(max_bytes=total - small)
        )
        stats = bounded.gc()
        assert stats.evicted_entries == 1
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get("projection", FP_A, {"p": 1}) is None
        assert fresh.get("count", FP_A, {"p": 1}) is not None

    def test_unbounded_policy_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("projection", FP_A, {"p": 1}, {"weights": np.ones((64, 64))})
        assert not store.policy.bounded
        assert store.gc().evicted_entries == 0

    def test_invalid_policy_is_rejected(self):
        with pytest.raises(ValueError):
            EvictionPolicy(max_bytes=-1)
        with pytest.raises(ValueError):
            EvictionPolicy(ttl_seconds={"count": -1.0})


class TestOccupancy:
    def test_snapshot_tracks_levels_and_kinds(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("count", FP_A, {"p": 1}, {"values": np.ones(26)})
        store.put("count", FP_B, {"p": 1}, {"values": np.ones(26)})
        occupancy = store.occupancy()
        assert occupancy["layout"] == "lsm" and occupancy["num_shards"] == 256
        assert occupancy["shards_used"] == 2 and occupancy["entries"] == 2
        assert occupancy["log_records"] == 2 and occupancy["base_records"] == 0
        assert occupancy["by_kind"]["count"]["entries"] == 2
        assert set(occupancy["shards"]) == {"aa", "bb"}
        assert occupancy["payload_bytes"] > 0
        store.gc()
        compacted = store.occupancy()
        assert compacted["log_records"] == 0 and compacted["base_records"] == 2
        json.dumps(compacted)  # must be wire-ready for /v1/stats

    def test_memory_only_store_has_no_occupancy(self):
        assert ArtifactStore().occupancy() is None

    def test_engine_server_describe_exposes_occupancy(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        server = EngineServer(store=store)
        store.put("count", FP_A, {"p": 1}, {"values": np.ones(26)})
        snapshot = server.describe()
        occupancy = snapshot["store"]["occupancy"]
        assert occupancy["layout"] == "lsm" and occupancy["entries"] == 1


class TestEngineWarmStarts:
    """The two new persisted kinds: hyperwedge lists and predict grids."""

    def _static(self, seed: int = 0):
        return generate_uniform_random(num_nodes=25, num_hyperedges=40, seed=seed)

    def test_hyperwedges_persist_and_skip_the_projection(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = MotifEngine(self._static(), store=store)
        wedges = cold.hyperwedges()
        assert codecs.KIND_HYPERWEDGES in {e.kind for e in store.entries()}
        warm = MotifEngine(
            self._static(), store=ArtifactStore(tmp_path / "store")
        )
        assert warm.hyperwedges() == wedges
        # Served whole from the store: the projection never had to be built.
        assert warm.num_projection_builds == 0

    def test_predict_warm_start_is_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        temporal = generate_temporal_coauthorship(
            num_years=4, initial_authors=120, initial_papers=80, seed=5
        )
        spec = PredictSpec(max_positives=30, seed=0)
        cold = MotifEngine(temporal, store=store).predict(spec)
        assert not cold.from_cache
        assert codecs.KIND_PREDICT in {e.kind for e in store.entries()}
        regenerated = generate_temporal_coauthorship(
            num_years=4, initial_authors=120, initial_papers=80, seed=5
        )
        warm = MotifEngine(
            regenerated, store=ArtifactStore(tmp_path / "store")
        ).predict(spec)
        assert warm.from_cache and warm.cache_tier == "disk"
        assert warm.context_window == cold.context_window
        assert warm.test_window == cold.test_window
        def identity(result):
            return [
                (s.classifier, s.feature_set, s.accuracy, s.auc)
                for s in result.result.scores
            ]

        assert identity(warm) == identity(cold)

    def test_unseeded_predict_is_never_stored(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        temporal = generate_temporal_coauthorship(
            num_years=4, initial_authors=120, initial_papers=80, seed=5
        )
        engine = MotifEngine(temporal, store=store)
        engine.predict(PredictSpec(max_positives=30, seed=None))
        assert codecs.KIND_PREDICT not in {e.kind for e in store.entries()}

    def test_temporal_fingerprint_is_stable_and_label_sensitive(self):
        first = generate_temporal_coauthorship(
            num_years=3, initial_authors=60, initial_papers=40, seed=1
        )
        second = generate_temporal_coauthorship(
            num_years=3, initial_authors=60, initial_papers=40, seed=1
        )
        assert first.fingerprint() == second.fingerprint()
        other = generate_temporal_coauthorship(
            num_years=3, initial_authors=60, initial_papers=40, seed=2
        )
        assert first.fingerprint() != other.fingerprint()
