"""Property-style round-trip tests for :mod:`repro.store.codecs` and raw payloads.

The store's contract is that decode(encode(x)) is *identity* — not merely
equivalence — because warm-started results must be bit-identical to cold
ones. These tests drive the codecs with adversarial payloads (zero-motif
counts, single-sample nulls, hypothesis-generated vectors) and the raw
array layer with every dtype the kernels produce, empty arrays and
large-ish random payloads, asserting exact value/dtype round-trips and that
sidecar metadata survives a disk round-trip through a fresh store instance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import generate_uniform_random
from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.projection import project
from repro.randomization.null_model import NullModelCounts
from repro.store import ArtifactStore, codecs
from repro.store.artifacts import TIER_DISK, TIER_MEMORY


# ------------------------------------------------------------------ strategies
count_vectors = st.lists(
    st.floats(
        min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
    min_size=NUM_MOTIFS,
    max_size=NUM_MOTIFS,
)


# ---------------------------------------------------------------------- counts
class TestCountsRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(values=count_vectors)
    def test_encode_decode_is_identity(self, values):
        counts = MotifCounts(np.asarray(values, dtype=float))
        arrays, meta = codecs.encode_counts(counts, {"num_samples": 7})
        decoded = codecs.decode_counts(arrays)
        assert decoded is not None
        assert np.array_equal(decoded.to_array(), counts.to_array())
        assert meta == {"num_samples": 7}

    def test_zero_motif_counts(self):
        counts = MotifCounts.zeros()
        arrays, _ = codecs.encode_counts(counts, {})
        decoded = codecs.decode_counts(arrays)
        assert decoded is not None
        assert decoded.to_array().sum() == 0.0

    def test_decoded_counts_do_not_alias_the_stored_array(self):
        counts = MotifCounts(np.ones(NUM_MOTIFS))
        arrays, _ = codecs.encode_counts(counts, {})
        decoded = codecs.decode_counts(arrays)
        decoded.increment(1, 5.0)
        assert np.array_equal(arrays["counts"], np.ones(NUM_MOTIFS))

    @pytest.mark.parametrize("shape", [(NUM_MOTIFS - 1,), (NUM_MOTIFS, 1), ()])
    def test_wrong_shape_is_a_miss(self, shape):
        assert codecs.decode_counts({"counts": np.zeros(shape)}) is None
        assert codecs.decode_counts({}) is None


# ----------------------------------------------------------------- null counts
class TestNullCountsRoundTrip:
    @pytest.mark.parametrize("num_samples", [1, 3])
    def test_round_trip(self, num_samples):
        per_sample = [
            MotifCounts(np.arange(NUM_MOTIFS, dtype=float) * (index + 1))
            for index in range(num_samples)
        ]
        null = NullModelCounts(
            mean_counts=MotifCounts.mean(per_sample),
            per_sample_counts=per_sample,
            null_model="chung-lu",
        )
        arrays, meta = codecs.encode_null_counts(null)
        decoded = codecs.decode_null_counts(arrays, meta)
        assert decoded is not None
        assert decoded.null_model == "chung-lu"
        assert np.array_equal(
            decoded.mean_counts.to_array(), null.mean_counts.to_array()
        )
        for original, restored in zip(per_sample, decoded.per_sample_counts):
            assert np.array_equal(restored.to_array(), original.to_array())

    def test_zero_count_samples_survive(self):
        null = NullModelCounts(
            mean_counts=MotifCounts.zeros(),
            per_sample_counts=[MotifCounts.zeros()],
            null_model="slot-fill",
        )
        arrays, meta = codecs.encode_null_counts(null)
        decoded = codecs.decode_null_counts(arrays, meta)
        assert decoded is not None
        assert decoded.mean_counts.total() == 0.0

    def test_wrong_stack_shape_is_a_miss(self):
        arrays = {
            "per_sample": np.zeros((2, NUM_MOTIFS - 1)),
            "mean": np.zeros(NUM_MOTIFS),
        }
        assert codecs.decode_null_counts(arrays, {}) is None


# -------------------------------------------------------------------- profiles
class TestProfileRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(values=count_vectors, significances=count_vectors)
    def test_encode_decode_is_identity(self, values, significances):
        from repro.profile.characteristic_profile import CharacteristicProfile

        profile = CharacteristicProfile(
            name="original-name",
            values=np.asarray(values, dtype=float),
            significances=np.asarray(significances, dtype=float),
            real_counts=MotifCounts(np.asarray(values, dtype=float)),
            random_counts=MotifCounts(np.asarray(significances, dtype=float)),
        )
        arrays, meta = codecs.encode_profile(profile)
        decoded = codecs.decode_profile(arrays, name="restored-name")
        assert decoded is not None
        assert decoded.name == "restored-name"
        assert meta == {"name": "original-name"}
        assert np.array_equal(decoded.values, profile.values)
        assert np.array_equal(decoded.significances, profile.significances)
        assert np.array_equal(
            decoded.real_counts.to_array(), profile.real_counts.to_array()
        )
        assert np.array_equal(
            decoded.random_counts.to_array(), profile.random_counts.to_array()
        )


# ------------------------------------------------------------------ projection
class TestProjectionRoundTrip:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_round_trip_preserves_adjacency(self, seed):
        hypergraph = generate_uniform_random(
            num_nodes=18, num_hyperedges=25, seed=seed
        )
        projection = project(hypergraph)
        arrays, meta = codecs.encode_projection(projection)
        decoded = codecs.decode_projection(
            arrays, meta, hypergraph.num_hyperedges
        )
        assert decoded is not None
        original = projection.adjacency_arrays()
        restored = decoded.adjacency_arrays()
        assert np.array_equal(restored.ptr, original.ptr)
        assert np.array_equal(restored.idx, original.idx)
        assert np.array_equal(restored.weight, original.weight)
        assert decoded.hyperwedge_list() == projection.hyperwedge_list()

    def test_vertex_count_mismatch_is_a_miss(self):
        hypergraph = generate_uniform_random(num_nodes=12, num_hyperedges=15, seed=1)
        arrays, meta = codecs.encode_projection(project(hypergraph))
        assert codecs.decode_projection(arrays, meta, 999) is None


# -------------------------------------------------------- raw payload layer
class TestStoreRawRoundTrip:
    """Arbitrary arrays through ``ArtifactStore.put``/``get`` and the disk tier."""

    @pytest.mark.parametrize(
        "dtype", [np.bool_, np.uint8, np.int32, np.int64, np.float32, np.float64]
    )
    def test_dtype_survives_both_tiers(self, tmp_path, dtype):
        store = ArtifactStore(tmp_path / "store")
        array = np.arange(11).astype(dtype)
        store.put("count", "fp", {"dtype": str(dtype)}, {"values": array})
        arrays, _, tier = store.get("count", "fp", {"dtype": str(dtype)})
        assert tier == TIER_MEMORY
        assert arrays["values"].dtype == array.dtype
        assert np.array_equal(arrays["values"], array)
        # A fresh instance reads the persistent tier only.
        cold = ArtifactStore(tmp_path / "store")
        arrays, _, tier = cold.get("count", "fp", {"dtype": str(dtype)})
        assert tier == TIER_DISK
        assert arrays["values"].dtype == array.dtype
        assert np.array_equal(arrays["values"], array)

    def test_empty_arrays_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(
            "projection",
            "fp",
            {"case": "empty"},
            {"empty_f": np.zeros(0), "empty_i": np.zeros(0, dtype=np.int32)},
        )
        cold = ArtifactStore(tmp_path / "store")
        arrays, _, _ = cold.get("projection", "fp", {"case": "empty"})
        assert arrays["empty_f"].shape == (0,)
        assert arrays["empty_i"].dtype == np.int32

    def test_sidecar_metadata_survives(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        meta = {"num_samples": 12, "algorithm": "exact", "nested": {"a": [1, 2]}}
        store.put(
            "count",
            "fp",
            {"seed": 0},
            {"values": np.ones(3)},
            meta=meta,
            dataset="my-dataset",
        )
        cold = ArtifactStore(tmp_path / "store")
        arrays, restored_meta, _ = cold.get("count", "fp", {"seed": 0})
        assert restored_meta == meta
        (entry,) = cold.entries()
        assert entry.dataset == "my-dataset"
        assert entry.params == {"seed": 0}

    def test_large_random_payload(self, tmp_path):
        rng = np.random.default_rng(0)
        payload = {
            "floats": rng.random(200_000),
            "ints": rng.integers(0, 2**31 - 1, size=50_000).astype(np.int64),
        }
        store = ArtifactStore(tmp_path / "store")
        store.put("projection", "fp", {"case": "large"}, payload)
        cold = ArtifactStore(tmp_path / "store")
        arrays, _, _ = cold.get("projection", "fp", {"case": "large"})
        for name, original in payload.items():
            assert np.array_equal(arrays[name], original)
        # The persisted entry verifies its checksum under gc.
        stats = cold.gc(verify_checksums=True)
        assert stats.kept_entries == 1
        assert stats.removed_entries == 0
