"""Tests for the MotifCounts container."""

from __future__ import annotations

import pytest

from repro.exceptions import MotifError
from repro.motifs import MotifCounts, aggregate_counts
from repro.motifs.patterns import NUM_MOTIFS, closed_motif_indices, open_motif_indices


class TestConstruction:
    def test_zeros(self):
        counts = MotifCounts.zeros()
        assert counts.total() == 0
        assert all(value == 0 for _, value in counts.items())

    def test_from_dict_and_back(self):
        counts = MotifCounts.from_dict({1: 5, 22: 7.5})
        assert counts[1] == 5
        assert counts[22] == 7.5
        assert counts.to_dict()[3] == 0

    def test_wrong_length_rejected(self):
        with pytest.raises(MotifError):
            MotifCounts([1.0, 2.0])

    def test_mean(self):
        first = MotifCounts.from_dict({1: 2})
        second = MotifCounts.from_dict({1: 4, 2: 2})
        mean = MotifCounts.mean([first, second])
        assert mean[1] == 3
        assert mean[2] == 1

    def test_mean_of_empty_collection_rejected(self):
        with pytest.raises(MotifError):
            MotifCounts.mean([])


class TestAccess:
    def test_index_bounds(self):
        counts = MotifCounts.zeros()
        with pytest.raises(MotifError):
            counts[0]
        with pytest.raises(MotifError):
            counts[27] = 1.0
        with pytest.raises(TypeError):
            counts["3"]

    def test_increment(self):
        counts = MotifCounts.zeros()
        counts.increment(5)
        counts.increment(5, 2.5)
        assert counts[5] == 3.5

    def test_iteration_and_len(self):
        counts = MotifCounts.from_dict({2: 1})
        assert len(counts) == NUM_MOTIFS
        assert sum(counts) == 1


class TestArithmetic:
    def test_add_and_subtract(self):
        first = MotifCounts.from_dict({1: 1, 2: 2})
        second = MotifCounts.from_dict({2: 3})
        assert (first + second)[2] == 5
        assert (first - second)[2] == -1

    def test_scaled(self):
        counts = MotifCounts.from_dict({4: 3})
        assert counts.scaled(2.0)[4] == 6

    def test_scaled_per_motif(self):
        counts = MotifCounts.from_dict({17: 2, 1: 2})
        scaled = counts.scaled_per_motif({17: 0.5})
        assert scaled[17] == 1
        assert scaled[1] == 2

    def test_rounded(self):
        counts = MotifCounts.from_dict({1: 2.4, 2: 2.6})
        rounded = counts.rounded()
        assert rounded[1] == 2
        assert rounded[2] == 3

    def test_aggregate(self):
        batches = [MotifCounts.from_dict({1: 1}) for _ in range(4)]
        assert aggregate_counts(batches)[1] == 4


class TestSummaries:
    def test_fractions_sum_to_one(self):
        counts = MotifCounts.from_dict({1: 3, 22: 1})
        fractions = counts.fractions()
        assert fractions[1] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_of_empty_counts(self):
        assert sum(MotifCounts.zeros().fractions().values()) == 0

    def test_open_closed_split(self):
        counts = MotifCounts.zeros()
        for index in open_motif_indices():
            counts[index] = 1
        for index in closed_motif_indices():
            counts[index] = 2
        assert counts.open_total() == 6
        assert counts.closed_total() == 40
        assert counts.open_fraction() == pytest.approx(6 / 46)

    def test_open_fraction_of_empty_counts_is_zero(self):
        assert MotifCounts.zeros().open_fraction() == 0.0

    def test_ranks(self):
        counts = MotifCounts.from_dict({5: 10, 2: 20, 7: 10})
        ranks = counts.ranks()
        assert ranks[2] == 1
        assert ranks[5] == 2  # ties broken by motif index
        assert ranks[7] == 3

    def test_relative_error(self):
        exact = MotifCounts.from_dict({1: 10, 2: 10})
        estimate = MotifCounts.from_dict({1: 9, 2: 12})
        assert estimate.relative_error(exact) == pytest.approx(3 / 20)

    def test_relative_error_rejects_zero_reference(self):
        with pytest.raises(MotifError):
            MotifCounts.zeros().relative_error(MotifCounts.zeros())

    def test_equality_and_array_copy(self):
        counts = MotifCounts.from_dict({1: 1})
        other = MotifCounts.from_dict({1: 1})
        assert counts == other
        array = counts.to_array()
        array[0] = 99
        assert counts[1] == 1
