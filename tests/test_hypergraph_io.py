"""Tests for hypergraph file I/O."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.hypergraph import Hypergraph, io, relabel_nodes_to_integers


@pytest.fixture
def sample() -> Hypergraph:
    return Hypergraph([["a", "b", "c"], ["c", "d"], ["a", "d", "e"]], name="sample")


class TestPlainFormat:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "sample.txt"
        io.write_plain(sample, path)
        loaded = io.read_plain(path)
        assert loaded.num_hyperedges == sample.num_hyperedges
        assert {frozenset(edge) for edge in loaded.hyperedges()} == {
            frozenset(str(node) for node in edge) for edge in sample.hyperedges()
        }

    def test_read_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "with_comments.txt"
        path.write_text("# header\n\n1 2 3\n2 4\n", encoding="utf-8")
        loaded = io.read_plain(path, node_type=int)
        assert loaded.num_hyperedges == 2
        assert loaded.hyperedge(0) == frozenset({1, 2, 3})

    def test_read_with_bad_node_type_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 notanint\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            io.read_plain(path, node_type=int)

    def test_custom_delimiter(self, sample, tmp_path):
        path = tmp_path / "csv.txt"
        io.write_plain(sample, path, delimiter=",")
        loaded = io.read_plain(path, delimiter=",")
        assert loaded.num_hyperedges == 3


class TestJsonFormat:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "sample.json"
        io.write_json(sample, path)
        loaded = io.read_json(path)
        assert loaded.name == "sample"
        assert loaded.num_hyperedges == 3

    def test_missing_key_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"name": "x"}', encoding="utf-8")
        with pytest.raises(DatasetError):
            io.read_json(path)


class TestBensonFormat:
    def test_round_trip(self, sample, tmp_path):
        relabelled, _ = relabel_nodes_to_integers(sample)
        io.write_benson(relabelled, tmp_path, "demo")
        loaded = io.read_benson(tmp_path, "demo")
        assert loaded.num_hyperedges == relabelled.num_hyperedges
        assert sorted(loaded.hyperedge_sizes()) == sorted(relabelled.hyperedge_sizes())

    def test_temporal_round_trip(self, sample, tmp_path):
        relabelled, _ = relabel_nodes_to_integers(sample)
        io.write_benson(relabelled, tmp_path, "demo", timestamps=[2001, 2002, 2002])
        temporal = io.read_benson_temporal(tmp_path, "demo")
        assert temporal.timestamps() == [2001, 2002]
        assert temporal.num_hyperedges == 3

    def test_non_integer_labels_rejected(self, sample, tmp_path):
        with pytest.raises(DatasetError):
            io.write_benson(sample, tmp_path, "demo")

    def test_timestamp_length_mismatch_rejected(self, sample, tmp_path):
        relabelled, _ = relabel_nodes_to_integers(sample)
        with pytest.raises(DatasetError):
            io.write_benson(relabelled, tmp_path, "demo", timestamps=[1])

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(DatasetError):
            io.read_benson(tmp_path, "absent")

    def test_inconsistent_counts_raise(self, tmp_path):
        (tmp_path / "bad-nverts.txt").write_text("3\n", encoding="utf-8")
        (tmp_path / "bad-simplices.txt").write_text("1\n2\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            io.read_benson(tmp_path, "bad")

    def test_temporal_requires_times_file(self, sample, tmp_path):
        relabelled, _ = relabel_nodes_to_integers(sample)
        io.write_benson(relabelled, tmp_path, "demo")
        with pytest.raises(DatasetError):
            io.read_benson_temporal(tmp_path, "demo")
