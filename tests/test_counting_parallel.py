"""Tests for the parallel MoCHy drivers."""

from __future__ import annotations

import pytest

from repro.counting import (
    BACKEND_THREAD,
    count_approx_edge_sampling_parallel,
    count_approx_wedge_sampling_parallel,
    count_exact,
    count_exact_parallel,
)
from repro.exceptions import SamplingError
from repro.hypergraph import Hypergraph
from repro.motifs import MotifCounts
from repro.projection import project


class TestExactParallel:
    def test_thread_backend_matches_serial(self, medium_random_hypergraph):
        serial = count_exact(medium_random_hypergraph)
        parallel = count_exact_parallel(
            medium_random_hypergraph, num_workers=3, backend=BACKEND_THREAD
        )
        assert parallel.to_dict() == serial.to_dict()

    def test_process_backend_matches_serial(self, small_random_hypergraph):
        serial = count_exact(small_random_hypergraph)
        parallel = count_exact_parallel(small_random_hypergraph, num_workers=2)
        assert parallel.to_dict() == serial.to_dict()

    def test_single_worker_falls_back(self, small_random_hypergraph):
        serial = count_exact(small_random_hypergraph)
        parallel = count_exact_parallel(small_random_hypergraph, num_workers=1)
        assert parallel.to_dict() == serial.to_dict()

    def test_tiny_hypergraph_falls_back(self, paper_hypergraph):
        parallel = count_exact_parallel(paper_hypergraph, num_workers=8)
        assert parallel.to_dict() == count_exact(paper_hypergraph).to_dict()

    def test_invalid_backend_rejected(self, medium_random_hypergraph):
        with pytest.raises(ValueError):
            count_exact_parallel(
                medium_random_hypergraph, num_workers=2, backend="greenlet"
            )

    def test_invalid_worker_count_rejected(self, small_random_hypergraph):
        with pytest.raises(ValueError):
            count_exact_parallel(small_random_hypergraph, num_workers=0)


class TestSamplingParallel:
    def test_edge_sampling_parallel_is_reasonable(self, medium_random_hypergraph):
        exact = count_exact(medium_random_hypergraph)
        estimates = [
            count_approx_edge_sampling_parallel(
                medium_random_hypergraph,
                num_samples=60,
                num_workers=2,
                seed=seed,
                backend=BACKEND_THREAD,
            )
            for seed in range(8)
        ]
        assert MotifCounts.mean(estimates).relative_error(exact) < 0.3

    def test_wedge_sampling_parallel_is_reasonable(self, medium_random_hypergraph):
        exact = count_exact(medium_random_hypergraph)
        estimates = [
            count_approx_wedge_sampling_parallel(
                medium_random_hypergraph,
                num_samples=80,
                num_workers=2,
                seed=seed,
                backend=BACKEND_THREAD,
            )
            for seed in range(8)
        ]
        assert MotifCounts.mean(estimates).relative_error(exact) < 0.3

    def test_edge_sampling_single_worker_matches_serial_with_same_seed(
        self, small_random_hypergraph
    ):
        parallel = count_approx_edge_sampling_parallel(
            small_random_hypergraph, num_samples=20, num_workers=1, seed=5
        )
        assert parallel.total() > 0

    def test_wedge_sampling_single_worker(self, small_random_hypergraph):
        projection = project(small_random_hypergraph)
        result = count_approx_wedge_sampling_parallel(
            small_random_hypergraph,
            num_samples=20,
            num_workers=1,
            seed=5,
            projection=projection,
        )
        assert result.total() > 0

    def test_empty_hypergraph_rejected(self):
        with pytest.raises(SamplingError):
            count_approx_edge_sampling_parallel(Hypergraph([]), num_samples=5)

    def test_no_wedges_rejected(self):
        hypergraph = Hypergraph([[1, 2], [3, 4], [5, 6]])
        with pytest.raises(SamplingError):
            count_approx_wedge_sampling_parallel(hypergraph, num_samples=5)
