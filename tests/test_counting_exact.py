"""Tests for MoCHy-E exact counting and enumeration."""

from __future__ import annotations

import pytest

from repro.counting import (
    count_exact,
    count_instances_containing,
    enumerate_instances,
)
from repro.generators import generate_uniform_random
from repro.hypergraph import Hypergraph
from repro.motifs import motif_is_closed, motif_is_open
from repro.projection import LazyProjection, project
from tests.conftest import brute_force_counts


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_brute_force_on_random_hypergraphs(self, seed):
        hypergraph = generate_uniform_random(
            num_nodes=18, num_hyperedges=28, mean_size=3.0, max_size=6, seed=seed
        )
        assert count_exact(hypergraph).to_dict() == brute_force_counts(hypergraph).to_dict()

    def test_matches_brute_force_on_paper_example(self, paper_hypergraph):
        assert (
            count_exact(paper_hypergraph).to_dict()
            == brute_force_counts(paper_hypergraph).to_dict()
        )


class TestPaperExample:
    def test_exactly_three_instances(self, paper_hypergraph):
        # Triples {e1,e2,e3}, {e1,e2,e4}, {e1,e3,e4} are connected; {e2,e3,e4} is not.
        counts = count_exact(paper_hypergraph)
        assert counts.total() == 3

    def test_instance_composition(self, paper_hypergraph):
        instances = list(enumerate_instances(paper_hypergraph))
        triples = {frozenset(instance.hyperedges) for instance in instances}
        assert triples == {
            frozenset({0, 1, 2}),
            frozenset({0, 1, 3}),
            frozenset({0, 2, 3}),
        }

    def test_open_and_closed_split(self, paper_hypergraph):
        counts = count_exact(paper_hypergraph)
        # {e1,e2,e3} is closed (all three share L); the two triples with e4 are open.
        assert counts.closed_total() == 1
        assert counts.open_total() == 2


class TestSingleInstanceFixtures:
    def test_triangle_instance_is_closed(self, triangle_hypergraph):
        counts = count_exact(triangle_hypergraph)
        assert counts.total() == 1
        (motif,) = [index for index, value in counts.items() if value]
        assert motif_is_closed(motif)

    def test_open_chain_instance_is_open(self, open_chain_hypergraph):
        counts = count_exact(open_chain_hypergraph)
        assert counts.total() == 1
        (motif,) = [index for index, value in counts.items() if value]
        assert motif_is_open(motif)

    def test_no_instances_with_fewer_than_three_edges(self):
        hypergraph = Hypergraph([[1, 2], [2, 3]])
        assert count_exact(hypergraph).total() == 0

    def test_empty_hypergraph(self):
        assert count_exact(Hypergraph([])).total() == 0


class TestEnumerationConsistency:
    def test_each_instance_enumerated_once(self, medium_random_hypergraph):
        instances = list(enumerate_instances(medium_random_hypergraph))
        triples = [frozenset(instance.hyperedges) for instance in instances]
        assert len(triples) == len(set(triples))

    def test_enumeration_totals_match_counts(self, medium_random_hypergraph):
        counts = count_exact(medium_random_hypergraph)
        instances = list(enumerate_instances(medium_random_hypergraph))
        assert counts.total() == len(instances)

    def test_works_with_lazy_projection(self, small_random_hypergraph):
        full_counts = count_exact(small_random_hypergraph)
        lazy = LazyProjection(small_random_hypergraph, budget=2)
        lazy_counts = count_exact(small_random_hypergraph, projection=lazy)
        assert lazy_counts.to_dict() == full_counts.to_dict()

    def test_restricting_indices_partitions_counts(self, small_random_hypergraph):
        projection = project(small_random_hypergraph)
        total = count_exact(small_random_hypergraph, projection)
        half = small_random_hypergraph.num_hyperedges // 2
        first = count_exact(
            small_random_hypergraph, projection, hyperedge_indices=range(half)
        )
        second = count_exact(
            small_random_hypergraph,
            projection,
            hyperedge_indices=range(half, small_random_hypergraph.num_hyperedges),
        )
        assert (first + second).to_dict() == total.to_dict()


class TestInstancesContainingEdge:
    def test_per_edge_counts_sum_to_three_times_total(self, small_random_hypergraph):
        projection = project(small_random_hypergraph)
        total = count_exact(small_random_hypergraph, projection).total()
        per_edge_total = sum(
            count_instances_containing(small_random_hypergraph, i, projection).total()
            for i in range(small_random_hypergraph.num_hyperedges)
        )
        # Every instance contains exactly three hyperedges.
        assert per_edge_total == 3 * total

    def test_paper_example_edge_participation(self, paper_hypergraph):
        projection = project(paper_hypergraph)
        # e1 participates in all three instances, e4 in two.
        assert count_instances_containing(paper_hypergraph, 0, projection).total() == 3
        assert count_instances_containing(paper_hypergraph, 3, projection).total() == 2
