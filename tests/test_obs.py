"""Tests for the observability subsystem (:mod:`repro.obs`).

Pinned guarantees:

* registry semantics — thread-safe exact counts, conserved histogram
  totals, idempotent registration, reset-keeps-families, and a disabled
  fast path that mutates nothing;
* the ``/v1/metrics`` exposition parses as valid Prometheus text format
  0.0.4 (cumulative monotone ``le`` buckets, ``+Inf == count``, HELP/TYPE
  headers, escaped label values);
* serving batches over the thread **and** process executors land exact
  counts in the process-wide registry;
* a request id injected by :class:`ServiceClient` is observable on every
  streamed NDJSON record envelope and in the server's structured log.
"""

from __future__ import annotations

import json
import logging
import re
import threading

import pytest

from repro.api import CountSpec
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    REQUEST_ID_HEADER,
    current_request_id,
    log_event,
    new_request_id,
    span,
    trace,
)
from repro.store import ArtifactStore
from repro.store import executors as executors_mod
from repro.store import serve as serve_mod
from repro.store.serve import EngineServer, ServeRequest
from tests.test_server import running_server, write_dataset


@pytest.fixture
def registry() -> MetricsRegistry:
    """A private registry, so family-creation tests stay off the global one."""
    return MetricsRegistry()


@pytest.fixture
def datasets(tmp_path):
    return (
        str(write_dataset(tmp_path / "alpha.txt", seed=1, num_hyperedges=20)),
        str(write_dataset(tmp_path / "beta.txt", seed=2, num_hyperedges=20)),
    )


class TestRegistrySemantics:
    def test_counter_counts_and_rejects_decrease(self, registry):
        requests = registry.counter("x_requests_total", "help", ("route",))
        requests.inc(route="/a")
        requests.inc(3, route="/a")
        requests.inc(route="/b")
        assert requests.value(route="/a") == 4
        assert requests.total() == 5
        with pytest.raises(ValueError):
            requests.inc(-1, route="/a")

    def test_label_mismatch_raises(self, registry):
        family = registry.counter("x_total", "help", ("route",))
        for labels in ({}, {"nope": "x"}, {"route": "a", "extra": "b"}):
            with pytest.raises(ValueError):
                family.inc(**labels)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("x_in_flight", "help")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value() == 1
        gauge.set(7.5)
        assert gauge.value() == 7.5

    def test_histogram_summary_quantiles(self, registry):
        histogram = registry.histogram(
            "x_seconds", "help", buckets=(1.0, 2.0, 4.0)
        )
        for _ in range(50):
            histogram.observe(1.5)
        for _ in range(50):
            histogram.observe(3.0)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(225.0)
        # Linear interpolation within the cumulative bucket counts.
        assert summary["p50"] == pytest.approx(2.0)
        assert summary["p95"] == pytest.approx(3.8)
        assert summary["p99"] == pytest.approx(3.96)

    def test_histogram_overflow_clamps_to_largest_edge(self, registry):
        histogram = registry.histogram("x_over_seconds", "help", buckets=(1.0,))
        histogram.observe(500.0)
        assert histogram.summary()["p50"] == 1.0

    def test_reregistration_is_idempotent_or_loud(self, registry):
        first = registry.counter("x_total", "help", ("route",))
        assert registry.counter("x_total", "help", ("route",)) is first
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", ("other",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help", ("route",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name", "help")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "help", ("bad-label",))

    def test_reset_zeroes_but_keeps_families(self, registry):
        counter = registry.counter("x_total", "help")
        counter.inc()
        registry.reset()
        assert counter.value() == 0
        assert registry.get("x_total") is counter
        counter.inc()
        assert counter.value() == 1

    def test_disabled_registry_mutates_nothing(self, registry):
        counter = registry.counter("x_total", "help")
        histogram = registry.histogram("x_seconds", "help")
        registry.enabled = False
        counter.inc()
        histogram.observe(0.5)
        assert counter.value() == 0
        assert histogram.summary()["count"] == 0

    def test_thread_hammer_exact_counts_and_conserved_totals(self, registry):
        """Concurrent mutation loses nothing: counts exact, sums conserved."""
        counter = registry.counter("x_hits_total", "help", ("worker",))
        histogram = registry.histogram("x_lat_seconds", "help")
        threads_n, iterations = 8, 2500

        def hammer(worker: int) -> None:
            for i in range(iterations):
                counter.inc(worker=str(worker))
                histogram.observe((i % 10) * 0.001)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total() == threads_n * iterations
        for worker in range(threads_n):
            assert counter.value(worker=str(worker)) == iterations
        summary = histogram.summary()
        assert summary["count"] == threads_n * iterations
        per_thread_sum = sum((i % 10) * 0.001 for i in range(iterations))
        assert summary["sum"] == pytest.approx(threads_n * per_thread_sum)


# --------------------------------------------------------------------- format

SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # sample name
    r"(?:\{([^}]*)\})?"  # optional label set
    r" (-?\d+(?:\.\d+)?(?:e[+-]?\d+)?|[+-]Inf|NaN)$"  # value
)
LABEL_PAIR = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_prometheus(text: str) -> dict:
    """Validate Prometheus text format 0.0.4; samples keyed by name+labels.

    Deliberately strict: every sample must belong to the most recent
    ``# TYPE``'d family, label pairs must parse, and histogram families must
    be internally consistent (cumulative monotone buckets, ``+Inf`` bucket
    equal to ``_count``).
    """
    assert text.endswith("\n")
    samples = {}
    families = {}
    current = None
    helped = set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram")
            assert name in helped, f"TYPE before HELP for {name}"
            assert name not in families, f"duplicate TYPE for {name}"
            families[name] = kind
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        match = SAMPLE_LINE.match(line)
        assert match, f"unparsable sample line {line!r}"
        name, labels, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert current in (name, base), f"sample {name!r} outside its family"
        if labels:
            for pair in re.split(r",(?=[a-zA-Z_])", labels):
                assert LABEL_PAIR.match(pair), f"bad label pair {pair!r}"
        assert (name, labels) not in samples, f"duplicate sample {line!r}"
        samples[(name, labels)] = float(value)
    # Histogram invariants, per label subset.
    for family, kind in families.items():
        if kind != "histogram":
            continue
        buckets = {}
        for (name, labels), value in samples.items():
            if name == f"{family}_bucket" and labels:
                le = dict(
                    pair.split("=", 1) for pair in re.split(r",(?=[a-zA-Z_])", labels)
                )["le"].strip('"')
                rest = ",".join(
                    pair
                    for pair in re.split(r",(?=[a-zA-Z_])", labels)
                    if not pair.startswith("le=")
                )
                buckets.setdefault(rest, []).append((le, value))
        for rest, edges in buckets.items():
            values = [value for _, value in edges]
            assert values == sorted(values), f"non-monotone buckets for {rest}"
            assert edges[-1][0] == "+Inf"
            count_key = (f"{family}_count", rest or None)
            assert samples[count_key] == edges[-1][1]
    return samples


class TestExposition:
    def test_counter_total_suffix_not_doubled(self, registry):
        registry.counter("x_gets_total", "help").inc()
        registry.counter("y_gets", "unsuffixed counter").inc(2)
        text = registry.render()
        assert "x_gets_total 1" in text
        assert "x_gets_total_total" not in text
        # An unsuffixed counter is rendered with _total appended.
        samples = parse_prometheus(text)
        assert samples[("x_gets_total", None)] == 1.0
        assert samples[("y_gets_total", None)] == 2.0

    def test_label_values_escaped(self, registry):
        family = registry.counter("x_total", "help", ("path",))
        family.inc(path='a"b\\c\nd')
        text = registry.render()
        assert 'path="a\\"b\\\\c\\nd"' in text
        parse_prometheus(text)

    def test_global_render_is_valid_prometheus(self, datasets, tmp_path):
        """The real process-wide exposition — after real serving — parses."""
        alpha, beta = datasets
        store = ArtifactStore(tmp_path / "store")
        server = EngineServer(store=store)
        server.submit([ServeRequest(alpha, CountSpec())])
        server.submit([ServeRequest(alpha, CountSpec())])  # warm hit
        store.gc()
        text = obs_metrics.render()
        samples = parse_prometheus(text)
        assert samples[("repro_serve_requests_total", None)] == 2
        assert samples[("repro_serve_cache_tier_total", 'tier="computed"')] == 1
        assert samples[("repro_store_puts_total", 'outcome="ok"')] >= 1

    def test_summaries_cover_every_histogram(self, registry):
        registry.histogram("x_seconds", "help").observe(0.5)
        registry.counter("x_total", "help").inc()
        summaries = registry.summaries()
        assert set(summaries) == {"x_seconds"}
        assert set(summaries["x_seconds"]) == {"count", "sum", "p50", "p95", "p99"}


# ------------------------------------------------------------------ executors


class TestServingCounts:
    def test_thread_batch_lands_exact_counts(self, datasets):
        alpha, beta = datasets
        requests = [
            ServeRequest(alpha, CountSpec()),
            ServeRequest(beta, CountSpec()),
            ServeRequest(alpha, CountSpec()),  # duplicate of request 0
        ]
        server = EngineServer(store=False)
        results = server.submit(requests, workers=2, backend="thread")
        assert len(results) == 3
        assert serve_mod.SERVE_REQUESTS_TOTAL.value() == 3
        assert serve_mod.SERVE_BATCHES_TOTAL.value() == 1
        assert serve_mod.SERVE_DEDUPLICATED_TOTAL.value() == 1
        assert serve_mod.SERVE_CACHE_TIER_TOTAL.value(tier="computed") == 2
        assert serve_mod.SERVE_IN_FLIGHT.value() == 0
        wait = executors_mod.QUEUE_WAIT_SECONDS
        turnaround = executors_mod.UNIT_TURNAROUND_SECONDS
        assert wait.child_count(backend="thread") == 2
        assert turnaround.child_count(backend="thread") == 2

    def test_process_batch_lands_exact_counts(self, datasets, tmp_path):
        alpha, beta = datasets
        requests = [
            ServeRequest(alpha, CountSpec()),
            ServeRequest(beta, CountSpec()),
        ]
        server = EngineServer(store=ArtifactStore(tmp_path / "store"))
        results = server.submit(requests, workers=2, backend="process")
        assert len(results) == 2
        assert serve_mod.SERVE_REQUESTS_TOTAL.value() == 2
        assert serve_mod.SERVE_CACHE_TIER_TOTAL.value(tier="computed") == 2
        turnaround = executors_mod.UNIT_TURNAROUND_SECONDS
        assert turnaround.child_count(backend="process") == 2
        # Warm re-submit through a fresh serial server: disk-tier outcomes.
        warm = EngineServer(store=ArtifactStore(tmp_path / "store"))
        warm.submit(requests)
        assert serve_mod.SERVE_CACHE_TIER_TOTAL.value(tier="disk") == 2


# ---------------------------------------------------------------------- trace


class TestTrace:
    def test_trace_binds_and_restores(self):
        assert current_request_id() is None
        with trace("outer"):
            assert current_request_id() == "outer"
            with trace("inner"):
                assert current_request_id() == "inner"
            assert current_request_id() == "outer"
        assert current_request_id() is None

    def test_new_request_ids_are_short_and_unique(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", rid) for rid in ids)

    def test_log_event_emits_json_with_request_id(self, caplog):
        logger = logging.getLogger("repro.test_obs")
        with caplog.at_level(logging.DEBUG, logger="repro.test_obs"):
            with trace("deadbeef00000000"):
                log_event(logger, "unit.done", dataset="alpha", seconds=0.25)
        assert len(caplog.records) == 1
        payload = json.loads(caplog.records[0].getMessage())
        assert payload == {
            "event": "unit.done",
            "request_id": "deadbeef00000000",
            "dataset": "alpha",
            "seconds": 0.25,
        }

    def test_log_event_skips_disabled_levels(self, caplog):
        logger = logging.getLogger("repro.test_obs")
        with caplog.at_level(logging.WARNING, logger="repro.test_obs"):
            log_event(logger, "unit.done", dataset="alpha")
        assert caplog.records == []

    def test_span_logs_duration(self, caplog):
        logger = logging.getLogger("repro.test_obs")
        with caplog.at_level(logging.DEBUG, logger="repro.test_obs"):
            with span(logger, "compact", shard="ab") as fields:
                fields["kept"] = 3
        payload = json.loads(caplog.records[0].getMessage())
        assert payload["event"] == "compact"
        assert payload["shard"] == "ab" and payload["kept"] == 3
        assert payload["seconds"] >= 0


# ----------------------------------------------------------------------- HTTP


class TestServiceObservability:
    def test_metrics_endpoint_is_valid_prometheus(self, datasets, tmp_path):
        alpha, _ = datasets
        with running_server(store=ArtifactStore(tmp_path / "store")) as (
            _,
            client,
        ):
            client.batch([(alpha, CountSpec())])
            text = client.metrics()
            samples = parse_prometheus(text)
            assert (
                samples[("repro_http_requests_total", 'route="/v1/batch",status="200"')]
                == 1
            )
            assert samples[("repro_serve_requests_total", None)] == 1
            assert samples[("repro_serve_cache_tier_total", 'tier="computed"')] == 1
            for stage in ("parse", "queue", "execute", "stream"):
                key = ("repro_server_stage_seconds_count", f'stage="{stage}"')
                assert samples[key] == 1, f"missing stage {stage}"
            # Warm second pass flips the cache-tier label: the resident
            # engine's own result cache answers it.
            client.batch([(alpha, CountSpec())])
            warmed = parse_prometheus(client.metrics())
            assert warmed[("repro_serve_cache_tier_total", 'tier="engine"')] == 1

    def test_stats_fold_in_histogram_summaries(self, datasets):
        alpha, _ = datasets
        with running_server() as (_, client):
            client.batch([(alpha, CountSpec())])
            payload = client.stats()
            summaries = payload["metrics"]
            assert summaries["repro_server_stage_seconds"]["count"] == 4
            assert set(summaries["repro_serve_unit_seconds"]) == {
                "count",
                "sum",
                "p50",
                "p95",
                "p99",
            }

    def test_request_id_propagates_to_records_and_logs(self, datasets, caplog):
        alpha, _ = datasets
        with running_server() as (_, client):
            with caplog.at_level(logging.INFO, logger="repro.store.server"):
                records = list(
                    client.batch_stream(
                        [(alpha, CountSpec())], request_id="feedc0de12345678"
                    )
                )
        assert client.last_request_id == "feedc0de12345678"
        assert {record["status"] for record in records} == {"ok", "done"}
        for record in records:
            assert record["request_id"] == "feedc0de12345678"
        events = [json.loads(r.getMessage()) for r in caplog.records]
        accepted = [e for e in events if e["event"] == "server.batch_accepted"]
        assert accepted and accepted[0]["request_id"] == "feedc0de12345678"
        done = [e for e in events if e["event"] == "server.batch_done"]
        assert done and done[0]["request_id"] == "feedc0de12345678"

    def test_client_generates_request_id_when_absent(self, datasets):
        alpha, _ = datasets
        with running_server() as (_, client):
            records = list(client.batch_stream([(alpha, CountSpec())]))
        assert re.fullmatch(r"[0-9a-f]{16}", client.last_request_id)
        assert all(
            record["request_id"] == client.last_request_id for record in records
        )

    def test_metrics_content_type_and_response_header(self, datasets):
        import http.client as http_client

        alpha, _ = datasets
        with running_server() as (server, client):
            client.batch([(alpha, CountSpec())], request_id="cafe000000000001")
            connection = http_client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain; version=0.0.4"
            )
            response.read()
            connection.close()

    def test_post_response_echoes_request_id_header(self, datasets):
        import http.client as http_client

        alpha, _ = datasets
        with running_server() as (server, _):
            body = json.dumps(
                {"requests": [{"source": alpha, "spec": {"type": "count"}}]}
            ).encode()
            connection = http_client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            connection.request(
                "POST",
                "/v1/batch",
                body=body,
                headers={
                    "Content-Type": "application/json",
                    REQUEST_ID_HEADER: "beefbeefbeefbeef",
                },
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("X-Request-Id") == "beefbeefbeefbeef"
            response.read()
            connection.close()

    def test_access_log_routes_through_repro_logger(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.store.server"):
            with running_server() as (_, client):
                client.health()
        events = [json.loads(r.getMessage()) for r in caplog.records]
        assert any(event["event"] == "http.access" for event in events)
