"""Tests for the HTTP motif service (:mod:`repro.store.server`) and client.

The hard guarantees pinned here:

* streamed batch results are **bit-identical** to the ``serve-batch`` CLI's
  serial ``--json`` output for exact and integer-seeded specs;
* results stream **incrementally**, in completion order — a fast unit's
  record arrives while a slow unit is still executing;
* every request-wire-format error (malformed JSON, unknown spec type,
  invalid spec parameter combinations, oversized batches) is a structured
  4xx — never a 500 — and leaves the server's stats consistent;
* a second service over the same store directory serves the whole batch
  from the disk tier;
* SIGTERM-style shutdown drains in-flight batches before closing.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import CountSpec, ProfileSpec
from repro.cli import main as cli_main
from repro.generators import generate_uniform_random
from repro.hypergraph import io as hio
from repro.store import ArtifactStore
from repro.store.client import ServiceClient, ServiceError, request_to_dict
from repro.store.serve import ServeRequest
from repro.store.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    build_server,
    shutdown_gracefully,
)

#: Result fields that legitimately differ between runs (timings, cache
#: provenance); everything else must match bit-for-bit.
VOLATILE_KEYS = frozenset(
    {
        "projection_seconds",
        "counting_seconds",
        "seconds",
        "elapsed_seconds",
        "projection_cached",
        "from_cache",
        "cache_tier",
    }
)


def stable(result: dict) -> dict:
    """A result dict with its volatile (timing/provenance) fields removed."""
    return {key: value for key, value in result.items() if key not in VOLATILE_KEYS}


def write_dataset(path, seed, num_hyperedges=40):
    hypergraph = generate_uniform_random(
        num_nodes=24, num_hyperedges=num_hyperedges, seed=seed
    )
    hio.write_plain(hypergraph, path)
    return path


@pytest.fixture
def datasets(tmp_path):
    return (
        str(write_dataset(tmp_path / "alpha.txt", seed=1)),
        str(write_dataset(tmp_path / "beta.txt", seed=2)),
    )


@pytest.fixture
def requests_jsonl(tmp_path, datasets):
    """A mixed batch exercising every servable spec type, with a duplicate."""
    alpha, beta = datasets
    records = [
        {"source": alpha, "spec": {"type": "count"}},
        {
            "source": alpha,
            "spec": {
                "type": "count",
                "algorithm": "wedge-sampling",
                "num_samples": 150,
                "seed": 7,
            },
        },
        {"source": beta, "spec": {"type": "profile", "num_random": 2, "seed": 0}},
        {"source": beta, "spec": {"type": "compare", "num_random": 2, "seed": 0}},
        {"source": alpha, "spec": {"type": "count"}},  # duplicate of request 0
    ]
    path = tmp_path / "requests.jsonl"
    path.write_text(
        "\n".join(json.dumps(record) for record in records) + "\n", encoding="utf-8"
    )
    return path, records


@contextmanager
def running_server(store=False, **kwargs):
    """A live service on a free port, torn down (drained) afterwards."""
    server = build_server(port=0, store=store, **kwargs)
    loop = threading.Thread(target=server.serve_forever, daemon=True)
    loop.start()
    client = ServiceClient(port=server.port, timeout=60.0)
    client.wait_until_healthy()
    try:
        yield server, client
    finally:
        shutdown_gracefully(server, drain_seconds=10.0)


def serial_reference(requests_path, capsys):
    """The ``serve-batch`` CLI's serial ``--json`` output, parsed."""
    assert cli_main(["serve-batch", str(requests_path), "--json", "--no-store"]) == 0
    lines = [
        line for line in capsys.readouterr().out.splitlines() if line.strip()
    ]
    return [json.loads(line) for line in lines]


class TestEndpoints:
    def test_health(self):
        with running_server() as (_, client):
            payload = client.health()
            assert payload["status"] == "ok"
            assert payload["in_flight"] == 0
            assert "version" in payload and "uptime_seconds" in payload

    def test_stats_shape(self, tmp_path):
        with running_server(
            store=ArtifactStore(tmp_path / "store"), workers=2, backend="thread"
        ) as (_, client):
            payload = client.stats()
            assert payload["engines"]["max"] == 8
            assert payload["serve"]["batches"] == 0
            assert payload["store"]["persistent"] is True
            occupancy = payload["store"]["occupancy"]
            assert occupancy["layout"] == "lsm"
            assert occupancy["num_shards"] == 256
            assert payload["pool"] == {
                "backend": "thread",
                "workers": 2,
                "started": False,
                "closed": False,
                "respawns": 0,
            }
            assert payload["max_batch"] == DEFAULT_MAX_BATCH
            assert payload["max_queue"] == DEFAULT_MAX_QUEUE
            assert payload["request_timeout"] is None
            assert payload["service"]["batches_accepted"] == 0
            assert payload["service"]["batches_rejected_busy"] == 0

    def test_unknown_routes_are_structured_404s(self):
        with running_server() as (server, _):
            for method, path in (("GET", "/nope"), ("POST", "/v1/nope")):
                connection = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=10
                )
                headers = {"Content-Length": "2"} if method == "POST" else {}
                connection.request(method, path, body=b"{}", headers=headers)
                response = connection.getresponse()
                payload = json.loads(response.read())
                connection.close()
                assert response.status == 404
                assert payload["error"]["type"] == "NotFound"


class TestStreamedBatchParity:
    def test_streamed_results_match_serve_batch_serial_output(
        self, requests_jsonl, tmp_path, capsys
    ):
        path, records = requests_jsonl
        reference = serial_reference(path, capsys)
        with running_server(
            store=ArtifactStore(tmp_path / "store"), workers=2, backend="thread"
        ) as (_, client):
            results = client.batch(records)
        assert len(results) == len(reference) == len(records)
        for streamed, serial in zip(results, reference):
            assert stable(streamed) == stable(serial)

    def test_jsonl_body_and_duplicate_fan_out(self, requests_jsonl, tmp_path):
        path, records = requests_jsonl
        body = path.read_bytes()
        with running_server(store=ArtifactStore(tmp_path / "store")) as (
            server,
            _,
        ):
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=60
            )
            connection.request(
                "POST",
                "/v1/batch",
                body=body,
                headers={"Content-Type": "application/x-ndjson"},
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            stream = [json.loads(line) for line in response if line.strip()]
            connection.close()
            okay = [record for record in stream if record["status"] == "ok"]
            done = [record for record in stream if record["status"] == "done"]
            assert sorted(record["index"] for record in okay) == list(
                range(len(records))
            )
            assert len(done) == 1 and done[0]["ok"] == len(records)
            # The duplicate slots deduplicated onto one unit...
            assert server.service.engine_server.stats.deduplicated == 1
            # ...and still produced equal payloads.
            by_index = {record["index"]: record["result"] for record in okay}
            assert stable(by_index[0]) == stable(by_index[4])

    def test_second_service_over_same_store_serves_from_disk(
        self, requests_jsonl, tmp_path
    ):
        path, records = requests_jsonl
        store_dir = tmp_path / "store"
        with running_server(store=ArtifactStore(store_dir)) as (_, client):
            cold = client.batch(records)
        # Counts and profiles are genuinely computed on the cold pass (the
        # compare request legitimately reuses counts its own batch cached).
        assert not any(
            result["from_cache"] for result in cold if result["kind"] != "compare"
        )
        with running_server(store=ArtifactStore(store_dir)) as (_, client):
            warm = client.batch(records)
        for cold_result, warm_result in zip(cold, warm):
            assert stable(cold_result) == stable(warm_result)
            assert warm_result["from_cache"] is True
            if warm_result["kind"] != "compare":
                assert warm_result["cache_tier"] == "disk"

    def test_process_backend_parity(self, requests_jsonl, tmp_path):
        path, records = requests_jsonl
        store_dir = tmp_path / "store"
        with running_server(store=ArtifactStore(store_dir)) as (_, client):
            serial = client.batch(records)
        with running_server(
            store=ArtifactStore(tmp_path / "store2"), workers=2, backend="process"
        ) as (server, client):
            # Open the process pool before handler threads go to work, to
            # keep the fork away from actively-serving threads.
            server.service.engine_server.worker_pool.executor()
            parallel = client.batch(records)
        for serial_result, parallel_result in zip(serial, parallel):
            assert stable(serial_result) == stable(parallel_result)


class TestIncrementalStreaming:
    def test_fast_unit_arrives_while_slow_unit_still_runs(
        self, datasets, monkeypatch
    ):
        alpha, beta = datasets
        gate = threading.Event()
        from repro.store import serve as serve_module

        original = serve_module.dispatch_spec

        def gated(engine, spec):
            if isinstance(spec, ProfileSpec):
                assert gate.wait(timeout=30), "test gate never opened"
            return original(engine, spec)

        monkeypatch.setattr(serve_module, "dispatch_spec", gated)
        requests = [
            {"source": alpha, "spec": {"type": "profile", "num_random": 2, "seed": 0}},
            {"source": beta, "spec": {"type": "count"}},
        ]
        with running_server(workers=2, backend="thread") as (_, client):
            stream = client.batch_stream(requests)
            first = next(stream)
            # The count's record arrived although the profile (requested
            # first) is still blocked on the gate: completion order, flushed
            # incrementally.
            assert first["status"] == "ok"
            assert first["index"] == 1
            assert first["result"]["kind"] == "count"
            gate.set()
            rest = list(stream)
        assert [record.get("index") for record in rest] == [0, None]
        assert rest[0]["result"]["kind"] == "profile"
        assert rest[1]["status"] == "done"

    def test_graceful_shutdown_drains_in_flight_batch(self, datasets, monkeypatch):
        alpha, _ = datasets
        gate = threading.Event()
        from repro.store import serve as serve_module

        original = serve_module.dispatch_spec

        def gated(engine, spec):
            if isinstance(spec, ProfileSpec):
                assert gate.wait(timeout=30), "test gate never opened"
            return original(engine, spec)

        monkeypatch.setattr(serve_module, "dispatch_spec", gated)
        requests = [
            {"source": alpha, "spec": {"type": "profile", "num_random": 2, "seed": 0}}
        ]
        with running_server(workers=2, backend="thread") as (server, client):
            outcome = {}

            def consume():
                outcome["results"] = client.batch(requests)

            consumer = threading.Thread(target=consume)
            consumer.start()
            deadline = time.monotonic() + 10
            while server.service.in_flight == 0:
                assert time.monotonic() < deadline, "batch never became in-flight"
                time.sleep(0.01)

            drain_result = {}

            def drain():
                drain_result["drained"] = shutdown_gracefully(
                    server, drain_seconds=30.0
                )

            drainer = threading.Thread(target=drain)
            drainer.start()
            time.sleep(0.1)
            assert drainer.is_alive(), "drain returned while a batch was in flight"
            gate.set()
            drainer.join(timeout=30)
            consumer.join(timeout=30)
            assert drain_result["drained"] is True
            assert outcome["results"][0]["kind"] == "profile"
            assert server.service.in_flight == 0


class TestWireFormatErrors:
    """The satellite guarantees: structured 4xx, never 500, stats stay clean."""

    @staticmethod
    def _post_raw(server, body, headers=None):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        connection.request(
            "POST",
            "/v1/batch",
            body=body,
            headers=headers or {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        return response.status, payload

    @staticmethod
    def _assert_stats_consistent(client, rejected):
        payload = client.stats()
        assert payload["serve"]["batches"] == 0, "a rejected batch was dispatched"
        assert payload["serve"]["in_flight"] == 0
        assert payload["service"]["batches_rejected"] == rejected
        assert payload["service"]["batches_accepted"] == 0

    def test_malformed_json_body(self, datasets):
        with running_server() as (server, client):
            status, payload = self._post_raw(server, b"{this is not json")
            assert status == 400
            assert payload["error"]["type"] == "MalformedJSON"
            assert "invalid JSON" in payload["error"]["message"]
            self._assert_stats_consistent(client, rejected=1)

    def test_unknown_spec_type(self, datasets):
        alpha, _ = datasets
        with running_server() as (server, client):
            with pytest.raises(ServiceError) as excinfo:
                client.batch([{"source": alpha, "spec": {"type": "tally"}}])
            assert excinfo.value.status == 400
            assert excinfo.value.payload["type"] == "SpecError"
            assert "unknown spec type" in str(excinfo.value)
            self._assert_stats_consistent(client, rejected=1)

    def test_samples_and_ratio_both_set(self, datasets):
        alpha, _ = datasets
        record = {
            "source": alpha,
            "spec": {
                "type": "count",
                "algorithm": "edge-sampling",
                "num_samples": 10,
                "sampling_ratio": 0.5,
            },
        }
        with running_server() as (server, client):
            with pytest.raises(ServiceError) as excinfo:
                client.batch([record])
            assert excinfo.value.status == 400
            assert excinfo.value.payload["type"] == "CountSpecError"
            assert "num_samples or sampling_ratio" in str(excinfo.value)
            self._assert_stats_consistent(client, rejected=1)

    def test_oversized_batch(self, datasets):
        alpha, _ = datasets
        record = {"source": alpha, "spec": {"type": "count"}}
        with running_server(max_batch=2) as (server, client):
            with pytest.raises(ServiceError) as excinfo:
                client.batch([record] * 3)
            assert excinfo.value.status == 413
            assert excinfo.value.payload["type"] == "BatchTooLarge"
            self._assert_stats_consistent(client, rejected=1)

    def test_empty_batch_and_non_object_records(self, datasets):
        with running_server() as (server, client):
            status, payload = self._post_raw(server, b'{"requests": []}')
            assert (status, payload["error"]["type"]) == (400, "EmptyBatch")
            status, payload = self._post_raw(server, b'{"requests": [17]}')
            assert status == 400
            assert payload["error"]["type"] == "SpecError"
            status, payload = self._post_raw(server, b'{"requests": "nope"}')
            assert (status, payload["error"]["type"]) == (400, "MalformedBody")
            status, payload = self._post_raw(server, b'"just a string"')
            assert (status, payload["error"]["type"]) == (400, "MalformedBody")
            self._assert_stats_consistent(client, rejected=4)

    def test_missing_source_and_predict_spec(self, datasets):
        alpha, _ = datasets
        with running_server() as (server, client):
            with pytest.raises(ServiceError) as excinfo:
                client.batch([{"spec": {"type": "count"}}])
            assert excinfo.value.status == 400
            assert 'missing or invalid "source"' in str(excinfo.value)
            with pytest.raises(ServiceError) as excinfo:
                client.batch([{"source": alpha, "spec": {"type": "predict"}}])
            assert excinfo.value.status == 400
            assert "not servable" in str(excinfo.value)
            self._assert_stats_consistent(client, rejected=2)

    def test_unknown_dataset_streams_error_record_not_500(self, datasets):
        alpha, _ = datasets
        requests = [
            {"source": "no-such-dataset", "spec": {"type": "count"}},
            {"source": alpha, "spec": {"type": "count"}},
        ]
        with running_server() as (server, client):
            records = list(client.batch_stream(requests))
            statuses = {record.get("index"): record["status"] for record in records}
            assert statuses[0] == "error"
            assert statuses[1] == "ok"
            (failure,) = [r for r in records if r["status"] == "error"]
            assert failure["error"]["type"] == "DatasetError"
            done = records[-1]
            assert done["status"] == "done"
            assert (done["ok"], done["errors"]) == (1, 1)
            payload = client.stats()
            assert payload["serve"]["unit_failures"] == 1
            assert payload["serve"]["in_flight"] == 0
            assert payload["service"]["batches_accepted"] == 1
            assert payload["service"]["errors_streamed"] == 1


class TestClient:
    def test_request_to_dict_accepts_all_shapes(self, datasets):
        alpha, _ = datasets
        spec = CountSpec()
        expected = {"source": alpha, "spec": {"type": "count"}}
        as_dict = request_to_dict({"source": alpha, "spec": {"type": "count"}})
        assert as_dict == expected
        from_request = request_to_dict(ServeRequest(alpha, spec))
        from_tuple = request_to_dict((alpha, spec))
        assert from_request["source"] == from_tuple["source"] == alpha
        assert from_request["spec"]["type"] == "count"

    def test_request_to_dict_rejects_in_memory_sources(self):
        hypergraph = generate_uniform_random(num_nodes=6, num_hyperedges=6, seed=0)
        with pytest.raises(Exception, match="over the wire"):
            request_to_dict((hypergraph, CountSpec()))

    def test_batch_raises_on_error_record(self, datasets):
        with running_server() as (_, client):
            with pytest.raises(ServiceError, match="request 0 failed"):
                client.batch([{"source": "no-such-dataset", "spec": {"type": "count"}}])
