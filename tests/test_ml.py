"""Tests for the from-scratch classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    StandardScaler,
    default_classifiers,
)
from repro.ml.base import validate_features_labels
from repro.prediction.metrics import accuracy, roc_auc


def make_separable_dataset(num_samples=200, num_features=4, seed=0):
    """A linearly separable dataset with a little noise."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_samples, num_features))
    weights = np.arange(1, num_features + 1, dtype=float)
    logits = features @ weights
    labels = (logits + rng.normal(scale=0.3, size=num_samples) > 0).astype(int)
    return features, labels


def make_xor_dataset(num_samples=300, seed=0):
    """A non-linear (XOR-like) dataset that linear models cannot solve well."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(-1, 1, size=(num_samples, 2))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
    features = features + rng.normal(scale=0.05, size=features.shape)
    return features, labels


ALL_CLASSIFIERS = [
    LogisticRegression,
    lambda: DecisionTreeClassifier(seed=0),
    lambda: RandomForestClassifier(num_trees=10, seed=0),
    KNeighborsClassifier,
    lambda: MLPClassifier(num_epochs=80, seed=0),
]


class TestBase:
    def test_validate_rejects_bad_shapes(self):
        with pytest.raises(ModelError):
            validate_features_labels(np.zeros(5))
        with pytest.raises(ModelError):
            validate_features_labels(np.zeros((5, 2)), np.zeros((5, 2)))
        with pytest.raises(ModelError):
            validate_features_labels(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ModelError):
            validate_features_labels(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_scaler_standardizes(self):
        features = np.array([[1.0, 10.0], [3.0, 10.0], [5.0, 10.0]])
        scaler = StandardScaler()
        transformed = scaler.fit_transform(features)
        assert np.allclose(transformed.mean(axis=0), 0.0)
        # Constant column stays finite.
        assert np.all(np.isfinite(transformed))

    def test_scaler_requires_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_scaler_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((3, 2)))
        with pytest.raises(ModelError):
            scaler.transform(np.zeros((3, 3)))


class TestClassifiersOnSeparableData:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_beats_chance_on_linear_data(self, factory):
        features, labels = make_separable_dataset(seed=1)
        split = 150
        model = factory()
        model.fit(features[:split], labels[:split])
        predictions = model.predict(features[split:])
        scores = model.predict_proba(features[split:])
        assert accuracy(labels[split:], predictions) > 0.8
        assert roc_auc(labels[split:], scores) > 0.85

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_predict_before_fit_raises(self, factory):
        model = factory()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((2, 4)))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_probabilities_in_unit_interval(self, factory):
        features, labels = make_separable_dataset(num_samples=120, seed=2)
        model = factory()
        model.fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)


class TestNonLinearModels:
    def test_tree_models_solve_xor_better_than_logistic(self):
        features, labels = make_xor_dataset(seed=3)
        split = 200
        logistic = LogisticRegression()
        forest = RandomForestClassifier(num_trees=20, max_depth=6, seed=0)
        logistic.fit(features[:split], labels[:split])
        forest.fit(features[:split], labels[:split])
        logistic_auc = roc_auc(labels[split:], logistic.predict_proba(features[split:]))
        forest_auc = roc_auc(labels[split:], forest.predict_proba(features[split:]))
        assert forest_auc > logistic_auc
        assert forest_auc > 0.8

    def test_mlp_solves_xor(self):
        features, labels = make_xor_dataset(seed=4)
        split = 200
        mlp = MLPClassifier(hidden_units=24, num_epochs=300, learning_rate=0.1, seed=0)
        mlp.fit(features[:split], labels[:split])
        assert roc_auc(labels[split:], mlp.predict_proba(features[split:])) > 0.8


class TestConstructorValidation:
    def test_logistic_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2_penalty=-1)

    def test_tree_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_forest_rejects_bad_tree_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(num_trees=0)

    def test_knn_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(num_neighbors=0)

    def test_mlp_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            MLPClassifier(learning_rate=-0.1)

    def test_logistic_exposes_coefficients(self):
        features, labels = make_separable_dataset(num_samples=100)
        model = LogisticRegression().fit(features, labels)
        assert model.coefficients.shape == (features.shape[1],)

    def test_default_classifiers_cover_paper_families(self):
        families = default_classifiers()
        assert set(families) == {
            "logistic-regression",
            "random-forest",
            "decision-tree",
            "k-nearest-neighbors",
            "mlp",
        }
