"""Tests for the unified ``repro.api`` layer: engine, specs, results, registry."""

from __future__ import annotations

import json

import pytest

import repro.api.engine as engine_module
from repro.api import (
    CompareSpec,
    CountSpec,
    DatasetRegistry,
    MotifEngine,
    PredictSpec,
    ProfileSpec,
    load,
)
from repro.counting import count_exact, count_motifs
from repro.exceptions import (
    CountSpecError,
    DatasetError,
    SamplingError,
    SpecError,
)
from repro.generators import generate_temporal_coauthorship
from repro.hypergraph import Hypergraph
from repro.hypergraph import io as hio
from repro.motifs.patterns import NUM_MOTIFS
from repro.projection import project


@pytest.fixture
def counting_project(monkeypatch):
    """Monkeypatch the engine's projection builder to record its inputs."""
    calls = []

    def recording_project(hypergraph):
        calls.append(hypergraph)
        return project(hypergraph)

    monkeypatch.setattr(engine_module, "project", recording_project)
    return calls


class TestProjectionCache:
    def test_count_then_profile_projects_once(self, small_random_hypergraph, counting_project):
        engine = MotifEngine(small_random_hypergraph)
        engine.count()
        engine.profile(ProfileSpec(num_random=2, seed=0))
        own = [h for h in counting_project if h is small_random_hypergraph]
        assert len(own) == 1
        assert engine.num_projection_builds == 1

    def test_count_profile_compare_project_once(self, small_random_hypergraph, counting_project):
        engine = MotifEngine(small_random_hypergraph)
        engine.count()
        engine.count(CountSpec(algorithm="mochy-a+", sampling_ratio=0.3, seed=0))
        engine.profile(ProfileSpec(num_random=2, seed=0))
        engine.compare(CompareSpec(num_random=2, seed=0))
        own = [h for h in counting_project if h is small_random_hypergraph]
        assert len(own) == 1

    def test_second_count_reports_cache_hit(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        first = engine.count(CountSpec(algorithm="mochy-a", num_samples=5, seed=0))
        second = engine.count(CountSpec(algorithm="mochy-a+", num_samples=5, seed=0))
        assert not first.projection_cached
        assert second.projection_cached
        assert second.projection_seconds == 0.0

    def test_supplied_projection_is_reused(self, small_random_hypergraph, counting_project):
        projection = project(small_random_hypergraph)
        engine = MotifEngine(small_random_hypergraph, projection=projection)
        result = engine.count()
        assert result.projection_cached
        assert counting_project == []

    def test_clear_cache_forces_rebuild(self, small_random_hypergraph, counting_project):
        engine = MotifEngine(small_random_hypergraph)
        engine.count()
        engine.clear_cache()
        engine.count()
        own = [h for h in counting_project if h is small_random_hypergraph]
        assert len(own) == 2


@pytest.fixture
def counting_kernels(monkeypatch):
    """Record invocations of the engine's counting kernels."""
    calls = {"exact": 0, "edge": 0}
    real_exact = engine_module.count_exact
    real_edge = engine_module.count_approx_edge_sampling

    def exact_wrapper(*args, **kwargs):
        calls["exact"] += 1
        return real_exact(*args, **kwargs)

    def edge_wrapper(*args, **kwargs):
        calls["edge"] += 1
        return real_edge(*args, **kwargs)

    monkeypatch.setattr(engine_module, "count_exact", exact_wrapper)
    monkeypatch.setattr(engine_module, "count_approx_edge_sampling", edge_wrapper)
    return calls


class TestCountMemoization:
    def test_exact_result_is_memoized(self, small_random_hypergraph, counting_kernels):
        engine = MotifEngine(small_random_hypergraph)
        first = engine.count()
        second = engine.count()
        assert first.counts == second.counts
        assert counting_kernels["exact"] == 1

    def test_exact_specs_normalize_to_one_key(self, small_random_hypergraph, counting_kernels):
        engine = MotifEngine(small_random_hypergraph)
        assert CountSpec(algorithm="mochy-e", seed=3) == CountSpec(algorithm="exact", seed=9)
        first = engine.count(CountSpec(algorithm="mochy-e", seed=3))
        second = engine.count(CountSpec(algorithm="exact", seed=9))
        assert first.counts == second.counts
        assert counting_kernels["exact"] == 1

    def test_seeded_sampling_memoized_but_unseeded_not(
        self, small_random_hypergraph, counting_kernels
    ):
        engine = MotifEngine(small_random_hypergraph)
        spec = CountSpec(algorithm="mochy-a", num_samples=8, seed=1)
        assert engine.count(spec).counts == engine.count(spec).counts
        assert counting_kernels["edge"] == 1
        unseeded = CountSpec(algorithm="mochy-a", num_samples=8)
        engine.count(unseeded)
        engine.count(unseeded)
        assert counting_kernels["edge"] == 3

    def test_generator_seed_is_not_memoized(self, small_random_hypergraph, counting_kernels):
        import numpy as np

        engine = MotifEngine(small_random_hypergraph)
        rng = np.random.default_rng(0)
        spec = CountSpec(algorithm="mochy-a", num_samples=8, seed=rng)
        engine.count(spec)
        engine.count(spec)
        assert counting_kernels["edge"] == 2

    def test_mutating_returned_counts_does_not_poison_cache(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        first = engine.count()
        expected = first.counts.to_array()
        first.counts.increment(1, 1000.0)
        assert engine.count().counts.to_array().tolist() == expected.tolist()

    def test_memo_hit_reports_zero_timings(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        first = engine.count()
        hit = engine.count()
        assert not first.from_cache
        assert hit.from_cache
        assert hit.projection_seconds == 0.0
        assert hit.counting_seconds == 0.0
        assert hit.projection_cached

    def test_mutating_hyperwedges_does_not_poison_sampling(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        wedges = engine.hyperwedges()
        wedges.clear()
        spec = CountSpec(algorithm="mochy-a+", num_samples=6, seed=0)
        assert engine.count(spec).counts == MotifEngine(
            small_random_hypergraph
        ).count(spec).counts

    def test_profile_reuses_memoized_exact_count(self, small_random_hypergraph, counting_project):
        engine = MotifEngine(small_random_hypergraph)
        exact = engine.count()
        result = engine.profile(ProfileSpec(num_random=2, seed=0))
        assert result.profile.real_counts == exact.counts

    def test_profile_and_compare_share_null_counts(self, small_random_hypergraph, monkeypatch):
        import repro.api.engine as em

        calls = {"null": 0}
        real = em.random_motif_counts

        def wrapper(*args, **kwargs):
            calls["null"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(em, "random_motif_counts", wrapper)
        engine = MotifEngine(small_random_hypergraph)
        profile = engine.profile(ProfileSpec(num_random=2, seed=0))
        compare = engine.compare(CompareSpec(num_random=2, seed=0))
        assert calls["null"] == 1
        motif = profile.profile.random_counts
        assert compare.report.rows[0].random_count == pytest.approx(motif[1])


class TestCountSpecValidation:
    def test_samples_and_ratio_conflict(self):
        with pytest.raises(CountSpecError):
            CountSpec(algorithm="mochy-a", num_samples=5, sampling_ratio=0.1)

    def test_conflict_is_also_a_sampling_error(self):
        with pytest.raises(SamplingError):
            CountSpec(algorithm="mochy-a", num_samples=5, sampling_ratio=0.1)

    def test_unknown_algorithm(self):
        with pytest.raises(SamplingError):
            CountSpec(algorithm="mochy-x")

    def test_aliases_resolve_at_construction(self):
        assert CountSpec(algorithm="MoCHy-A+").algorithm == "wedge-sampling"
        assert CountSpec(algorithm="mochy-e").algorithm == "exact"

    @pytest.mark.parametrize("samples", [0, -5, 2.5])
    def test_invalid_samples(self, samples):
        with pytest.raises(CountSpecError):
            CountSpec(algorithm="mochy-a", num_samples=samples)

    def test_invalid_ratio(self):
        with pytest.raises(CountSpecError):
            CountSpec(algorithm="mochy-a", sampling_ratio=-0.2)

    def test_invalid_workers(self):
        with pytest.raises(CountSpecError):
            CountSpec(num_workers=0)

    def test_unknown_projection_mode(self):
        with pytest.raises(CountSpecError):
            CountSpec(projection="eager")

    def test_budget_requires_lazy(self):
        with pytest.raises(CountSpecError):
            CountSpec(budget=10)

    def test_negative_budget(self):
        with pytest.raises(CountSpecError):
            CountSpec(projection="lazy", budget=-1)

    def test_unknown_policy(self):
        with pytest.raises(CountSpecError):
            CountSpec(projection="lazy", policy="mru")

    def test_exact_normalizes_sampling_fields(self):
        spec = CountSpec(algorithm="exact", sampling_ratio=0.5, seed=7)
        assert spec.sampling_ratio is None
        assert spec.seed is None
        assert spec.is_exact

    def test_exact_lazy_random_policy_keeps_seed(self):
        spec = CountSpec(projection="lazy", policy="random", budget=3, seed=7)
        assert spec.seed == 7

    def test_lazy_rejects_parallel_workers(self):
        with pytest.raises(CountSpecError):
            CountSpec(projection="lazy", num_workers=2)

    def test_policy_requires_lazy(self):
        with pytest.raises(CountSpecError):
            CountSpec(policy="lru")


class TestOtherSpecValidation:
    def test_profile_num_random_positive(self):
        with pytest.raises(SpecError):
            ProfileSpec(num_random=0)

    def test_profile_unknown_null_model(self):
        with pytest.raises(SpecError):
            ProfileSpec(null_model="shuffle")

    def test_profile_negative_epsilon(self):
        with pytest.raises(SpecError):
            ProfileSpec(epsilon=-1)

    def test_compare_validates_ratio(self):
        with pytest.raises(SpecError):
            CompareSpec(sampling_ratio=0)

    def test_predict_window_pairs(self):
        with pytest.raises(SpecError):
            PredictSpec(context_start=1)
        with pytest.raises(SpecError):
            PredictSpec(context_start=2, context_end=1, test_start=3, test_end=3)
        with pytest.raises(SpecError):
            PredictSpec(context_start=1, context_end=2)

    def test_predict_replace_fraction_range(self):
        with pytest.raises(SpecError):
            PredictSpec(replace_fraction=1.5)

    def test_predict_max_positives_positive(self):
        with pytest.raises(SpecError):
            PredictSpec(max_positives=0)


class TestLazyProjection:
    def test_lazy_exact_matches_full(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        full = engine.count()
        lazy = engine.count(CountSpec(projection="lazy", budget=4))
        assert lazy.counts == full.counts
        assert lazy.projection_mode == "lazy"

    def test_lazy_edge_sampling_matches_full_at_seed(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        spec_full = CountSpec(algorithm="mochy-a", num_samples=12, seed=3)
        spec_lazy = CountSpec(
            algorithm="mochy-a", num_samples=12, seed=3, projection="lazy", budget=4
        )
        assert engine.count(spec_full).counts == engine.count(spec_lazy).counts

    def test_lazy_wedge_sampling_runs(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        result = engine.count(
            CountSpec(
                algorithm="mochy-a+", sampling_ratio=0.3, seed=0,
                projection="lazy", budget=3,
            )
        )
        assert result.num_samples >= 1
        assert result.counts.total() >= 0.0

    def test_lazy_never_builds_full_projection(self, small_random_hypergraph, counting_project):
        engine = MotifEngine(small_random_hypergraph)
        engine.count(CountSpec(projection="lazy", budget=2))
        assert counting_project == []
        assert engine.num_projection_builds == 0

    def test_lazy_wedge_list_enumerated_once(self, small_random_hypergraph, monkeypatch):
        from repro.projection.lazy import LazyProjection

        calls = {"n": 0}
        real = LazyProjection.hyperwedge_list

        def wrapper(self):
            calls["n"] += 1
            return real(self)

        monkeypatch.setattr(LazyProjection, "hyperwedge_list", wrapper)
        engine = MotifEngine(small_random_hypergraph)
        first = engine.count(
            CountSpec(algorithm="mochy-a+", num_samples=6, seed=0, projection="lazy")
        )
        second = engine.count(
            CountSpec(algorithm="mochy-a+", num_samples=6, seed=1, projection="lazy")
        )
        assert calls["n"] == 1
        assert first.num_samples == second.num_samples == 6


class TestResults:
    def test_count_result_json_round_trip(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        result = engine.count()
        payload = json.loads(result.to_json())
        assert payload["kind"] == "count"
        assert payload["algorithm"] == "exact"
        assert payload["dataset"] == small_random_hypergraph.name
        assert len(payload["counts"]) == NUM_MOTIFS
        assert payload["total"] == pytest.approx(result.counts.total())

    def test_profile_result_json(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        result = engine.profile(ProfileSpec(num_random=2, seed=0))
        payload = json.loads(result.to_json())
        assert payload["kind"] == "profile"
        assert len(payload["values"]) == NUM_MOTIFS
        assert len(payload["significances"]) == NUM_MOTIFS
        assert payload["num_random"] == 2

    def test_compare_result_json(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        result = engine.compare(CompareSpec(num_random=2, seed=0))
        payload = json.loads(result.to_json())
        assert payload["kind"] == "compare"
        assert len(payload["rows"]) == NUM_MOTIFS
        row = payload["rows"][0]
        assert set(row) == {
            "motif", "real_count", "random_count", "real_rank",
            "random_rank", "rank_difference", "relative_count",
        }

    def test_count_result_matches_legacy_entrypoint(self, small_random_hypergraph):
        engine = MotifEngine(small_random_hypergraph)
        spec = CountSpec(algorithm="mochy-a+", num_samples=9, seed=4)
        legacy = count_motifs(
            small_random_hypergraph, algorithm="mochy-a+", num_samples=9, seed=4
        )
        assert engine.count(spec).counts == legacy


class TestRegistry:
    def test_load_registered_name(self):
        hypergraph = load("contact-primary-like", scale=0.3)
        assert hypergraph.num_hyperedges > 0
        assert hypergraph.name == "contact-primary-like"

    def test_load_plain_file(self, tmp_path, small_random_hypergraph):
        path = tmp_path / "h.txt"
        hio.write_plain(small_random_hypergraph, path)
        assert load(path).num_hyperedges == small_random_hypergraph.num_hyperedges

    def test_load_json_file(self, tmp_path, small_random_hypergraph):
        path = tmp_path / "h.json"
        hio.write_json(small_random_hypergraph, path)
        assert load(path).num_hyperedges == small_random_hypergraph.num_hyperedges

    def test_load_unknown_source(self):
        with pytest.raises(DatasetError):
            load("definitely-not-a-dataset")

    def test_load_rejects_scale_for_files(self, tmp_path, small_random_hypergraph):
        path = tmp_path / "h.txt"
        hio.write_plain(small_random_hypergraph, path)
        with pytest.raises(DatasetError):
            load(path, scale=0.5)

    def test_custom_registry(self):
        registry = DatasetRegistry()
        registry.register(
            "tiny", lambda scale: Hypergraph([{1, 2}, {2, 3}], name="tiny"),
            domain="demo",
        )
        assert "tiny" in registry
        assert registry.domain("tiny") == "demo"
        assert registry.load("tiny").num_hyperedges == 2
        with pytest.raises(DatasetError):
            registry.register("tiny", lambda scale: None)

    def test_engine_load_by_name(self):
        engine = MotifEngine.load("contact-primary-like", scale=0.3)
        assert engine.name == "contact-primary-like"
        assert engine.count().counts.total() >= 0.0


class TestTemporalEngine:
    def test_predict_requires_temporal(self, small_random_hypergraph):
        with pytest.raises(SpecError):
            MotifEngine(small_random_hypergraph).predict()

    def test_predict_default_windows(self):
        temporal = generate_temporal_coauthorship(
            num_years=4, initial_authors=120, initial_papers=80, seed=5
        )
        years = temporal.timestamps()
        engine = MotifEngine(temporal)
        result = engine.predict(PredictSpec(max_positives=30, seed=0))
        assert result.context_window == (years[0], years[-2])
        assert result.test_window == (years[-1], years[-1])
        payload = json.loads(result.to_json())
        assert payload["kind"] == "predict"
        assert payload["scores"]
        for score in payload["scores"]:
            assert 0.0 <= score["accuracy"] <= 1.0
            assert 0.0 <= score["auc"] <= 1.0

    def test_predict_honors_classifier_configuration(self):
        from repro.ml import RandomForestClassifier

        temporal = generate_temporal_coauthorship(
            num_years=3, initial_authors=80, initial_papers=50, seed=2
        )
        engine = MotifEngine(temporal)
        spec = PredictSpec(max_positives=20, seed=0)
        rows_a = engine.predict(
            spec, classifiers={"rf": RandomForestClassifier(num_trees=5, seed=3)}
        ).as_rows()
        rows_b = engine.predict(
            spec, classifiers={"rf": RandomForestClassifier(num_trees=5, seed=3)}
        ).as_rows()
        # The seeded template is cloned, not rebuilt with defaults, so two
        # identically-configured runs are deterministic.
        assert rows_a == rows_b

    def test_static_workflows_on_temporal_engine(self):
        temporal = generate_temporal_coauthorship(
            num_years=3, initial_authors=80, initial_papers=50, seed=2
        )
        engine = MotifEngine(temporal)
        years = temporal.timestamps()
        expected = count_exact(temporal.window(years[0], years[-1]))
        assert engine.count().counts == expected

    def test_engine_rejects_other_types(self):
        with pytest.raises(SpecError):
            MotifEngine([[1, 2], [2, 3]])


class TestLegacyShims:
    def test_run_counting_matches_engine(self, small_random_hypergraph):
        from repro.counting import run_counting

        run = run_counting(small_random_hypergraph, algorithm="mochy-a", num_samples=7, seed=2)
        direct = MotifEngine(small_random_hypergraph).count(
            CountSpec(algorithm="mochy-a", num_samples=7, seed=2)
        )
        assert run.counts == direct.counts
        assert run.algorithm == direct.algorithm
        assert run.num_samples == direct.num_samples

    def test_characteristic_profile_matches_engine(self, small_random_hypergraph):
        from repro.profile import characteristic_profile

        legacy = characteristic_profile(small_random_hypergraph, num_random=2, seed=0)
        direct = MotifEngine(small_random_hypergraph).profile(
            ProfileSpec(num_random=2, seed=0)
        ).profile
        assert (legacy.values == direct.values).all()

    def test_real_vs_random_matches_engine(self, small_random_hypergraph):
        from repro.analysis import real_vs_random

        legacy = real_vs_random(small_random_hypergraph, num_random=2, seed=0)
        direct = MotifEngine(small_random_hypergraph).compare(
            CompareSpec(num_random=2, seed=0)
        ).report
        assert legacy.rows == direct.rows


class TestSpecSerialization:
    """spec_to_dict/spec_from_dict — the wire format of the serving layer."""

    @pytest.mark.parametrize(
        "spec",
        [
            CountSpec(),
            CountSpec(algorithm="mochy-a+", num_samples=40, seed=7),
            CountSpec(projection="lazy", budget=10, policy="lru"),
            ProfileSpec(num_random=3, seed=0),
            CompareSpec(num_random=2, seed=1, null_model="slot-fill"),
            PredictSpec(max_positives=5, seed=2),
        ],
    )
    def test_round_trip_is_identity(self, spec):
        from repro.api import spec_from_dict, spec_to_dict

        payload = spec_to_dict(spec)
        assert spec_from_dict(payload) == spec
        # The payload of a replayable spec is JSON-serializable end to end.
        assert spec_from_dict(json.loads(json.dumps(payload))) == spec

    def test_type_defaults_to_count(self):
        from repro.api import spec_from_dict

        assert spec_from_dict({}) == CountSpec()
        assert spec_from_dict({"algorithm": "mochy-a", "num_samples": 5}) == CountSpec(
            algorithm="mochy-a", num_samples=5
        )

    def test_unknown_type_and_fields_are_rejected(self):
        from repro.api import spec_from_dict

        with pytest.raises(SpecError):
            spec_from_dict({"type": "tally"})
        with pytest.raises(SpecError):
            spec_from_dict({"type": "count", "bogus_field": 1})
        with pytest.raises(SpecError):
            spec_from_dict(["not", "a", "mapping"])

    def test_field_validation_still_applies(self):
        from repro.api import spec_from_dict

        with pytest.raises(SpecError):
            spec_from_dict({"type": "profile", "num_random": 0})
