"""Integration tests: the full pipelines of the paper on small synthetic data."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    analyze_domains,
    characteristic_profile,
    count_motifs,
    generate_contact,
    generate_email,
    profile_correlation,
)
from repro.analysis import real_vs_random
from repro.baselines import graph_similarity_matrix, network_motif_profile
from repro.counting import run_counting
from repro.motifs.patterns import NUM_MOTIFS
from repro.profile import domain_separation


@pytest.fixture(scope="module")
def mini_corpus():
    """Four small datasets from two domains (contact, email)."""
    datasets = {
        "contact-a": (
            generate_contact(num_people=60, num_interactions=150, seed=1, name="contact-a"),
            "contact",
        ),
        "contact-b": (
            generate_contact(num_people=70, num_interactions=140, seed=2, name="contact-b"),
            "contact",
        ),
        "email-a": (
            generate_email(num_accounts=60, num_messages=150, seed=3, name="email-a"),
            "email",
        ),
        "email-b": (
            generate_email(num_accounts=70, num_messages=140, seed=4, name="email-b"),
            "email",
        ),
    }
    return datasets


@pytest.fixture(scope="module")
def mini_profiles(mini_corpus):
    profiles = []
    domains = []
    for name, (hypergraph, domain) in mini_corpus.items():
        profiles.append(characteristic_profile(hypergraph, num_random=3, seed=0))
        domains.append(domain)
    return profiles, domains


class TestDiscoveryPipeline:
    def test_real_differs_from_random(self, mini_corpus):
        """Q1: real hypergraphs have count distributions distinct from random ones."""
        hypergraph, _ = mini_corpus["contact-a"]
        report = real_vs_random(hypergraph, num_random=3, seed=0)
        assert report.mean_rank_difference() > 0
        relative_counts = [abs(row.relative_count) for row in report.rows]
        assert max(relative_counts) > 0.3

    def test_cps_are_domain_fingerprints(self, mini_profiles):
        """Q2: CPs are similar within domains and less similar across them."""
        profiles, domains = mini_profiles
        separation = domain_separation(profiles, domains)
        assert separation.within_mean > separation.across_mean

    def test_domain_analysis_object(self, mini_profiles, mini_corpus):
        profiles, domains = mini_profiles
        analysis = analyze_domains(profiles, domains)
        names = list(mini_corpus)
        same_domain = analysis.similarity(names[0], names[1])
        cross_domain = analysis.similarity(names[0], names[2])
        assert same_domain > cross_domain

    def test_both_cp_variants_are_computable_and_hmotif_gap_is_positive(
        self, mini_corpus, mini_profiles
    ):
        """Figure 6 ingredients: h-motif and network-motif similarity structures.

        The quantitative comparison of the two gaps is reported by
        ``benchmarks/bench_fig6_similarity_matrices.py`` on the full corpus;
        here we check that the h-motif CPs separate the two domains and that
        the graph-motif baseline produces a well-formed similarity matrix.
        """
        profiles, domains = mini_profiles
        hmotif_gap = domain_separation(profiles, domains).gap
        assert hmotif_gap > 0

        graph_profiles = [
            network_motif_profile(hypergraph, num_random=3, seed=0)
            for hypergraph, _ in mini_corpus.values()
        ]
        matrix = graph_similarity_matrix(graph_profiles)
        assert matrix.shape == (4, 4)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.all(matrix <= 1.0 + 1e-9) and np.all(matrix >= -1.0 - 1e-9)

    def test_profiles_have_unit_norm(self, mini_profiles):
        profiles, _ = mini_profiles
        for profile in profiles:
            assert np.linalg.norm(profile.values) == pytest.approx(1.0)
            assert len(profile.values) == NUM_MOTIFS


class TestCountingPipeline:
    def test_approximate_counters_agree_with_exact_on_corpus(self, mini_corpus):
        hypergraph, _ = mini_corpus["email-a"]
        exact = count_motifs(hypergraph, algorithm="mochy-e")
        approx = count_motifs(
            hypergraph, algorithm="mochy-a+", sampling_ratio=0.6, seed=0
        )
        assert approx.relative_error(exact) < 0.35

    def test_cp_estimated_from_samples_matches_exact_cp(self, mini_corpus):
        """Figure 9: CPs estimated by MoCHy-A+ track the exact CPs closely."""
        hypergraph, _ = mini_corpus["contact-b"]
        exact_profile = characteristic_profile(hypergraph, num_random=3, seed=1)
        sampled_profile = characteristic_profile(
            hypergraph,
            num_random=3,
            algorithm="mochy-a+",
            sampling_ratio=0.5,
            seed=1,
        )
        assert profile_correlation(exact_profile.values, sampled_profile.values) > 0.8

    def test_runner_reports_timing(self, mini_corpus):
        hypergraph, _ = mini_corpus["contact-a"]
        run = run_counting(hypergraph, algorithm="mochy-a+", sampling_ratio=0.3, seed=0)
        assert run.total_seconds > 0
        assert run.counts.total() > 0
