"""Tests for the high-level counting runner."""

from __future__ import annotations

import pytest

from repro.counting import (
    ALGORITHM_EDGE_SAMPLING,
    ALGORITHM_EXACT,
    ALGORITHM_WEDGE_SAMPLING,
    count_exact,
    count_motifs,
    resolve_algorithm,
    run_counting,
)
from repro.exceptions import SamplingError
from repro.projection import project


class TestAlgorithmResolution:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("exact", ALGORITHM_EXACT),
            ("MoCHy-E", ALGORITHM_EXACT),
            ("mochy-a", ALGORITHM_EDGE_SAMPLING),
            ("edge-sampling", ALGORITHM_EDGE_SAMPLING),
            ("MoCHy-A+", ALGORITHM_WEDGE_SAMPLING),
            ("wedge-sampling", ALGORITHM_WEDGE_SAMPLING),
        ],
    )
    def test_aliases(self, alias, expected):
        assert resolve_algorithm(alias) == expected

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SamplingError):
            resolve_algorithm("mochy-x")


class TestCountMotifs:
    def test_exact_matches_direct_call(self, small_random_hypergraph):
        assert (
            count_motifs(small_random_hypergraph).to_dict()
            == count_exact(small_random_hypergraph).to_dict()
        )

    def test_sampling_with_ratio(self, medium_random_hypergraph):
        exact = count_exact(medium_random_hypergraph)
        estimate = count_motifs(
            medium_random_hypergraph,
            algorithm="mochy-a+",
            sampling_ratio=0.5,
            seed=0,
        )
        assert estimate.relative_error(exact) < 0.5

    def test_sampling_with_explicit_samples(self, medium_random_hypergraph):
        estimate = count_motifs(
            medium_random_hypergraph,
            algorithm="mochy-a",
            num_samples=30,
            seed=0,
        )
        assert estimate.total() > 0

    def test_both_samples_and_ratio_rejected(self, small_random_hypergraph):
        with pytest.raises(SamplingError):
            count_motifs(
                small_random_hypergraph,
                algorithm="mochy-a",
                num_samples=5,
                sampling_ratio=0.1,
            )

    def test_invalid_ratio_rejected(self, small_random_hypergraph):
        with pytest.raises(SamplingError):
            count_motifs(
                small_random_hypergraph, algorithm="mochy-a", sampling_ratio=-1
            )

    def test_invalid_samples_rejected(self, small_random_hypergraph):
        with pytest.raises(SamplingError):
            count_motifs(small_random_hypergraph, algorithm="mochy-a", num_samples=-5)

    def test_reuses_supplied_projection(self, small_random_hypergraph):
        projection = project(small_random_hypergraph)
        counts = count_motifs(small_random_hypergraph, projection=projection)
        assert counts.total() == count_exact(small_random_hypergraph, projection).total()


class TestRunCounting:
    def test_metadata_for_exact(self, small_random_hypergraph):
        run = run_counting(small_random_hypergraph, algorithm="exact")
        assert run.algorithm == ALGORITHM_EXACT
        assert run.num_samples is None
        assert run.projection_seconds >= 0
        assert run.counting_seconds >= 0
        assert run.total_seconds == pytest.approx(
            run.projection_seconds + run.counting_seconds
        )

    def test_metadata_for_sampling(self, small_random_hypergraph):
        run = run_counting(
            small_random_hypergraph, algorithm="mochy-a+", sampling_ratio=0.2, seed=0
        )
        assert run.algorithm == ALGORITHM_WEDGE_SAMPLING
        assert run.num_samples >= 1

    def test_parallel_exact_through_runner(self, small_random_hypergraph):
        run = run_counting(small_random_hypergraph, algorithm="exact", num_workers=2)
        assert run.counts.to_dict() == count_exact(small_random_hypergraph).to_dict()
