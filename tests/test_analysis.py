"""Tests for the discovery-level analyses (Table 3, domains, evolution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    analyze_domains,
    classify_domain,
    compare_counts,
    format_report,
    leave_one_out_domain_accuracy,
    motif_fraction_evolution,
    per_motif_domain_importance,
    real_vs_random,
)
from repro.generators import generate_temporal_coauthorship
from repro.hypergraph import TemporalHypergraph
from repro.motifs import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.profile import profile_from_counts


class TestRealVsRandom:
    def test_compare_counts_rows(self):
        real = MotifCounts.from_dict({1: 100, 2: 10, 22: 50})
        random = MotifCounts.from_dict({1: 10, 2: 100, 22: 50})
        report = compare_counts(real, random, dataset="demo")
        assert len(report.rows) == NUM_MOTIFS
        row_1 = report.row(1)
        assert row_1.relative_count > 0
        assert report.row(2).relative_count < 0
        assert report.row(22).relative_count == 0
        assert row_1.rank_difference == abs(row_1.real_rank - row_1.random_rank)

    def test_over_and_under_representation_lists(self):
        real = MotifCounts.from_dict({1: 100, 2: 1})
        random = MotifCounts.from_dict({1: 1, 2: 100})
        report = compare_counts(real, random)
        assert report.most_overrepresented(1) == [1]
        assert report.most_underrepresented(1) == [2]

    def test_unknown_motif_row_raises(self):
        report = compare_counts(MotifCounts.zeros(), MotifCounts.zeros())
        with pytest.raises(KeyError):
            report.row(99)

    def test_end_to_end_report(self, medium_random_hypergraph):
        report = real_vs_random(medium_random_hypergraph, num_random=2, seed=0)
        assert report.dataset == medium_random_hypergraph.name
        assert report.mean_rank_difference() >= 0
        text = format_report(report)
        assert "dataset:" in text
        assert len(text.splitlines()) == NUM_MOTIFS + 2


def _make_profile(vector, name):
    values = np.asarray(vector, dtype=float)
    values = values / np.linalg.norm(values)
    base = profile_from_counts(MotifCounts.zeros(), MotifCounts.zeros(), name=name)
    return type(base)(
        name=name,
        values=values,
        significances=values,
        real_counts=MotifCounts.zeros(),
        random_counts=MotifCounts.zeros(),
    )


@pytest.fixture
def labelled_profiles():
    rng = np.random.default_rng(0)
    base_a = np.zeros(NUM_MOTIFS)
    base_a[:5] = 1.0
    base_b = np.zeros(NUM_MOTIFS)
    base_b[10:15] = 1.0
    profiles = [
        _make_profile(base_a + rng.normal(0, 0.05, NUM_MOTIFS), "a1"),
        _make_profile(base_a + rng.normal(0, 0.05, NUM_MOTIFS), "a2"),
        _make_profile(base_b + rng.normal(0, 0.05, NUM_MOTIFS), "b1"),
        _make_profile(base_b + rng.normal(0, 0.05, NUM_MOTIFS), "b2"),
    ]
    domains = ["alpha", "alpha", "beta", "beta"]
    return profiles, domains


class TestDomains:
    def test_analysis_separates_domains(self, labelled_profiles):
        profiles, domains = labelled_profiles
        analysis = analyze_domains(profiles, domains)
        assert analysis.separation.gap > 0.3
        assert analysis.similarity("a1", "a2") > analysis.similarity("a1", "b1")

    def test_classify_domain(self, labelled_profiles):
        profiles, domains = labelled_profiles
        assert classify_domain(profiles[0], profiles[1:], domains[1:]) == "alpha"
        assert classify_domain(profiles[3], profiles[:3], domains[:3]) == "beta"

    def test_leave_one_out_accuracy_is_perfect_on_separable_profiles(
        self, labelled_profiles
    ):
        profiles, domains = labelled_profiles
        assert leave_one_out_domain_accuracy(profiles, domains) == 1.0

    def test_per_motif_importance(self, labelled_profiles):
        profiles, domains = labelled_profiles
        importance = per_motif_domain_importance(profiles, domains)
        assert len(importance) == NUM_MOTIFS
        # Motifs that differ between the two groups score higher than unused ones.
        assert importance[1] > importance[20]

    def test_validation(self, labelled_profiles):
        profiles, domains = labelled_profiles
        with pytest.raises(ValueError):
            analyze_domains(profiles, domains[:2])
        with pytest.raises(ValueError):
            classify_domain(profiles[0], [], [])
        with pytest.raises(ValueError):
            leave_one_out_domain_accuracy(profiles, domains[:1])


class TestEvolution:
    def test_series_structure(self):
        temporal = generate_temporal_coauthorship(
            num_years=4, initial_authors=70, initial_papers=50, seed=1
        )
        series = motif_fraction_evolution(temporal)
        assert len(series.points) <= 4
        assert len(series.timestamps()) == len(series.points)
        for point in series.points:
            assert 0.0 <= point.open_fraction <= 1.0
            assert sum(point.fractions.values()) == pytest.approx(1.0, abs=1e-9) or (
                point.counts.total() == 0
            )
        assert len(series.motif_fraction_series(22)) == len(series.points)
        assert len(series.dominant_motifs(3)) == 3

    def test_open_fraction_trend_direction(self):
        """Rising hub-centred collaboration raises the open-motif fraction (Fig. 7b)."""
        temporal = generate_temporal_coauthorship(
            num_years=6,
            initial_authors=80,
            initial_papers=60,
            initial_team_reuse=0.1,
            final_team_reuse=0.85,
            seed=3,
        )
        series = motif_fraction_evolution(temporal)
        assert series.open_fraction_trend() > 0

    def test_small_snapshots_are_skipped(self):
        temporal = TemporalHypergraph(
            [(2000, [1, 2]), (2001, [1, 2]), (2001, [2, 3]), (2001, [1, 3])]
        )
        series = motif_fraction_evolution(temporal)
        assert series.timestamps() == [2001]

    def test_invalid_motif_series_rejected(self):
        temporal = generate_temporal_coauthorship(
            num_years=3, initial_authors=60, initial_papers=40, seed=0
        )
        series = motif_fraction_evolution(temporal)
        with pytest.raises(ValueError):
            series.motif_fraction_series(0)

    def test_trend_of_short_series_is_zero(self):
        temporal = TemporalHypergraph([(2000, [1, 2]), (2000, [2, 3]), (2000, [1, 3])])
        series = motif_fraction_evolution(temporal)
        assert series.open_fraction_trend() == 0.0
