"""Tests for the approximate counters MoCHy-A and MoCHy-A+."""

from __future__ import annotations

import numpy as np
import pytest

from repro.counting import (
    count_approx_edge_sampling,
    count_approx_wedge_sampling,
    count_exact,
    run_edge_sampling,
    run_wedge_sampling,
)
from repro.exceptions import SamplingError
from repro.hypergraph import Hypergraph
from repro.motifs import MotifCounts
from repro.projection import project


class TestEdgeSampling:
    def test_full_sampling_of_every_edge_is_exact(self, small_random_hypergraph):
        """Sampling each hyperedge exactly once (s = |E|) recovers exact counts.

        With the explicit sample equal to the full hyperedge set, every
        instance is counted exactly three times and the 1/(3s/|E|) = 1/3
        rescaling makes the estimate exact.
        """
        projection = project(small_random_hypergraph)
        exact = count_exact(small_random_hypergraph, projection)
        num_edges = small_random_hypergraph.num_hyperedges
        estimate = count_approx_edge_sampling(
            small_random_hypergraph,
            num_samples=num_edges,
            projection=projection,
            sampled_indices=list(range(num_edges)),
        )
        assert estimate.to_dict() == pytest.approx(exact.to_dict())

    def test_estimates_are_close_on_average(self, medium_random_hypergraph):
        projection = project(medium_random_hypergraph)
        exact = count_exact(medium_random_hypergraph, projection)
        estimates = [
            count_approx_edge_sampling(
                medium_random_hypergraph, num_samples=60, projection=projection, seed=seed
            )
            for seed in range(15)
        ]
        mean = MotifCounts.mean(estimates)
        assert mean.relative_error(exact) < 0.25

    def test_metadata(self, small_random_hypergraph):
        result = run_edge_sampling(small_random_hypergraph, num_samples=5, seed=0)
        assert result.num_samples == 5
        assert result.raw_increments >= 0

    def test_invalid_sample_count(self, small_random_hypergraph):
        with pytest.raises(ValueError):
            count_approx_edge_sampling(small_random_hypergraph, num_samples=0)

    def test_empty_hypergraph_rejected(self):
        with pytest.raises(SamplingError):
            count_approx_edge_sampling(Hypergraph([]), num_samples=5)

    def test_explicit_sample_length_mismatch(self, small_random_hypergraph):
        with pytest.raises(SamplingError):
            count_approx_edge_sampling(
                small_random_hypergraph, num_samples=3, sampled_indices=[0]
            )

    def test_seed_reproducibility(self, small_random_hypergraph):
        first = count_approx_edge_sampling(small_random_hypergraph, 20, seed=42)
        second = count_approx_edge_sampling(small_random_hypergraph, 20, seed=42)
        assert first == second


class TestWedgeSampling:
    def test_full_sampling_of_every_wedge_is_exact(self, small_random_hypergraph):
        """Sampling each hyperwedge exactly once (r = |∧|) recovers exact counts."""
        projection = project(small_random_hypergraph)
        exact = count_exact(small_random_hypergraph, projection)
        wedges = projection.hyperwedge_list()
        estimate = count_approx_wedge_sampling(
            small_random_hypergraph,
            num_samples=len(wedges),
            projection=projection,
            hyperwedges=wedges,
            sampled_wedges=wedges,
        )
        assert estimate.to_dict() == pytest.approx(exact.to_dict())

    def test_estimates_are_close_on_average(self, medium_random_hypergraph):
        projection = project(medium_random_hypergraph)
        exact = count_exact(medium_random_hypergraph, projection)
        estimates = [
            count_approx_wedge_sampling(
                medium_random_hypergraph, num_samples=80, projection=projection, seed=seed
            )
            for seed in range(15)
        ]
        mean = MotifCounts.mean(estimates)
        assert mean.relative_error(exact) < 0.25

    def test_wedge_sampling_beats_edge_sampling_at_equal_ratio(
        self, medium_random_hypergraph
    ):
        """MoCHy-A+ has lower error than MoCHy-A at the same sampling ratio (Sec. 3.3).

        Compared over several trials to keep the test robust to sampling noise.
        """
        projection = project(medium_random_hypergraph)
        exact = count_exact(medium_random_hypergraph, projection)
        ratio = 0.3
        num_edges = medium_random_hypergraph.num_hyperedges
        num_wedges = projection.num_hyperwedges
        edge_errors = []
        wedge_errors = []
        for seed in range(12):
            edge_estimate = count_approx_edge_sampling(
                medium_random_hypergraph,
                num_samples=max(1, int(ratio * num_edges)),
                projection=projection,
                seed=seed,
            )
            wedge_estimate = count_approx_wedge_sampling(
                medium_random_hypergraph,
                num_samples=max(1, int(ratio * num_wedges)),
                projection=projection,
                seed=seed,
            )
            edge_errors.append(edge_estimate.relative_error(exact))
            wedge_errors.append(wedge_estimate.relative_error(exact))
        assert np.mean(wedge_errors) < np.mean(edge_errors)

    def test_metadata(self, small_random_hypergraph):
        result = run_wedge_sampling(small_random_hypergraph, num_samples=5, seed=0)
        assert result.num_samples == 5
        assert result.num_hyperwedges == project(small_random_hypergraph).num_hyperwedges

    def test_no_hyperwedges_rejected(self):
        hypergraph = Hypergraph([[1, 2], [3, 4], [5, 6]])
        with pytest.raises(SamplingError):
            count_approx_wedge_sampling(hypergraph, num_samples=5)

    def test_explicit_sample_length_mismatch(self, small_random_hypergraph):
        with pytest.raises(SamplingError):
            count_approx_wedge_sampling(
                small_random_hypergraph, num_samples=2, sampled_wedges=[(0, 1)]
            )

    def test_seed_reproducibility(self, small_random_hypergraph):
        first = count_approx_wedge_sampling(small_random_hypergraph, 20, seed=3)
        second = count_approx_wedge_sampling(small_random_hypergraph, 20, seed=3)
        assert first == second


class TestUnbiasedness:
    """Monte-Carlo unbiasedness checks (Theorems 2 and 4)."""

    def test_edge_sampling_mean_converges_to_exact(self, small_random_hypergraph):
        projection = project(small_random_hypergraph)
        exact = count_exact(small_random_hypergraph, projection)
        estimates = [
            count_approx_edge_sampling(
                small_random_hypergraph, num_samples=10, projection=projection, seed=seed
            )
            for seed in range(200)
        ]
        mean = MotifCounts.mean(estimates)
        assert mean.relative_error(exact) < 0.1

    def test_wedge_sampling_mean_converges_to_exact(self, small_random_hypergraph):
        projection = project(small_random_hypergraph)
        exact = count_exact(small_random_hypergraph, projection)
        estimates = [
            count_approx_wedge_sampling(
                small_random_hypergraph, num_samples=10, projection=projection, seed=seed
            )
            for seed in range(200)
        ]
        mean = MotifCounts.mean(estimates)
        assert mean.relative_error(exact) < 0.1
