"""Reading and writing hypergraphs.

Three on-disk formats are supported:

``plain``
    One hyperedge per line; node labels separated by whitespace (or a custom
    delimiter). This matches the format published with the MoCHy reference
    implementation.

``json``
    ``{"name": ..., "hyperedges": [[...], ...]}`` — convenient for small
    fixtures and round-tripping arbitrary (string) node labels.

``benson``
    The three-file simplex format of Benson et al. (nverts / simplices /
    times), which is how the paper's 11 datasets are distributed. The *times*
    file is optional; when present a :class:`TemporalHypergraph` can be built.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import DatasetError
from repro.hypergraph.builders import TemporalHypergraph
from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, Path]


# --------------------------------------------------------------------- plain
def write_plain(hypergraph: Hypergraph, path: PathLike, delimiter: str = " ") -> None:
    """Write one hyperedge per line, node labels joined by *delimiter*."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for edge in hypergraph.hyperedges():
            labels = sorted(str(node) for node in edge)
            handle.write(delimiter.join(labels))
            handle.write("\n")


def read_plain(
    path: PathLike,
    delimiter: Optional[str] = None,
    name: Optional[str] = None,
    node_type: type = str,
) -> Hypergraph:
    """Read a plain hyperedge-per-line file.

    Parameters
    ----------
    delimiter:
        ``None`` splits on arbitrary whitespace (like ``str.split``).
    node_type:
        Callable applied to each token, e.g. ``int`` for integer node ids.
    """
    path = Path(path)
    return Hypergraph(
        _read_plain_edges(path, delimiter, node_type), name=name or path.stem
    )


def read_plain_temporal(
    path: PathLike,
    times_path: Optional[PathLike] = None,
    delimiter: Optional[str] = None,
    name: Optional[str] = None,
    node_type: type = str,
) -> TemporalHypergraph:
    """Read a plain hyperedge file with a line-aligned timestamp sidecar.

    *times_path* defaults to ``<stem>-times.txt`` next to *path* (the same
    naming the Benson format uses): line *i* of the sidecar is the integer
    timestamp of hyperedge *i*.
    """
    path = Path(path)
    if times_path is None:
        times_path = path.with_name(f"{path.stem}-times.txt")
    times_path = Path(times_path)
    if not times_path.is_file():
        raise DatasetError(f"{path}: no timestamp sidecar {times_path.name} found")
    edges = _read_plain_edges(path, delimiter, node_type)
    timestamps = _read_int_column(times_path)
    if len(timestamps) != len(edges):
        raise DatasetError(
            f"{path}: {len(timestamps)} timestamps for {len(edges)} hyperedges"
        )
    return TemporalHypergraph(zip(timestamps, edges), name=name or path.stem)


def _read_plain_edges(
    path: Path, delimiter: Optional[str], node_type: type
) -> List[List]:
    edges: List[List] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split(delimiter)
            try:
                edges.append([node_type(token) for token in tokens])
            except ValueError as error:
                raise DatasetError(
                    f"{path}:{line_number}: cannot parse node label: {error}"
                ) from error
    return edges


# ---------------------------------------------------------------------- json
def write_json(hypergraph: Hypergraph, path: PathLike) -> None:
    """Write the hypergraph as a JSON document (labels are stringified)."""
    path = Path(path)
    payload = {
        "name": hypergraph.name,
        "hyperedges": [sorted(str(node) for node in edge) for edge in hypergraph.hyperedges()],
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def read_json(path: PathLike) -> Hypergraph:
    """Read a hypergraph previously written by :func:`write_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if "hyperedges" not in payload:
        raise DatasetError(f"{path}: JSON document lacks a 'hyperedges' key")
    return Hypergraph(payload["hyperedges"], name=payload.get("name", path.stem))


# -------------------------------------------------------------------- benson
def write_benson(
    hypergraph: Hypergraph,
    directory: PathLike,
    prefix: str,
    timestamps: Optional[Sequence[int]] = None,
) -> None:
    """Write the Benson three-file simplex format.

    Produces ``<prefix>-nverts.txt`` and ``<prefix>-simplices.txt`` (and
    ``<prefix>-times.txt`` when *timestamps* is given). Node labels must be
    integers in this format; non-integer labels raise :class:`DatasetError`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if timestamps is not None and len(timestamps) != hypergraph.num_hyperedges:
        raise DatasetError(
            "timestamps must have one entry per hyperedge "
            f"({len(timestamps)} given for {hypergraph.num_hyperedges} hyperedges)"
        )
    nverts_lines: List[str] = []
    simplices_lines: List[str] = []
    for edge in hypergraph.hyperedges():
        members = sorted(edge)
        for node in members:
            if not isinstance(node, int):
                raise DatasetError(
                    "the Benson format requires integer node labels; "
                    f"got {node!r} — relabel with relabel_nodes_to_integers first"
                )
        nverts_lines.append(str(len(members)))
        simplices_lines.extend(str(node) for node in members)
    (directory / f"{prefix}-nverts.txt").write_text(
        "\n".join(nverts_lines) + "\n", encoding="utf-8"
    )
    (directory / f"{prefix}-simplices.txt").write_text(
        "\n".join(simplices_lines) + "\n", encoding="utf-8"
    )
    if timestamps is not None:
        (directory / f"{prefix}-times.txt").write_text(
            "\n".join(str(int(stamp)) for stamp in timestamps) + "\n", encoding="utf-8"
        )


def read_benson(
    directory: PathLike, prefix: str, name: Optional[str] = None
) -> Hypergraph:
    """Read a Benson-format dataset into a :class:`Hypergraph` (ignoring times)."""
    edges, _ = _read_benson_raw(directory, prefix)
    return Hypergraph(edges, name=name or prefix)


def read_benson_temporal(
    directory: PathLike, prefix: str, name: Optional[str] = None
) -> TemporalHypergraph:
    """Read a Benson-format dataset with its times file as a temporal hypergraph."""
    edges, timestamps = _read_benson_raw(directory, prefix)
    if timestamps is None:
        raise DatasetError(
            f"{prefix}: no '{prefix}-times.txt' file found; "
            "use read_benson for static data"
        )
    return TemporalHypergraph(zip(timestamps, edges), name=name or prefix)


def _read_benson_raw(
    directory: PathLike, prefix: str
) -> Tuple[List[List[int]], Optional[List[int]]]:
    directory = Path(directory)
    nverts_path = directory / f"{prefix}-nverts.txt"
    simplices_path = directory / f"{prefix}-simplices.txt"
    times_path = directory / f"{prefix}-times.txt"
    if not nverts_path.exists() or not simplices_path.exists():
        raise DatasetError(
            f"missing {nverts_path.name} or {simplices_path.name} in {directory}"
        )
    nverts = _read_int_column(nverts_path)
    simplices = _read_int_column(simplices_path)
    if sum(nverts) != len(simplices):
        raise DatasetError(
            f"{prefix}: nverts sums to {sum(nverts)} but simplices has "
            f"{len(simplices)} entries"
        )
    edges: List[List[int]] = []
    cursor = 0
    for size in nverts:
        if size <= 0:
            raise DatasetError(f"{prefix}: hyperedge with non-positive size {size}")
        edges.append(simplices[cursor : cursor + size])
        cursor += size
    timestamps: Optional[List[int]] = None
    if times_path.exists():
        timestamps = _read_int_column(times_path)
        if len(timestamps) != len(edges):
            raise DatasetError(
                f"{prefix}: {len(timestamps)} timestamps for {len(edges)} hyperedges"
            )
    return edges, timestamps


def _read_int_column(path: Path) -> List[int]:
    values: List[int] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                values.append(int(line))
            except ValueError as error:
                raise DatasetError(f"{path}:{line_number}: not an integer") from error
    return values
