"""Bipartite (star-expansion) view of a hypergraph.

The paper uses the bipartite incidence graph ``G' = (V ∪ E, {(v, e) : v ∈ e})``
for two purposes:

* as the substrate of the Chung–Lu null model (Section 2.3), and
* as the graph on which the network-motif baseline CP is computed (Figure 6).

:class:`BipartiteIncidenceGraph` stores the incidence explicitly and converts
back and forth between the hypergraph and bipartite views.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph, Node


class BipartiteIncidenceGraph:
    """Star expansion of a hypergraph.

    Left vertices are the hypergraph's nodes, right vertices are hyperedge
    indices, and an undirected edge ``(v, e)`` exists iff ``v ∈ e``.
    """

    def __init__(
        self,
        node_neighbors: Dict[Node, FrozenSet[int]],
        edge_members: Sequence[FrozenSet[Node]],
        name: str = "bipartite",
    ) -> None:
        self._node_neighbors = dict(node_neighbors)
        self._edge_members = list(edge_members)
        self.name = str(name)
        for edge_index, members in enumerate(self._edge_members):
            for node in members:
                if node not in self._node_neighbors:
                    raise HypergraphError(
                        f"edge {edge_index} references node {node!r} missing from "
                        "the node side"
                    )

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_hypergraph(cls, hypergraph: Hypergraph) -> "BipartiteIncidenceGraph":
        """Build the star expansion of *hypergraph*."""
        node_neighbors = {
            node: frozenset(hypergraph.memberships(node))
            for node in hypergraph.nodes()
        }
        edge_members = list(hypergraph.hyperedges())
        return cls(node_neighbors, edge_members, name=f"{hypergraph.name}-bipartite")

    # ----------------------------------------------------------------- queries
    @property
    def num_left(self) -> int:
        """Number of node-side vertices."""
        return len(self._node_neighbors)

    @property
    def num_right(self) -> int:
        """Number of hyperedge-side vertices."""
        return len(self._edge_members)

    @property
    def num_edges(self) -> int:
        """Number of incidences ``|{(v, e) : v ∈ e}| = Σ_e |e|``."""
        return sum(len(members) for members in self._edge_members)

    def left_vertices(self) -> List[Node]:
        """Node-side vertex labels (deterministic order)."""
        return sorted(self._node_neighbors, key=repr)

    def right_vertices(self) -> List[int]:
        """Hyperedge-side vertex indices."""
        return list(range(len(self._edge_members)))

    def node_degree(self, node: Node) -> int:
        """Degree of a node-side vertex (number of hyperedges containing it)."""
        try:
            return len(self._node_neighbors[node])
        except KeyError:
            raise HypergraphError(f"node {node!r} not present") from None

    def edge_degree(self, edge_index: int) -> int:
        """Degree of a hyperedge-side vertex (the hyperedge's size)."""
        if not 0 <= edge_index < len(self._edge_members):
            raise HypergraphError(f"edge index {edge_index} out of range")
        return len(self._edge_members[edge_index])

    def node_neighbors(self, node: Node) -> FrozenSet[int]:
        """Hyperedge indices adjacent to *node*."""
        try:
            return self._node_neighbors[node]
        except KeyError:
            raise HypergraphError(f"node {node!r} not present") from None

    def edge_members(self, edge_index: int) -> FrozenSet[Node]:
        """Nodes adjacent to hyperedge-side vertex *edge_index*."""
        if not 0 <= edge_index < len(self._edge_members):
            raise HypergraphError(f"edge index {edge_index} out of range")
        return self._edge_members[edge_index]

    def incidences(self) -> List[Tuple[Node, int]]:
        """All ``(node, hyperedge index)`` incidence pairs."""
        pairs: List[Tuple[Node, int]] = []
        for edge_index, members in enumerate(self._edge_members):
            pairs.extend((node, edge_index) for node in members)
        return pairs

    def degree_sequences(self) -> Tuple[List[int], List[int]]:
        """``(node-side degrees, hyperedge-side degrees)`` in deterministic orders."""
        node_degrees = [len(self._node_neighbors[node]) for node in self.left_vertices()]
        edge_degrees = [len(members) for members in self._edge_members]
        return node_degrees, edge_degrees

    # ------------------------------------------------------------- conversion
    def to_hypergraph(self, name: str | None = None, drop_empty: bool = True) -> Hypergraph:
        """Convert back to a hypergraph.

        Parameters
        ----------
        drop_empty:
            Randomized bipartite graphs may leave some hyperedge-side vertices
            with no incident nodes; those would be invalid hyperedges and are
            dropped when this flag is set (the default, matching the paper's
            null-model construction).
        """
        edges: List[FrozenSet[Node]] = []
        for members in self._edge_members:
            if members:
                edges.append(members)
            elif not drop_empty:
                raise HypergraphError(
                    "cannot convert: hyperedge-side vertex with no members "
                    "(pass drop_empty=True to skip them)"
                )
        return Hypergraph(edges, name=name or self.name)

    def __repr__(self) -> str:
        return (
            f"BipartiteIncidenceGraph(name={self.name!r}, left={self.num_left}, "
            f"right={self.num_right}, incidences={self.num_edges})"
        )
