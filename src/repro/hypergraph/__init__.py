"""Hypergraph substrate: container, builders, I/O, bipartite view, properties."""

from repro.hypergraph.hypergraph import Hypergraph, Node, Hyperedge
from repro.hypergraph.builders import (
    TemporalHypergraph,
    deduplicate_hyperedges,
    filter_by_size,
    from_hyperedge_list,
    from_node_memberships,
    merge_hypergraphs,
    relabel_nodes_to_integers,
)
from repro.hypergraph.bipartite import BipartiteIncidenceGraph
from repro.hypergraph.properties import (
    HypergraphSummary,
    count_hyperwedges,
    degree_distribution,
    density,
    giant_component_fraction,
    hyperedge_connected_components,
    max_hyperedge_size,
    mean_hyperedge_size,
    mean_node_degree,
    node_connected_components,
    size_distribution,
    summarize,
)
from repro.hypergraph import io

__all__ = [
    "Hypergraph",
    "Node",
    "Hyperedge",
    "TemporalHypergraph",
    "BipartiteIncidenceGraph",
    "HypergraphSummary",
    "io",
    "from_hyperedge_list",
    "from_node_memberships",
    "deduplicate_hyperedges",
    "filter_by_size",
    "relabel_nodes_to_integers",
    "merge_hypergraphs",
    "count_hyperwedges",
    "degree_distribution",
    "size_distribution",
    "max_hyperedge_size",
    "mean_hyperedge_size",
    "mean_node_degree",
    "density",
    "giant_component_fraction",
    "node_connected_components",
    "hyperedge_connected_components",
    "summarize",
]
