"""Structural properties of hypergraphs.

These are the global statistics reported in the paper's Table 2 (numbers of
nodes, hyperedges, maximum hyperedge size, number of hyperwedges) together
with distributions used when validating the null model (node degree and
hyperedge size distributions, Appendix D) and basic connectivity measures.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Node


@dataclass(frozen=True)
class HypergraphSummary:
    """Container for the Table-2 style statistics of one hypergraph."""

    name: str
    num_nodes: int
    num_hyperedges: int
    max_hyperedge_size: int
    mean_hyperedge_size: float
    num_hyperwedges: int

    def as_row(self) -> Tuple[str, int, int, int, float, int]:
        """Tuple representation used by report printers."""
        return (
            self.name,
            self.num_nodes,
            self.num_hyperedges,
            self.max_hyperedge_size,
            self.mean_hyperedge_size,
            self.num_hyperwedges,
        )


def degree_distribution(hypergraph: Hypergraph) -> Dict[int, int]:
    """Histogram ``degree -> number of nodes with that degree``."""
    counts = Counter(hypergraph.degrees().values())
    return dict(sorted(counts.items()))


def size_distribution(hypergraph: Hypergraph) -> Dict[int, int]:
    """Histogram ``hyperedge size -> number of hyperedges of that size``."""
    counts = Counter(hypergraph.hyperedge_sizes())
    return dict(sorted(counts.items()))


def max_hyperedge_size(hypergraph: Hypergraph) -> int:
    """Largest hyperedge size (0 for an empty hypergraph)."""
    sizes = hypergraph.hyperedge_sizes()
    return max(sizes) if sizes else 0


def mean_hyperedge_size(hypergraph: Hypergraph) -> float:
    """Average hyperedge size (0.0 for an empty hypergraph)."""
    sizes = hypergraph.hyperedge_sizes()
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)


def count_hyperwedges(hypergraph: Hypergraph) -> int:
    """Number of hyperwedges ``|∧|`` — unordered pairs of overlapping hyperedges.

    Computed by scanning node memberships, which avoids materializing the
    projected graph; complexity is the same as hypergraph projection.
    """
    seen: Set[Tuple[int, int]] = set()
    for node in hypergraph.nodes():
        members = hypergraph.memberships(node)
        for position, i in enumerate(members):
            for j in members[position + 1 :]:
                pair = (i, j) if i < j else (j, i)
                seen.add(pair)
    return len(seen)


def summarize(hypergraph: Hypergraph) -> HypergraphSummary:
    """Compute the Table-2 style summary of *hypergraph*."""
    return HypergraphSummary(
        name=hypergraph.name,
        num_nodes=hypergraph.num_nodes,
        num_hyperedges=hypergraph.num_hyperedges,
        max_hyperedge_size=max_hyperedge_size(hypergraph),
        mean_hyperedge_size=mean_hyperedge_size(hypergraph),
        num_hyperwedges=count_hyperwedges(hypergraph),
    )


def node_connected_components(hypergraph: Hypergraph) -> List[Set[Node]]:
    """Connected components over nodes (two nodes connect if they share a hyperedge)."""
    unvisited = set(hypergraph.nodes())
    components: List[Set[Node]] = []
    while unvisited:
        start = unvisited.pop()
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in hypergraph.neighbors_of_node(node):
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    return components


def giant_component_fraction(hypergraph: Hypergraph) -> float:
    """Fraction of nodes in the largest connected component (0.0 if no nodes)."""
    if hypergraph.num_nodes == 0:
        return 0.0
    components = node_connected_components(hypergraph)
    largest = max(len(component) for component in components)
    return largest / hypergraph.num_nodes


def hyperedge_connected_components(hypergraph: Hypergraph) -> List[Set[int]]:
    """Connected components over hyperedges (adjacency = shared node)."""
    unvisited = set(range(hypergraph.num_hyperedges))
    components: List[Set[int]] = []
    while unvisited:
        start = unvisited.pop()
        component = {start}
        frontier = deque([start])
        while frontier:
            edge_index = frontier.popleft()
            for neighbor in hypergraph.incident_hyperedges(edge_index):
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    return components


def density(hypergraph: Hypergraph) -> float:
    """Hyperedge-to-node ratio ``|E| / |V|`` (0.0 when there are no nodes)."""
    if hypergraph.num_nodes == 0:
        return 0.0
    return hypergraph.num_hyperedges / hypergraph.num_nodes


def mean_node_degree(hypergraph: Hypergraph) -> float:
    """Average node degree ``Σ_v |E_v| / |V|`` (0.0 when there are no nodes)."""
    if hypergraph.num_nodes == 0:
        return 0.0
    return sum(hypergraph.degrees().values()) / hypergraph.num_nodes
