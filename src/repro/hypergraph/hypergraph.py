"""The :class:`Hypergraph` container.

A hypergraph ``G = (V, E)`` consists of a set of nodes ``V`` and a list of
hyperedges ``E``, each hyperedge being a non-empty subset of ``V``
(paper, Section 2.1). Hyperedges are indexed ``0 .. |E|-1``; the paper's
``e_i`` corresponds to ``hypergraph.hyperedge(i)``.

The container is immutable after construction: all MoCHy algorithms treat the
hypergraph as read-only, and immutability lets us cache derived structures
(node memberships ``E_v``, node/edge index maps) safely.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import (
    EmptyHyperedgeError,
    UnknownHyperedgeError,
    UnknownNodeError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.fastcore.csr import HypergraphCSR

Node = Hashable
Hyperedge = FrozenSet[Node]


def _node_sort_key(node: Node) -> Tuple[str, str]:
    """Deterministic node ordering key: group by type name, then repr.

    Sorting by ``repr`` alone interleaves types by string accident (``10``
    sorts before ``'a'`` or after depending on quoting); grouping by the type
    name first keeps the order stable across type mixes while remaining
    deterministic across runs and platforms.
    """
    return (type(node).__name__, repr(node))


class Hypergraph:
    """An immutable hypergraph with indexed hyperedges.

    Parameters
    ----------
    hyperedges:
        Iterable of node collections. Each becomes one hyperedge; order is
        preserved and defines hyperedge indices. Duplicate *nodes* inside one
        hyperedge collapse (hyperedges are sets); duplicate *hyperedges* are
        kept unless removed explicitly via
        :func:`repro.hypergraph.builders.deduplicate_hyperedges`.
    name:
        Optional human-readable dataset name (used in reports and the CLI).

    Raises
    ------
    EmptyHyperedgeError
        If any supplied hyperedge is empty.
    """

    __slots__ = (
        "_hyperedges",
        "_memberships",
        "_nodes",
        "_name",
        "_node_ids",
        "_csr",
        "_fingerprint",
    )

    def __init__(
        self, hyperedges: Iterable[Iterable[Node]], name: str = "hypergraph"
    ) -> None:
        edges: List[Hyperedge] = []
        memberships: Dict[Node, List[int]] = {}
        for index, raw in enumerate(hyperedges):
            edge = frozenset(raw)
            if not edge:
                raise EmptyHyperedgeError(
                    f"hyperedge at position {index} is empty; hyperedges must "
                    "contain at least one node"
                )
            edges.append(edge)
            for node in edge:
                memberships.setdefault(node, []).append(index)
        self._hyperedges: Tuple[Hyperedge, ...] = tuple(edges)
        self._memberships: Dict[Node, Tuple[int, ...]] = {
            node: tuple(indices) for node, indices in memberships.items()
        }
        # Sorted once; the resulting positions double as the dense node ids of
        # the CSR view, cached so the sort never reruns.
        self._nodes: Tuple[Node, ...] = tuple(
            sorted(self._memberships, key=_node_sort_key)
        )
        self._node_ids: Dict[Node, int] = {
            node: position for position, node in enumerate(self._nodes)
        }
        self._csr: Optional["HypergraphCSR"] = None
        self._fingerprint: Optional[str] = None
        self._name = str(name)

    # ------------------------------------------------------------------ basic
    @property
    def name(self) -> str:
        """Dataset name."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes ``|V|``."""
        return len(self._nodes)

    @property
    def num_hyperedges(self) -> int:
        """Number of hyperedges ``|E|`` (duplicates, if any, count separately)."""
        return len(self._hyperedges)

    def nodes(self) -> Tuple[Node, ...]:
        """All nodes in a deterministic order."""
        return self._nodes

    def hyperedges(self) -> Tuple[Hyperedge, ...]:
        """All hyperedges as frozensets, in index order."""
        return self._hyperedges

    def hyperedge(self, index: int) -> Hyperedge:
        """The hyperedge with the given index (the paper's ``e_index``)."""
        self._check_edge_index(index)
        return self._hyperedges[index]

    def hyperedge_size(self, index: int) -> int:
        """``|e_index|`` — the number of nodes in hyperedge *index*."""
        self._check_edge_index(index)
        return len(self._hyperedges[index])

    def hyperedge_sizes(self) -> List[int]:
        """Sizes of all hyperedges, in index order."""
        return [len(edge) for edge in self._hyperedges]

    # -------------------------------------------------------------- node side
    def has_node(self, node: Node) -> bool:
        """Whether *node* appears in at least one hyperedge."""
        return node in self._memberships

    def memberships(self, node: Node) -> Tuple[int, ...]:
        """Indices of hyperedges containing *node* (the paper's ``E_v``)."""
        try:
            return self._memberships[node]
        except KeyError:
            raise UnknownNodeError(f"node {node!r} is not in the hypergraph") from None

    def degree(self, node: Node) -> int:
        """Node degree ``|E_v|`` — number of hyperedges containing *node*."""
        return len(self.memberships(node))

    def degrees(self) -> Dict[Node, int]:
        """Mapping of every node to its degree."""
        return {node: len(indices) for node, indices in self._memberships.items()}

    def neighbors_of_node(self, node: Node) -> FrozenSet[Node]:
        """Nodes co-appearing with *node* in at least one hyperedge (excluding itself)."""
        result = set()
        for edge_index in self.memberships(node):
            result.update(self._hyperedges[edge_index])
        result.discard(node)
        return frozenset(result)

    # -------------------------------------------------------------- edge side
    def are_adjacent(self, i: int, j: int) -> bool:
        """Whether hyperedges *i* and *j* share at least one node."""
        self._check_edge_index(i)
        self._check_edge_index(j)
        first, second = self._hyperedges[i], self._hyperedges[j]
        if len(first) > len(second):
            first, second = second, first
        return any(node in second for node in first)

    def overlap_size(self, i: int, j: int) -> int:
        """``|e_i ∩ e_j|`` — the hyperwedge weight ω(∧_ij) when positive."""
        self._check_edge_index(i)
        self._check_edge_index(j)
        return len(self._hyperedges[i] & self._hyperedges[j])

    def incident_hyperedges(self, i: int) -> FrozenSet[int]:
        """Indices of hyperedges adjacent to hyperedge *i* (the paper's ``N_{e_i}``).

        Computed from node memberships; for repeated queries prefer building a
        :class:`repro.projection.ProjectedGraph`, which caches the adjacency.
        """
        self._check_edge_index(i)
        result = set()
        for node in self._hyperedges[i]:
            result.update(self._memberships[node])
        result.discard(i)
        return frozenset(result)

    # -------------------------------------------------------------- fast core
    def node_id(self, node: Node) -> int:
        """Dense integer id of *node* (its position in :meth:`nodes`)."""
        try:
            return self._node_ids[node]
        except KeyError:
            raise UnknownNodeError(f"node {node!r} is not in the hypergraph") from None

    def csr(self) -> "HypergraphCSR":
        """The CSR (array-native) view of this hypergraph.

        Built lazily on first use and cached; immutability makes the cache
        safe. All fast counting/projection kernels consume this view — the
        frozenset API stays available for everything else.
        """
        if self._csr is None:
            from repro.fastcore.csr import build_csr

            self._csr = build_csr(self._hyperedges, self._node_ids)
        return self._csr

    def fingerprint(self) -> str:
        """Stable content hash of this hypergraph (cached after first use).

        Computed from the canonical CSR layout, so it identifies the content
        independently of the dataset name, the load path, or node label
        values — but *not* of hyperedge order, which indexes every derived
        artifact. This is the key the persistent artifact store
        (:mod:`repro.store`) files projections, counts and profiles under.
        """
        if self._fingerprint is None:
            from repro.store.fingerprint import csr_fingerprint

            self._fingerprint = csr_fingerprint(self.csr())
        return self._fingerprint

    # --------------------------------------------------------------- pickling
    def __getstate__(self) -> Tuple[Tuple[Hyperedge, ...], str]:
        # Ship only the defining data; derived structures (memberships, node
        # ids, the cached CSR view) are rebuilt on the receiving side.
        return (self._hyperedges, self._name)

    def __setstate__(self, state: Tuple[Tuple[Hyperedge, ...], str]) -> None:
        hyperedges, name = state
        self.__init__(hyperedges, name=name)

    # -------------------------------------------------------------- iteration
    def __iter__(self) -> Iterator[Hyperedge]:
        return iter(self._hyperedges)

    def __len__(self) -> int:
        return len(self._hyperedges)

    def __contains__(self, node: Node) -> bool:
        return node in self._memberships

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._hyperedges == other._hyperedges

    def __hash__(self) -> int:
        return hash(self._hyperedges)

    def __repr__(self) -> str:
        return (
            f"Hypergraph(name={self._name!r}, num_nodes={self.num_nodes}, "
            f"num_hyperedges={self.num_hyperedges})"
        )

    # ------------------------------------------------------------- derivation
    def restricted_to_hyperedges(
        self, indices: Sequence[int], name: str | None = None
    ) -> "Hypergraph":
        """A new hypergraph containing only the hyperedges at *indices* (re-indexed)."""
        for index in indices:
            self._check_edge_index(index)
        return Hypergraph(
            (self._hyperedges[index] for index in indices),
            name=name or f"{self._name}[subset]",
        )

    def with_name(self, name: str) -> "Hypergraph":
        """A copy of this hypergraph under a different dataset name."""
        return Hypergraph(self._hyperedges, name=name)

    # --------------------------------------------------------------- internal
    def _check_edge_index(self, index: int) -> None:
        if not isinstance(index, int):
            raise TypeError(f"hyperedge index must be an int, got {type(index).__name__}")
        if not 0 <= index < len(self._hyperedges):
            raise UnknownHyperedgeError(
                f"hyperedge index {index} out of range [0, {len(self._hyperedges)})"
            )
