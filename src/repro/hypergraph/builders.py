"""Constructors and transformations for :class:`~repro.hypergraph.Hypergraph`.

These helpers mirror the preprocessing the paper applies to its datasets:
removing duplicated hyperedges (Table 2 is computed "after removing duplicated
hyperedges"), restricting to hyperedges of bounded size, relabelling nodes to
contiguous integers, and slicing temporal data into yearly snapshots
(Section 4.4).
"""

from __future__ import annotations

import hashlib
import json
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import DatasetError
from repro.hypergraph.hypergraph import Hypergraph, Node, _node_sort_key


def from_hyperedge_list(
    hyperedges: Iterable[Iterable[Node]], name: str = "hypergraph"
) -> Hypergraph:
    """Build a hypergraph from an iterable of node collections."""
    return Hypergraph(hyperedges, name=name)


def _unique(edges: List[frozenset]) -> List[frozenset]:
    """Keep the first occurrence of each distinct hyperedge."""
    seen = set()
    result: List[frozenset] = []
    for edge in edges:
        if edge not in seen:
            seen.add(edge)
            result.append(edge)
    return result


def deduplicate_hyperedges(hypergraph: Hypergraph, name: str | None = None) -> Hypergraph:
    """Remove duplicated hyperedges, keeping the first occurrence of each.

    The paper removes duplicated hyperedges before computing dataset statistics
    and motif counts (Table 2).
    """
    seen = set()
    kept: List[frozenset] = []
    for edge in hypergraph.hyperedges():
        if edge not in seen:
            seen.add(edge)
            kept.append(edge)
    return Hypergraph(kept, name=name or hypergraph.name)


def filter_by_size(
    hypergraph: Hypergraph,
    min_size: int = 1,
    max_size: int | None = None,
    name: str | None = None,
) -> Hypergraph:
    """Keep only hyperedges whose size lies in ``[min_size, max_size]``."""
    if min_size < 1:
        raise ValueError(f"min_size must be at least 1, got {min_size}")
    if max_size is not None and max_size < min_size:
        raise ValueError(
            f"max_size ({max_size}) must be >= min_size ({min_size})"
        )
    kept = [
        edge
        for edge in hypergraph.hyperedges()
        if len(edge) >= min_size and (max_size is None or len(edge) <= max_size)
    ]
    return Hypergraph(kept, name=name or hypergraph.name)


def relabel_nodes_to_integers(
    hypergraph: Hypergraph,
) -> Tuple[Hypergraph, Dict[Node, int]]:
    """Relabel nodes to ``0 .. |V|-1`` and return the new hypergraph plus the mapping."""
    mapping: Dict[Node, int] = {
        node: index for index, node in enumerate(hypergraph.nodes())
    }
    relabelled = Hypergraph(
        ([mapping[node] for node in edge] for edge in hypergraph.hyperedges()),
        name=hypergraph.name,
    )
    return relabelled, mapping


def from_node_memberships(
    memberships: Mapping[Node, Iterable[int]], name: str = "hypergraph"
) -> Hypergraph:
    """Build a hypergraph from a ``node -> hyperedge indices`` mapping.

    The inverse view of :meth:`Hypergraph.memberships`; useful when data comes
    as an affiliation table (e.g. author -> papers).
    """
    edges: Dict[int, set] = defaultdict(set)
    for node, edge_indices in memberships.items():
        for edge_index in edge_indices:
            edges[int(edge_index)].add(node)
    if not edges:
        return Hypergraph([], name=name)
    ordered_indices = sorted(edges)
    return Hypergraph((edges[index] for index in ordered_indices), name=name)


def merge_hypergraphs(
    hypergraphs: Sequence[Hypergraph], name: str = "merged"
) -> Hypergraph:
    """Concatenate the hyperedge lists of several hypergraphs (nodes are shared by label)."""
    edges: List[Iterable[Node]] = []
    for hypergraph in hypergraphs:
        edges.extend(hypergraph.hyperedges())
    return Hypergraph(edges, name=name)


class TemporalHypergraph:
    """A hypergraph whose hyperedges carry integer timestamps.

    Used for the co-authorship evolution study (paper Figure 7): the dataset is
    sliced into per-year hypergraphs and motif fractions are tracked over time.
    """

    def __init__(
        self,
        timestamped_hyperedges: Iterable[Tuple[int, Iterable[Node]]],
        name: str = "temporal-hypergraph",
    ) -> None:
        pairs: List[Tuple[int, frozenset]] = []
        for timestamp, edge in timestamped_hyperedges:
            members = frozenset(edge)
            if not members:
                raise DatasetError("temporal hyperedges must be non-empty")
            pairs.append((int(timestamp), members))
        # Canonical order: timestamp, then a deterministic key over the
        # members. A timestamp-only (stable) sort would leave same-stamp
        # hyperedges in construction order, making fingerprint() and every
        # snapshot/window/cumulative slice depend on how the input iterable
        # happened to be arranged — identical temporal datasets would hash
        # and slice differently. The canonical order also makes cumulative
        # chains append-only: cumulative(t2)'s edge list extends
        # cumulative(t1)'s, which is what the incremental delta engine
        # (repro.fastcore.delta) relies on.
        self._pairs = sorted(
            pairs,
            key=lambda pair: (
                pair[0],
                sorted(_node_sort_key(node) for node in pair[1]),
            ),
        )
        self.name = str(name)
        self._fingerprint: Optional[str] = None

    @property
    def num_hyperedges(self) -> int:
        """Total number of timestamped hyperedges."""
        return len(self._pairs)

    def timestamps(self) -> List[int]:
        """Sorted list of distinct timestamps present in the data."""
        return sorted({timestamp for timestamp, _ in self._pairs})

    def fingerprint(self) -> str:
        """Stable content hash of the timestamped hyperedge sequence.

        Unlike the static :meth:`Hypergraph.fingerprint` (which hashes the
        label-free canonical CSR of a window), this keys artifacts of the
        *temporal* workflows — prediction windows slice by timestamp and
        keep duplicate hyperedges, so timestamps and per-edge membership are
        both part of the identity. Node labels participate via their
        ``repr``; two temporal datasets with relabelled nodes therefore get
        distinct fingerprints (a missed sharing opportunity, never a wrong
        hit). Cached on the instance (the pair list is immutable).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256(b"repro.store/temporal-fingerprint/v1")
            for timestamp, members in self._pairs:
                canonical = json.dumps(
                    [int(timestamp), sorted(repr(node) for node in members)],
                    separators=(",", ":"),
                )
                digest.update(canonical.encode("utf-8"))
                digest.update(b"\x00")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def snapshot(self, timestamp: int) -> Hypergraph:
        """Hypergraph of hyperedges whose timestamp equals *timestamp*.

        Duplicate hyperedges within the snapshot are removed, matching the
        paper's preprocessing (motif counting assumes distinct hyperedges).
        """
        edges = [edge for stamp, edge in self._pairs if stamp == timestamp]
        return Hypergraph(_unique(edges), name=f"{self.name}@{timestamp}")

    def window(self, start: int, end: int) -> Hypergraph:
        """Hypergraph of hyperedges with ``start <= timestamp <= end`` (deduplicated)."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        edges = [edge for stamp, edge in self._pairs if start <= stamp <= end]
        return Hypergraph(_unique(edges), name=f"{self.name}@{start}-{end}")

    def snapshots(self) -> Dict[int, Hypergraph]:
        """All per-timestamp snapshots keyed by timestamp."""
        return {stamp: self.snapshot(stamp) for stamp in self.timestamps()}

    def cumulative(self, timestamp: int) -> Hypergraph:
        """Hypergraph of all hyperedges up to and including *timestamp* (deduplicated)."""
        edges = [edge for stamp, edge in self._pairs if stamp <= timestamp]
        return Hypergraph(_unique(edges), name=f"{self.name}@<={timestamp}")

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self):
        return iter(self._pairs)

    def __repr__(self) -> str:
        stamps = self.timestamps()
        span = f"{stamps[0]}..{stamps[-1]}" if stamps else "empty"
        return (
            f"TemporalHypergraph(name={self.name!r}, hyperedges={len(self._pairs)}, "
            f"span={span})"
        )
