"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library-specific failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class HypergraphError(ReproError):
    """Raised when a hypergraph is malformed or an operation on it is invalid."""


class EmptyHyperedgeError(HypergraphError):
    """Raised when a hyperedge with no member nodes is supplied."""


class UnknownNodeError(HypergraphError):
    """Raised when an operation references a node that is not in the hypergraph."""


class UnknownHyperedgeError(HypergraphError):
    """Raised when an operation references a hyperedge index that does not exist."""


class ProjectionError(ReproError):
    """Raised when a projected graph is inconsistent with its hypergraph."""


class MotifError(ReproError):
    """Raised when an h-motif pattern or index is invalid."""


class NotConnectedError(MotifError):
    """Raised when three hyperedges passed for classification are not connected."""


class DuplicateHyperedgeError(MotifError):
    """Raised when an h-motif instance contains duplicated (identical) hyperedges."""


class SamplingError(ReproError):
    """Raised when an approximate counter is configured with invalid parameters."""


class RandomizationError(ReproError):
    """Raised when a null-model randomization cannot be performed."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, loaded or parsed."""


class ModelError(ReproError):
    """Raised when an ML model is misused (e.g. predict before fit)."""


class NotFittedError(ModelError):
    """Raised when ``predict`` is called on an unfitted model."""


class PredictionTaskError(ReproError):
    """Raised when the hyperedge-prediction task is configured incorrectly."""


class CLIError(ReproError):
    """Raised for user-facing command line errors."""


class StoreError(ReproError):
    """Raised when the artifact store (:mod:`repro.store`) is misconfigured."""


class ServeError(ReproError):
    """Raised when the serving layer loses a unit it was not told to capture.

    Streaming callers that opt into error capture receive structured
    :class:`repro.store.executors.UnitFailure` records instead; everyone
    else gets this — e.g. a worker process dying mid-batch or a unit
    exceeding its deadline outside the HTTP service's capture mode.
    """


class SpecError(ReproError):
    """Raised when a :mod:`repro.api` spec is constructed with invalid options."""


class KernelBackendError(SpecError):
    """Raised when an unknown or unavailable kernel backend is requested.

    Also a :class:`SpecError` so API-level configuration errors (an explicit
    ``KernelConfig(backend="numba")`` without numba installed) surface through
    the same channel as every other invalid spec.
    """


class CountSpecError(SpecError, SamplingError):
    """Raised when a :class:`repro.api.CountSpec` is invalid.

    Also a :class:`SamplingError` so callers of the legacy counting entrypoints
    (which validated the same parameters and raised ``SamplingError``) keep
    working unchanged.
    """
