"""Command-line interface for the MoCHy reproduction.

Every sub-command is a thin veneer over :class:`repro.api.MotifEngine`: the
arguments are parsed into one of the typed specs (:class:`repro.api.CountSpec`
etc.), validated *before* any dataset is loaded, and the engine runs the
workflow. ``count`` and ``profile`` accept ``--json`` to emit the result
objects' machine-readable serialization for scripting.

Sub-commands
------------
``count``
    Count h-motif instances with a chosen MoCHy variant.
``profile``
    Compute the characteristic profile of a hypergraph.
``compare``
    Real-vs-random comparison table (Table 3 style).
``generate``
    Generate one of the synthetic corpus datasets to disk.
``predict``
    Run the hyperedge-prediction experiment on a synthetic temporal
    co-authorship hypergraph and print the Table-4 style grid.

Dataset arguments accept either a file path (plain one-hyperedge-per-line, or
a ``.json`` document) or the name of a registered synthetic dataset (see
``repro-mochy generate --help`` for the names).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.api import (
    PROJECTIONS,
    CountSpec,
    MotifEngine,
    ProfileSpec,
    CompareSpec,
    PredictSpec,
)
from repro.counting.runner import ALGORITHMS
from repro.exceptions import CLIError, DatasetError, ReproError, SpecError
from repro.generators.corpus import dataset_names, generate_dataset
from repro.generators.temporal import generate_temporal_coauthorship
from repro.hypergraph import io as hio
from repro.motifs.patterns import NUM_MOTIFS, motif_is_open
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mochy",
        description="Hypergraph motif (h-motif) counting and analysis (VLDB 2020 reproduction)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="enable console logging"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    count = subparsers.add_parser("count", help="count h-motif instances")
    count.add_argument(
        "path",
        help="hypergraph file (one hyperedge per line) or registered dataset name",
    )
    count.add_argument(
        "--algorithm",
        default="exact",
        help=f"counting algorithm: one of {ALGORITHMS} or MoCHy aliases",
    )
    count.add_argument("--samples", type=int, default=None, help="number of samples")
    count.add_argument(
        "--ratio", type=float, default=None, help="sampling ratio of the population"
    )
    count.add_argument("--workers", type=int, default=1, help="number of parallel workers")
    count.add_argument("--seed", type=int, default=None, help="random seed")
    count.add_argument(
        "--projection",
        choices=PROJECTIONS,
        default="full",
        help="'full' materializes the projected graph; 'lazy' counts over a "
        "memory-budgeted on-the-fly projection",
    )
    count.add_argument(
        "--budget",
        type=int,
        default=None,
        help="lazy-projection memoization budget (number of neighborhoods)",
    )
    count.add_argument(
        "--json", action="store_true", help="emit the result as a JSON document"
    )

    profile = subparsers.add_parser("profile", help="compute the characteristic profile")
    profile.add_argument("path", help="hypergraph file or registered dataset name")
    profile.add_argument("--random", type=int, default=5, help="number of randomizations")
    profile.add_argument("--algorithm", default="exact", help="counting algorithm")
    profile.add_argument("--ratio", type=float, default=None, help="sampling ratio")
    profile.add_argument("--seed", type=int, default=0, help="random seed")
    profile.add_argument(
        "--json", action="store_true", help="emit the result as a JSON document"
    )

    compare = subparsers.add_parser("compare", help="real vs. random comparison table")
    compare.add_argument("path", help="hypergraph file or registered dataset name")
    compare.add_argument("--random", type=int, default=5, help="number of randomizations")
    compare.add_argument("--seed", type=int, default=0, help="random seed")

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument(
        "dataset",
        choices=dataset_names(),
        help="which synthetic stand-in dataset to generate",
    )
    generate.add_argument("output", type=Path, help="output file (plain format)")
    generate.add_argument("--scale", type=float, default=1.0, help="size multiplier")

    predict = subparsers.add_parser(
        "predict", help="hyperedge prediction experiment on synthetic temporal data"
    )
    predict.add_argument("--years", type=int, default=6, help="number of simulated years")
    predict.add_argument("--seed", type=int, default=0, help="random seed")
    predict.add_argument(
        "--max-positives", type=int, default=120, help="cap on positives per split"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.verbose:
        enable_console_logging()
    try:
        if arguments.command == "count":
            _run_count(arguments)
        elif arguments.command == "profile":
            _run_profile(arguments)
        elif arguments.command == "compare":
            _run_compare(arguments)
        elif arguments.command == "generate":
            _run_generate(arguments)
        elif arguments.command == "predict":
            _run_predict(arguments)
        else:  # pragma: no cover - argparse enforces the choices
            raise CLIError(f"unknown command {arguments.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _engine(source: str) -> MotifEngine:
    """An engine over a file path or registered dataset name."""
    try:
        return MotifEngine.load(source)
    except DatasetError as error:
        raise CLIError(str(error)) from error


def _run_count(arguments) -> None:
    # Validate the spec before touching the dataset, so conflicting or invalid
    # options fail fast with a parse-time error.
    if arguments.samples is not None and arguments.ratio is not None:
        raise CLIError("pass either --samples or --ratio, not both")
    try:
        spec = CountSpec(
            algorithm=arguments.algorithm,
            num_samples=arguments.samples,
            sampling_ratio=arguments.ratio,
            num_workers=arguments.workers,
            seed=arguments.seed,
            projection=arguments.projection,
            budget=arguments.budget,
        )
    except SpecError as error:
        raise CLIError(str(error)) from error
    engine = _engine(arguments.path)
    result = engine.count(spec)
    if arguments.json:
        print(result.to_json(indent=2))
        return
    print(f"# dataset: {result.dataset}")
    print(f"# algorithm: {result.algorithm}  samples: {result.num_samples}")
    print(
        f"# projection: {result.projection_seconds:.3f}s  counting: {result.counting_seconds:.3f}s"
    )
    print(f"{'motif':>5} {'open':>5} {'count':>16}")
    for motif, value in result.counts.items():
        print(f"{motif:>5} {str(motif_is_open(motif)):>5} {value:>16.4f}")
    print(f"total instances: {result.counts.total():.1f}")


def _run_profile(arguments) -> None:
    try:
        spec = ProfileSpec(
            num_random=arguments.random,
            algorithm=arguments.algorithm,
            sampling_ratio=arguments.ratio,
            seed=arguments.seed,
        )
    except SpecError as error:
        raise CLIError(str(error)) from error
    engine = _engine(arguments.path)
    result = engine.profile(spec)
    if arguments.json:
        print(result.to_json(indent=2))
        return
    print(f"# characteristic profile of {result.dataset}")
    print(f"{'motif':>5} {'significance':>13} {'CP':>9}")
    for motif in range(1, NUM_MOTIFS + 1):
        print(
            f"{motif:>5} {result.significances[motif - 1]:>13.4f} "
            f"{result.values[motif - 1]:>9.4f}"
        )


def _run_compare(arguments) -> None:
    from repro.analysis.real_vs_random import format_report

    try:
        spec = CompareSpec(num_random=arguments.random, seed=arguments.seed)
    except SpecError as error:
        raise CLIError(str(error)) from error
    engine = _engine(arguments.path)
    print(format_report(engine.compare(spec).report))


def _run_generate(arguments) -> None:
    hypergraph = generate_dataset(arguments.dataset, scale=arguments.scale)
    hio.write_plain(hypergraph, arguments.output)
    print(
        f"wrote {arguments.dataset}: {hypergraph.num_nodes} nodes, "
        f"{hypergraph.num_hyperedges} hyperedges -> {arguments.output}"
    )


def _run_predict(arguments) -> None:
    temporal = generate_temporal_coauthorship(
        num_years=arguments.years, seed=arguments.seed
    )
    engine = MotifEngine(temporal)
    result = engine.predict(
        PredictSpec(max_positives=arguments.max_positives, seed=arguments.seed)
    )
    print(f"{'classifier':<22} {'features':<6} {'ACC':>7} {'AUC':>7}")
    for classifier, feature_set, acc, auc in result.as_rows():
        print(f"{classifier:<22} {feature_set:<6} {acc:>7.3f} {auc:>7.3f}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
