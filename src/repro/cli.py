"""Command-line interface for the MoCHy reproduction.

Every sub-command is a thin veneer over :class:`repro.api.MotifEngine`: the
arguments are parsed into one of the typed specs (:class:`repro.api.CountSpec`
etc.), validated *before* any dataset is loaded, and the engine runs the
workflow. ``count``, ``profile``, ``compare`` and ``predict`` accept
``--json`` to emit the result objects' machine-readable serialization for
scripting.

Sub-commands
------------
``count``
    Count h-motif instances with a chosen MoCHy variant.
``profile``
    Compute the characteristic profile of a hypergraph.
``compare``
    Real-vs-random comparison table (Table 3 style).
``generate``
    Generate one of the synthetic corpus datasets to disk.
``predict``
    Run the hyperedge-prediction experiment on a synthetic temporal
    co-authorship hypergraph and print the Table-4 style grid.
``evolve``
    Count every snapshot of a temporal hypergraph's evolution chain
    (paper Figure 7): cumulative prefixes recounted incrementally over the
    delta engine, or per-timestamp snapshots in isolation (``--mode
    snapshot``). ``--json`` emits the full :class:`EvolutionResult`
    document including per-snapshot lineage fingerprints and provenance.
``cache``
    Inspect and manage the persistent artifact store (``ls``/``gc``/``warm``).
``serve-batch``
    Serve a JSONL file of requests (one ``{"source": ..., "spec": {...}}``
    object per line) through the batched :class:`repro.store.EngineServer`,
    optionally fanned out across thread or process workers
    (``--workers N --backend thread|process``).
``serve``
    Run the HTTP motif service (:mod:`repro.store.server`): a long-lived
    engine server with a persistent worker pool behind ``POST /v1/batch``
    (NDJSON streaming of the same request wire format), ``GET /v1/health``
    and ``GET /v1/stats``; drains gracefully on SIGTERM/SIGINT.

Dataset arguments accept either a file path (plain one-hyperedge-per-line, or
a ``.json`` document) or the name of a registered synthetic dataset (see
``repro-mochy generate --help`` for the names).

The analysis commands consult the persistent artifact store when one is
configured — via ``--store DIR`` or the ``REPRO_STORE_DIR`` environment
variable — so a second invocation against the same store serves projections,
counts and profiles from disk instead of recomputing them (``--no-store``
opts a run out).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.api import (
    PROJECTIONS,
    CountSpec,
    MotifEngine,
    ProfileSpec,
    CompareSpec,
    PredictSpec,
)
from repro.counting.runner import ALGORITHMS
from repro.exceptions import CLIError, DatasetError, ReproError, SpecError
from repro.generators.corpus import dataset_names, generate_dataset
from repro.generators.temporal import generate_temporal_coauthorship
from repro.hypergraph import io as hio
from repro.motifs.patterns import NUM_MOTIFS, motif_is_open
from repro.store import ENV_STORE_DIR, ArtifactStore, EvictionPolicy
from repro.utils.logging import LOG_LEVEL_NAMES, enable_console_logging


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serving-executor options (--workers/--backend)."""
    from repro.store.executors import SERVE_BACKENDS

    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="how many requests of the batch may run concurrently",
    )
    parser.add_argument(
        "--backend",
        choices=SERVE_BACKENDS,
        default=None,
        help="serving executor: 'serial', 'thread' (default with --workers > 1) "
        "or 'process' (real CPU parallelism; workers share the store directory)",
    )


def _add_kernel_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the counting-kernel backend option (``--kernel-backend``)."""
    from repro.fastcore.backend import KERNEL_BACKEND_CHOICES

    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKEND_CHOICES,
        default=None,
        help="counting-kernel backend: 'numpy' (always available), 'numba' "
        "(compiled; fails if numba is not installed) or 'auto' "
        "(default: $REPRO_KERNEL_BACKEND when set, else numpy)",
    )


def _apply_kernel_backend(arguments) -> None:
    """Install --kernel-backend as the process-wide default, failing fast."""
    backend = getattr(arguments, "kernel_backend", None)
    if backend is None:
        return
    from repro.exceptions import KernelBackendError
    from repro.fastcore.backend import set_backend

    try:
        set_backend(backend)
    except KernelBackendError as error:
        raise CLIError(str(error)) from error


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the artifact-store options shared by the analysis commands."""
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent artifact store directory "
        f"(default: ${ENV_STORE_DIR} when set)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable artifact-store consultation for this run",
    )


def _add_policy_arguments(parser: argparse.ArgumentParser, prefix: str) -> None:
    """Attach the eviction-policy knobs (``--[cache-]max-bytes/--[cache-]ttl``).

    *prefix* distinguishes ``cache gc --max-bytes`` (the store is the
    subject) from ``serve --cache-max-bytes`` (the store is one component).
    """
    parser.add_argument(
        f"--{prefix}max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget for persisted payloads; gc evicts oldest/lowest-"
        "priority artifacts beyond it (default: unbounded)",
    )
    parser.add_argument(
        f"--{prefix}ttl",
        action="append",
        default=None,
        metavar="KIND=SECONDS",
        help="maximum age for one artifact kind, e.g. --"
        f"{prefix}ttl count=3600 (repeatable; default: never expires)",
    )


def _eviction_policy(
    max_bytes: Optional[int], ttl_items: Optional[Sequence[str]]
) -> Optional[EvictionPolicy]:
    """Fold the policy flags into an :class:`EvictionPolicy`, or ``None``."""
    if max_bytes is None and not ttl_items:
        return None
    ttls = {}
    for item in ttl_items or []:
        kind, sep, seconds = item.partition("=")
        if not sep or not kind:
            raise CLIError(f"--ttl expects KIND=SECONDS, got {item!r}")
        try:
            ttls[kind] = float(seconds)
        except ValueError as error:
            raise CLIError(
                f"--ttl {item!r}: seconds must be a number"
            ) from error
    try:
        return EvictionPolicy(max_bytes=max_bytes, ttl_seconds=ttls)
    except ValueError as error:
        raise CLIError(str(error)) from error


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mochy",
        description="Hypergraph motif (h-motif) counting and analysis (VLDB 2020 reproduction)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="enable console logging"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    count = subparsers.add_parser("count", help="count h-motif instances")
    count.add_argument(
        "path",
        help="hypergraph file (one hyperedge per line) or registered dataset name",
    )
    count.add_argument(
        "--algorithm",
        default="exact",
        help=f"counting algorithm: one of {ALGORITHMS} or MoCHy aliases",
    )
    count.add_argument("--samples", type=int, default=None, help="number of samples")
    count.add_argument(
        "--ratio", type=float, default=None, help="sampling ratio of the population"
    )
    count.add_argument("--workers", type=int, default=1, help="number of parallel workers")
    count.add_argument("--seed", type=int, default=None, help="random seed")
    count.add_argument(
        "--projection",
        choices=PROJECTIONS,
        default="full",
        help="'full' materializes the projected graph; 'lazy' counts over a "
        "memory-budgeted on-the-fly projection",
    )
    count.add_argument(
        "--budget",
        type=int,
        default=None,
        help="lazy-projection memoization budget (number of neighborhoods)",
    )
    count.add_argument(
        "--json", action="store_true", help="emit the result as a JSON document"
    )
    _add_kernel_arguments(count)
    _add_store_arguments(count)

    profile = subparsers.add_parser("profile", help="compute the characteristic profile")
    profile.add_argument("path", help="hypergraph file or registered dataset name")
    profile.add_argument("--random", type=int, default=5, help="number of randomizations")
    profile.add_argument("--algorithm", default="exact", help="counting algorithm")
    profile.add_argument("--ratio", type=float, default=None, help="sampling ratio")
    profile.add_argument("--seed", type=int, default=0, help="random seed")
    profile.add_argument(
        "--json", action="store_true", help="emit the result as a JSON document"
    )
    _add_kernel_arguments(profile)
    _add_store_arguments(profile)

    compare = subparsers.add_parser("compare", help="real vs. random comparison table")
    compare.add_argument("path", help="hypergraph file or registered dataset name")
    compare.add_argument("--random", type=int, default=5, help="number of randomizations")
    compare.add_argument("--seed", type=int, default=0, help="random seed")
    compare.add_argument(
        "--json", action="store_true", help="emit the result as a JSON document"
    )
    _add_kernel_arguments(compare)
    _add_store_arguments(compare)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument(
        "dataset",
        choices=dataset_names(),
        help="which synthetic stand-in dataset to generate",
    )
    generate.add_argument("output", type=Path, help="output file (plain format)")
    generate.add_argument("--scale", type=float, default=1.0, help="size multiplier")

    predict = subparsers.add_parser(
        "predict", help="hyperedge prediction experiment on synthetic temporal data"
    )
    predict.add_argument("--years", type=int, default=6, help="number of simulated years")
    predict.add_argument("--seed", type=int, default=0, help="random seed")
    predict.add_argument(
        "--max-positives", type=int, default=120, help="cap on positives per split"
    )
    predict.add_argument(
        "--json", action="store_true", help="emit the result as a JSON document"
    )

    evolve = subparsers.add_parser(
        "evolve",
        help="count every snapshot of a temporal hypergraph's evolution chain",
    )
    evolve.add_argument(
        "path",
        help="temporal dataset: a registered temporal name (e.g. "
        "'coauth-temporal-like'), or a hyperedge file with a "
        "<stem>-times.txt timestamp sidecar next to it",
    )
    evolve.add_argument(
        "--mode",
        choices=("cumulative", "snapshot"),
        default="cumulative",
        help="'cumulative' counts every growing prefix (incrementally); "
        "'snapshot' counts each timestamp's hyperedges in isolation",
    )
    evolve.add_argument(
        "--algorithm", default="exact", help="counting algorithm per snapshot"
    )
    evolve.add_argument(
        "--ratio", type=float, default=None, help="sampling ratio per snapshot"
    )
    evolve.add_argument("--seed", type=int, default=None, help="random seed")
    evolve.add_argument(
        "--min-hyperedges",
        type=int,
        default=1,
        metavar="N",
        help="skip snapshots with fewer than N hyperedges (default: 1)",
    )
    evolve.add_argument(
        "--no-incremental",
        action="store_true",
        help="rebuild every snapshot from scratch instead of applying deltas "
        "(a parity/debugging aid; results are bit-identical either way)",
    )
    evolve.add_argument(
        "--json", action="store_true", help="emit the result as a JSON document"
    )
    _add_kernel_arguments(evolve)
    _add_store_arguments(evolve)

    cache = subparsers.add_parser(
        "cache", help="inspect and manage the persistent artifact store"
    )
    cache.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"store directory (default: ${ENV_STORE_DIR})",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list persisted artifacts")
    cache_ls.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable listing (shard, level, size, age, params)",
    )
    cache_gc = cache_sub.add_parser(
        "gc",
        help="compact the store: fold shard logs, drop stale/corrupt/evicted entries",
    )
    _add_policy_arguments(cache_gc, prefix="")
    warm = cache_sub.add_parser(
        "warm", help="pre-populate the store (projection + exact counts)"
    )
    warm.add_argument(
        "datasets",
        nargs="+",
        help="hypergraph files or registered dataset names to warm",
    )
    warm.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="additionally warm a characteristic profile with N randomizations",
    )
    warm.add_argument(
        "--seed", type=int, default=0, help="random seed for the warmed profile"
    )
    _add_kernel_arguments(warm)
    _add_executor_arguments(warm)

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP motif service (streaming batches over the engine server)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="port to listen on (default: 8723; 0 picks a free port)",
    )
    serve.add_argument(
        "--max-engines",
        type=int,
        default=8,
        metavar="N",
        help="bound on the resident per-dataset engine pool (LRU-evicted)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="largest accepted batch; bigger POSTs get HTTP 413 (default: 256)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="concurrently in-flight batch bound; beyond it POSTs get a "
        "retryable HTTP 429 with a Retry-After hint (default: 16)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget per batch; units unfinished at the deadline "
        "stream structured retryable UnitTimeout error records "
        "(default: no deadline)",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=None,
        metavar="S",
        help="how long a SIGTERM waits for in-flight batches (default: 30)",
    )
    serve.add_argument(
        "--log-level",
        choices=LOG_LEVEL_NAMES,
        default=None,
        help="console log level for the service (structured JSON events on "
        "the 'repro' logger; 'debug' includes per-unit and HTTP access logs)",
    )
    _add_kernel_arguments(serve)
    _add_executor_arguments(serve)
    _add_store_arguments(serve)
    _add_policy_arguments(serve, prefix="cache-")

    stats = subparsers.add_parser(
        "stats",
        help="query a running motif service's counters and latency summaries",
    )
    stats.add_argument(
        "--host", default="127.0.0.1", help="service address (default: 127.0.0.1)"
    )
    stats.add_argument(
        "--port", type=int, default=None, help="service port (default: 8723)"
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the raw /v1/stats JSON document",
    )
    stats.add_argument(
        "--metrics",
        action="store_true",
        help="emit the raw Prometheus text from GET /v1/metrics instead",
    )

    serve_batch = subparsers.add_parser(
        "serve-batch",
        help="serve a JSONL file of requests through the batched engine server",
    )
    serve_batch.add_argument(
        "requests",
        help="JSONL request file ('-' for stdin): one "
        '{"source": ..., "spec": {"type": "count", ...}} object per line; '
        "spec fields may also be inlined next to \"source\"",
    )
    serve_batch.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON result document per request line",
    )
    _add_kernel_arguments(serve_batch)
    _add_executor_arguments(serve_batch)
    _add_store_arguments(serve_batch)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.verbose:
        enable_console_logging()
    try:
        _apply_kernel_backend(arguments)
        if arguments.command == "count":
            _run_count(arguments)
        elif arguments.command == "profile":
            _run_profile(arguments)
        elif arguments.command == "compare":
            _run_compare(arguments)
        elif arguments.command == "generate":
            _run_generate(arguments)
        elif arguments.command == "predict":
            _run_predict(arguments)
        elif arguments.command == "evolve":
            _run_evolve(arguments)
        elif arguments.command == "cache":
            _run_cache(arguments)
        elif arguments.command == "serve":
            _run_serve(arguments)
        elif arguments.command == "stats":
            _run_stats(arguments)
        elif arguments.command == "serve-batch":
            _run_serve_batch(arguments)
        else:  # pragma: no cover - argparse enforces the choices
            raise CLIError(f"unknown command {arguments.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _open_store(
    directory: str, policy: Optional[EvictionPolicy] = None
) -> ArtifactStore:
    """Open an explicitly-requested store, failing loudly if it is unusable.

    (The ambient ``$REPRO_STORE_DIR`` default instead degrades to
    memory-only, so a broken environment never blocks a computation.)
    """
    store = ArtifactStore(directory, policy=policy)
    if store.disk_error is not None:
        raise CLIError(f"store directory {directory!r} is unusable: {store.disk_error}")
    return store


def _store_argument(arguments) -> Union[ArtifactStore, bool]:
    """Resolve --store/--no-store into the engine's ``store=`` argument."""
    if arguments.no_store:
        if arguments.store:
            raise CLIError("pass either --store or --no-store, not both")
        return False
    if arguments.store:
        return _open_store(arguments.store)
    return True  # process default: $REPRO_STORE_DIR when set, else disabled


def _engine(source: str, store: Union[ArtifactStore, bool] = True) -> MotifEngine:
    """An engine over a file path or registered dataset name."""
    try:
        return MotifEngine.load(source, store=store)
    except DatasetError as error:
        raise CLIError(str(error)) from error


def _run_count(arguments) -> None:
    # Validate the spec before touching the dataset, so conflicting or invalid
    # options fail fast with a parse-time error.
    if arguments.samples is not None and arguments.ratio is not None:
        raise CLIError("pass either --samples or --ratio, not both")
    try:
        spec = CountSpec(
            algorithm=arguments.algorithm,
            num_samples=arguments.samples,
            sampling_ratio=arguments.ratio,
            num_workers=arguments.workers,
            seed=arguments.seed,
            projection=arguments.projection,
            budget=arguments.budget,
        )
    except SpecError as error:
        raise CLIError(str(error)) from error
    engine = _engine(arguments.path, store=_store_argument(arguments))
    result = engine.count(spec)
    if arguments.json:
        print(result.to_json(indent=2))
        return
    print(f"# dataset: {result.dataset}")
    print(f"# algorithm: {result.algorithm}  samples: {result.num_samples}")
    print(
        f"# projection: {result.projection_seconds:.3f}s  counting: {result.counting_seconds:.3f}s"
    )
    print(f"{'motif':>5} {'open':>5} {'count':>16}")
    for motif, value in result.counts.items():
        print(f"{motif:>5} {str(motif_is_open(motif)):>5} {value:>16.4f}")
    print(f"total instances: {result.counts.total():.1f}")


def _run_profile(arguments) -> None:
    try:
        spec = ProfileSpec(
            num_random=arguments.random,
            algorithm=arguments.algorithm,
            sampling_ratio=arguments.ratio,
            seed=arguments.seed,
        )
    except SpecError as error:
        raise CLIError(str(error)) from error
    engine = _engine(arguments.path, store=_store_argument(arguments))
    result = engine.profile(spec)
    if arguments.json:
        print(result.to_json(indent=2))
        return
    print(f"# characteristic profile of {result.dataset}")
    print(f"{'motif':>5} {'significance':>13} {'CP':>9}")
    for motif in range(1, NUM_MOTIFS + 1):
        print(
            f"{motif:>5} {result.significances[motif - 1]:>13.4f} "
            f"{result.values[motif - 1]:>9.4f}"
        )


def _run_compare(arguments) -> None:
    from repro.analysis.real_vs_random import format_report

    try:
        spec = CompareSpec(num_random=arguments.random, seed=arguments.seed)
    except SpecError as error:
        raise CLIError(str(error)) from error
    engine = _engine(arguments.path, store=_store_argument(arguments))
    result = engine.compare(spec)
    if arguments.json:
        print(result.to_json(indent=2))
        return
    print(format_report(result.report))


def _run_generate(arguments) -> None:
    hypergraph = generate_dataset(arguments.dataset, scale=arguments.scale)
    hio.write_plain(hypergraph, arguments.output)
    print(
        f"wrote {arguments.dataset}: {hypergraph.num_nodes} nodes, "
        f"{hypergraph.num_hyperedges} hyperedges -> {arguments.output}"
    )


def _run_predict(arguments) -> None:
    temporal = generate_temporal_coauthorship(
        num_years=arguments.years, seed=arguments.seed
    )
    engine = MotifEngine(temporal)
    result = engine.predict(
        PredictSpec(max_positives=arguments.max_positives, seed=arguments.seed)
    )
    if arguments.json:
        print(result.to_json(indent=2))
        return
    print(f"{'classifier':<22} {'features':<6} {'ACC':>7} {'AUC':>7}")
    for classifier, feature_set, acc, auc in result.as_rows():
        print(f"{classifier:<22} {feature_set:<6} {acc:>7.3f} {auc:>7.3f}")


def _run_evolve(arguments) -> None:
    from repro.api import EvolveSpec

    try:
        spec = EvolveSpec(
            mode=arguments.mode,
            algorithm=arguments.algorithm,
            sampling_ratio=arguments.ratio,
            seed=arguments.seed,
            incremental=not arguments.no_incremental,
            min_hyperedges=arguments.min_hyperedges,
        )
    except SpecError as error:
        raise CLIError(str(error)) from error
    engine = _engine(arguments.path, store=_store_argument(arguments))
    try:
        result = engine.evolve(spec)
    except SpecError as error:
        raise CLIError(str(error)) from error
    if arguments.json:
        print(result.to_json(indent=2))
        return
    print(
        f"# dataset: {result.dataset}  mode: {result.mode}  "
        f"algorithm: {result.algorithm}"
    )
    modes = ", ".join(
        f"{mode}={count}" for mode, count in sorted(result.snapshot_modes().items())
    )
    print(
        f"# snapshots: {len(result.snapshots)} ({modes or 'none'})  "
        f"total: {result.seconds:.3f}s"
    )
    print(
        f"{'#':>3} {'label':<14} {'edges':>7} {'served':<12} "
        f"{'fingerprint':<14} {'instances':>14} {'open':>7} {'seconds':>9}"
    )
    for snapshot in result.snapshots:
        total = snapshot.counts.total()
        open_total = sum(
            value
            for motif, value in snapshot.counts.items()
            if motif_is_open(motif)
        )
        open_fraction = open_total / total if total else 0.0
        print(
            f"{snapshot.index:>3} {snapshot.label:<14.14} "
            f"{snapshot.num_hyperedges:>7} {snapshot.mode:<12} "
            f"{snapshot.fingerprint[:12]:<14} {total:>14.1f} "
            f"{open_fraction:>7.4f} {snapshot.seconds:>9.3f}"
        )


def _cache_store(arguments) -> ArtifactStore:
    """The store a ``cache`` subcommand operates on (flag or environment)."""
    directory = arguments.store or os.environ.get(ENV_STORE_DIR)
    if not directory:
        raise CLIError(
            f"no store directory configured: pass --store DIR or set ${ENV_STORE_DIR}"
        )
    policy = _eviction_policy(
        getattr(arguments, "max_bytes", None), getattr(arguments, "ttl", None)
    )
    return _open_store(directory, policy=policy)


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(size)} B"  # pragma: no cover - unreachable


def _run_cache(arguments) -> None:
    store = _cache_store(arguments)
    if arguments.cache_command == "ls":
        _run_cache_ls(store, as_json=getattr(arguments, "json", False))
    elif arguments.cache_command == "gc":
        _run_cache_gc(store)
    elif arguments.cache_command == "warm":
        _run_cache_warm(store, arguments)
    else:  # pragma: no cover - argparse enforces the choices
        raise CLIError(f"unknown cache command {arguments.cache_command!r}")


def _lineage_of(store: ArtifactStore, fingerprint: str):
    """Decode one lineage sidecar (parent/depth/label), or ``None``."""
    from repro.store import codecs

    hit = store.get(codecs.KIND_LINEAGE, fingerprint, codecs.lineage_params())
    if hit is None:
        return None
    arrays, meta, _tier = hit
    return codecs.decode_lineage(arrays, meta)


def _run_cache_ls(store: ArtifactStore, as_json: bool = False) -> None:
    entries = store.entries()
    if as_json:
        now = time.time()
        records = []
        max_chain_depth = 0
        for entry in entries:
            record = {
                "kind": entry.kind,
                "dataset": entry.dataset,
                "fingerprint": entry.fingerprint,
                "shard": entry.shard,
                "level": entry.level,
                "size_bytes": entry.payload_bytes,
                "age_seconds": max(0.0, now - entry.created),
                "created": entry.created,
                "params": entry.params,
            }
            if entry.kind == "lineage":
                lineage = _lineage_of(store, entry.fingerprint)
                if lineage is not None:
                    record["lineage"] = lineage
                    max_chain_depth = max(max_chain_depth, lineage["depth"])
            records.append(record)
        print(
            json.dumps(
                {
                    "directory": str(store.directory),
                    "disk_stale": store.disk_stale,
                    "total_entries": len(entries),
                    "total_bytes": sum(e.payload_bytes for e in entries),
                    "max_chain_depth": max_chain_depth,
                    "entries": records,
                    "occupancy": store.occupancy(),
                },
                indent=2,
            )
        )
        return
    print(f"# store: {store.directory}")
    if store.disk_stale:
        print("# WARNING: manifest format version mismatch; run `cache gc` to compact")
    if not entries:
        print("(no artifacts)")
        return
    print(
        f"{'kind':<12} {'dataset':<24} {'fingerprint':<14} {'shard':<6} "
        f"{'level':<6} {'size':>10}  params"
    )
    total = 0
    for entry in entries:
        total += entry.payload_bytes
        params = ", ".join(
            f"{key}={value}"
            for key, value in sorted(entry.params.items())
            if value is not None and key != "kind"
        )
        print(
            f"{entry.kind:<12} {(entry.dataset or '-'):<24.24} "
            f"{entry.fingerprint[:12]:<14} {entry.shard:<6} {entry.level:<6} "
            f"{_format_bytes(entry.payload_bytes):>10}  {params or '-'}"
        )
    print(f"total: {len(entries)} artifacts, {_format_bytes(total)}")


def _run_cache_gc(store: ArtifactStore) -> None:
    stats = store.gc()
    # Details cover both removals ("<reason>: <file>") and notices (lock
    # contention, unusable directory), so they carry their own verbs.
    for detail in stats.details:
        print(f"gc: {detail}")
    for shard in sorted(stats.shards):
        shard_stats = stats.shards[shard]
        print(
            f"shard {shard}: kept {shard_stats['kept']}, "
            f"removed {shard_stats['removed']}, "
            f"evicted {shard_stats['evicted']}, "
            f"reclaimed {_format_bytes(shard_stats['reclaimed_bytes'])}"
        )
    print(
        f"kept {stats.kept_entries} entries; removed {stats.removed_entries} "
        f"entries ({stats.removed_files} files, "
        f"{_format_bytes(stats.reclaimed_bytes)} reclaimed); "
        f"evicted {stats.evicted_entries}; "
        f"compacted {stats.compacted_shards} shards"
    )


def _run_cache_warm(store: ArtifactStore, arguments) -> None:
    from repro.store.serve import EngineServer, ServeRequest

    specs = [CountSpec()]
    if arguments.profile is not None:
        try:
            specs.append(
                ProfileSpec(num_random=arguments.profile, seed=arguments.seed)
            )
        except SpecError as error:
            raise CLIError(str(error)) from error
    server = EngineServer(store=store)
    requests = [
        ServeRequest(dataset, spec)
        for dataset in arguments.datasets
        for spec in specs
    ]
    try:
        # One batch over all datasets, so --workers overlaps whole datasets
        # (the unit of cold work) rather than specs within one.
        results = server.submit(
            requests, workers=arguments.workers, backend=arguments.backend
        )
    except (DatasetError, SpecError) as error:
        raise CLIError(str(error)) from error
    for index, dataset in enumerate(arguments.datasets):
        slice_ = results[index * len(specs) : (index + 1) * len(specs)]
        status = ", ".join(
            f"{kind} {'hit' if result.from_cache else 'computed'}"
            for kind, result in zip(("count", "profile"), slice_)
        )
        print(f"{dataset}: {status}")
    print(f"store: {len(store.entries())} artifacts in {store.directory}")


def _serve_store_argument(arguments) -> Union[ArtifactStore, bool]:
    """Resolve the serve command's store, honoring --cache-max-bytes/--cache-ttl."""
    policy = _eviction_policy(arguments.cache_max_bytes, arguments.cache_ttl)
    if policy is None:
        return _store_argument(arguments)
    if arguments.no_store:
        raise CLIError("eviction-policy flags are meaningless with --no-store")
    directory = arguments.store or os.environ.get(ENV_STORE_DIR)
    if not directory:
        raise CLIError(
            "eviction-policy flags need a store: pass --store DIR or set "
            f"${ENV_STORE_DIR}"
        )
    return _open_store(directory, policy=policy)


def _run_serve(arguments) -> None:
    from repro.store import server as http_server

    if arguments.log_level:
        enable_console_logging(arguments.log_level)
    port = http_server.DEFAULT_PORT if arguments.port is None else arguments.port
    try:
        server = http_server.build_server(
            host=arguments.host,
            port=port,
            store=_serve_store_argument(arguments),
            workers=arguments.workers,
            backend=arguments.backend,
            max_engines=arguments.max_engines,
            max_batch=(
                http_server.DEFAULT_MAX_BATCH
                if arguments.max_batch is None
                else arguments.max_batch
            ),
            max_queue=(
                http_server.DEFAULT_MAX_QUEUE
                if arguments.max_queue is None
                else arguments.max_queue
            ),
            request_timeout=arguments.request_timeout,
        )
    except OSError as error:
        raise CLIError(f"cannot bind {arguments.host}:{port}: {error}") from error
    drain = (
        http_server.DEFAULT_DRAIN_SECONDS
        if arguments.drain_seconds is None
        else arguments.drain_seconds
    )
    http_server.run(server, drain_seconds=drain)


def _run_stats(arguments) -> None:
    from repro.store.client import ServiceClient, ServiceError
    from repro.store.server import DEFAULT_PORT

    port = DEFAULT_PORT if arguments.port is None else arguments.port
    client = ServiceClient(host=arguments.host, port=port, retries=0)
    try:
        if arguments.metrics:
            sys.stdout.write(client.metrics())
            return
        payload = client.stats()
    except (ServiceError, OSError) as error:
        raise CLIError(
            f"cannot reach the service at {arguments.host}:{port}: {error}"
        ) from error
    finally:
        client.close()
    if arguments.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(f"# service: http://{arguments.host}:{port}")
    for section in ("serve", "engines", "pool", "service"):
        block = payload.get(section)
        if isinstance(block, dict):
            flat = ", ".join(
                f"{key}={value}"
                for key, value in sorted(block.items())
                if not isinstance(value, (dict, list))
            )
            print(f"{section}: {flat}")
    summaries = payload.get("metrics")
    if isinstance(summaries, dict) and summaries:
        print(f"{'histogram':<40} {'count':>8} {'p50':>10} {'p95':>10} {'p99':>10}")
        for name in sorted(summaries):
            summary = summaries[name]
            if not isinstance(summary, dict) or not summary.get("count"):
                continue
            print(
                f"{name:<40.40} {summary['count']:>8} "
                f"{summary['p50']:>10.6f} {summary['p95']:>10.6f} "
                f"{summary['p99']:>10.6f}"
            )


def _read_serve_requests(source: str):
    """Parse a JSONL request file into ``ServeRequest`` objects, eagerly.

    Each line is one JSON object in the shared request wire format
    (:func:`repro.store.serve.request_from_dict` — the same records the
    HTTP service accepts). Validation happens here — before any dataset is
    loaded — with line numbers in every error.
    """
    from repro.store.serve import request_from_dict

    if source == "-":
        lines = sys.stdin.read().splitlines()
    else:
        path = Path(source)
        if not path.is_file():
            raise CLIError(f"request file not found: {source}")
        lines = path.read_text(encoding="utf-8").splitlines()
    requests = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise CLIError(f"line {number}: invalid JSON ({error})") from error
        if not isinstance(record, dict):
            raise CLIError(f"line {number}: expected a JSON object, got {record!r}")
        try:
            requests.append(request_from_dict(record))
        except SpecError as error:
            raise CLIError(f"line {number}: {error}") from error
    if not requests:
        raise CLIError(f"no requests found in {source!r}")
    return requests


def _run_serve_batch(arguments) -> None:
    from repro.store.serve import EngineServer

    requests = _read_serve_requests(arguments.requests)
    server = EngineServer(store=_store_argument(arguments))
    try:
        results = server.submit(
            requests, workers=arguments.workers, backend=arguments.backend
        )
    except DatasetError as error:
        raise CLIError(str(error)) from error
    if arguments.json:
        for result in results:
            print(result.to_json())
        return
    print(
        f"{'#':>4} {'kind':<8} {'dataset':<24} {'seconds':>9} {'cache':<8}"
    )
    for index, result in enumerate(results):
        kind = result.kind
        seconds = getattr(result, "seconds", None)
        if seconds is None:
            seconds = result.total_seconds
        provenance = result.cache_tier if result.from_cache else "computed"
        print(
            f"{index:>4} {kind:<8} {result.dataset:<24.24} {seconds:>9.3f} "
            f"{provenance:<8}"
        )
    stats = server.stats
    print(
        f"served {stats.requests} requests ({stats.unique} unique, "
        f"{stats.deduplicated} deduplicated) over {stats.engines_built} engines"
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
