"""Parallel MoCHy counters (paper Section 3.4, Figure 10).

The paper parallelizes all MoCHy versions by letting threads process different
hyperedges (MoCHy-E / MoCHy-A) or hyperwedges (MoCHy-A+) independently and
summing the per-thread counters once at the end. The same structure is used
here with ``concurrent.futures``:

* ``ProcessPoolExecutor`` (the default) gives real speedups for CPU-bound
  counting. Workers receive only the CSR arrays of the hypergraph and of the
  (built-once) projection — plain NumPy buffers — never a pickled frozenset
  graph, and run the batched fast-core kernels directly;
* ``ThreadPoolExecutor`` mirrors the paper's shared-memory threading and is
  useful when the GIL is released (or simply to validate the decomposition);
  threads share the parent's structures with no copying at all.

Correctness does not depend on the executor: the work decomposition assigns
each h-motif instance to exactly one worker (MoCHy-E) or preserves the i.i.d.
sampling semantics (MoCHy-A / MoCHy-A+).
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.fastcore.csr import HypergraphCSR
from repro.fastcore.kernels import (
    count_containing_batched,
    count_exact_batched,
    count_wedges_batched,
)
from repro.fastcore.projection import AdjacencyArrays
from repro.counting.classification import NeighborhoodProvider, fast_adjacency
from repro.counting.edge_sampling import count_approx_edge_sampling
from repro.counting.exact import count_exact
from repro.counting.wedge_sampling import _rescale, count_approx_wedge_sampling
from repro.exceptions import SamplingError
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts, aggregate_counts
from repro.projection.builder import project
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int

#: Executor backends supported by the parallel counters.
BACKEND_PROCESS = "process"
BACKEND_THREAD = "thread"
_BACKENDS = (BACKEND_PROCESS, BACKEND_THREAD)


def _check_backend(backend: str) -> None:
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")


def make_executor(backend: str, num_workers: int) -> Executor:
    """A ``concurrent.futures`` executor for one of the supported backends.

    Shared by the parallel counters here and the batch-serving executors in
    :mod:`repro.store.executors`, so every parallel layer spells backend
    names and pool construction the same way.
    """
    _check_backend(backend)
    if backend == BACKEND_PROCESS:
        return ProcessPoolExecutor(max_workers=num_workers)
    return ThreadPoolExecutor(max_workers=num_workers)


def _split_evenly(items: Sequence, parts: int) -> List[Sequence]:
    """Split *items* into at most *parts* non-empty contiguous chunks."""
    parts = min(parts, len(items)) if items else 1
    chunks: List[Sequence] = []
    base, remainder = divmod(len(items), parts)
    start = 0
    for index in range(parts):
        length = base + (1 if index < remainder else 0)
        if length:
            chunks.append(items[start : start + length])
        start += length
    return chunks


def _worker_adjacency(
    hypergraph: Hypergraph, projection: Optional[NeighborhoodProvider]
) -> AdjacencyArrays:
    """CSR adjacency arrays to ship to the workers.

    A provider without arrays (e.g. a budgeted LazyProjection) cannot be
    split across workers, so a full projection is built instead — matching
    the pre-fastcore process backend, whose workers always re-projected the
    whole hypergraph. Results are identical either way.
    """
    if projection is not None:
        arrays = fast_adjacency(projection)
        if arrays is not None:
            return arrays
    return project(hypergraph).adjacency_arrays()


def _fan_out(
    backend: str,
    num_workers: int,
    worker,
    csr: HypergraphCSR,
    adjacency: AdjacencyArrays,
    chunks: Sequence[Sequence],
) -> List[MotifCounts]:
    """Run ``worker(csr, adjacency, chunk)`` for every chunk on the backend.

    Both arguments are plain-array containers, so the process backend ships
    NumPy buffers only; the thread backend shares them directly.
    """
    with make_executor(backend, num_workers) as executor:
        futures = [
            executor.submit(worker, csr, adjacency, chunk) for chunk in chunks
        ]
        return [future.result() for future in futures]


# ------------------------------------------------------------------- MoCHy-E
def _exact_worker(
    csr: HypergraphCSR, adjacency: AdjacencyArrays, indices: Sequence[int]
) -> MotifCounts:
    return MotifCounts(count_exact_batched(csr, adjacency, indices))


def count_exact_parallel(
    hypergraph: Hypergraph,
    num_workers: int = 2,
    projection: Optional[NeighborhoodProvider] = None,
    backend: str = BACKEND_PROCESS,
) -> MotifCounts:
    """Exact counts using *num_workers* workers.

    The projection is built once in the parent; hyperedge indices are split
    into contiguous chunks and each worker runs the batched MoCHy-E kernel
    restricted to its chunk over the shipped CSR arrays. The per-worker
    counters are summed; results are identical to
    :func:`repro.counting.count_exact`.
    """
    require_positive_int(num_workers, "num_workers")
    _check_backend(backend)
    if num_workers == 1 or hypergraph.num_hyperedges < 2 * num_workers:
        return count_exact(hypergraph, projection)
    chunks = _split_evenly(list(range(hypergraph.num_hyperedges)), num_workers)
    if (
        backend == BACKEND_THREAD
        and projection is not None
        and fast_adjacency(projection) is None
    ):
        # Threads can share a budgeted provider (e.g. LazyProjection) without
        # materializing the full projection — preserve its memory bound by
        # running the provider-agnostic counter per chunk.
        with make_executor(backend, num_workers) as executor:
            futures = [
                executor.submit(count_exact, hypergraph, projection, chunk)
                for chunk in chunks
            ]
            return aggregate_counts(future.result() for future in futures)
    partials = _fan_out(
        backend,
        num_workers,
        _exact_worker,
        hypergraph.csr(),
        _worker_adjacency(hypergraph, projection),
        chunks,
    )
    return aggregate_counts(partials)


# ------------------------------------------------------------------- MoCHy-A
def _edge_sampling_worker(
    csr: HypergraphCSR, adjacency: AdjacencyArrays, sample: Sequence[int]
) -> MotifCounts:
    """Raw (unscaled) increments for one chunk of sampled hyperedges."""
    return MotifCounts(count_containing_batched(csr, adjacency, sample))


def count_approx_edge_sampling_parallel(
    hypergraph: Hypergraph,
    num_samples: int,
    num_workers: int = 2,
    seed: SeedLike = None,
    backend: str = BACKEND_PROCESS,
    projection: Optional[NeighborhoodProvider] = None,
) -> MotifCounts:
    """MoCHy-A with the sample split across *num_workers* workers."""
    require_positive_int(num_samples, "num_samples")
    require_positive_int(num_workers, "num_workers")
    _check_backend(backend)
    if hypergraph.num_hyperedges == 0:
        raise SamplingError("cannot sample hyperedges from an empty hypergraph")
    rng = ensure_rng(seed)
    sample = rng.integers(0, hypergraph.num_hyperedges, size=num_samples).tolist()
    if num_workers == 1:
        return count_approx_edge_sampling(
            hypergraph,
            num_samples,
            projection=projection,
            seed=None,
            sampled_indices=sample,
        )
    chunks = _split_evenly(sample, num_workers)
    partials = _fan_out(
        backend,
        num_workers,
        _edge_sampling_worker,
        hypergraph.csr(),
        _worker_adjacency(hypergraph, projection),
        chunks,
    )
    raw = aggregate_counts(partials)
    # Rescale once over the full sample: each instance is counted 3s/|E| times
    # in expectation (Theorem 2).
    return raw.scaled(hypergraph.num_hyperedges / (3.0 * num_samples))


# ------------------------------------------------------------------ MoCHy-A+
def _wedge_sampling_worker(
    csr: HypergraphCSR,
    adjacency: AdjacencyArrays,
    sample: Sequence[Tuple[int, int]],
) -> MotifCounts:
    """Raw (unscaled) increments for one chunk of sampled hyperwedges."""
    return MotifCounts(count_wedges_batched(csr, adjacency, sample))


def count_approx_wedge_sampling_parallel(
    hypergraph: Hypergraph,
    num_samples: int,
    num_workers: int = 2,
    seed: SeedLike = None,
    backend: str = BACKEND_PROCESS,
    projection: Optional[NeighborhoodProvider] = None,
) -> MotifCounts:
    """MoCHy-A+ with the hyperwedge sample split across *num_workers* workers."""
    require_positive_int(num_samples, "num_samples")
    require_positive_int(num_workers, "num_workers")
    _check_backend(backend)
    if projection is None:
        projection = project(hypergraph)
    hyperwedges = projection.hyperwedge_list()
    if not hyperwedges:
        raise SamplingError("the hypergraph has no hyperwedges")
    rng = ensure_rng(seed)
    positions = rng.integers(0, len(hyperwedges), size=num_samples)
    sample = [hyperwedges[int(position)] for position in positions]
    if num_workers == 1:
        return count_approx_wedge_sampling(
            hypergraph,
            num_samples,
            projection=projection,
            hyperwedges=hyperwedges,
            sampled_wedges=sample,
        )
    chunks = _split_evenly(sample, num_workers)
    partials = _fan_out(
        backend,
        num_workers,
        _wedge_sampling_worker,
        hypergraph.csr(),
        _worker_adjacency(hypergraph, projection),
        chunks,
    )
    raw = aggregate_counts(partials)
    return _rescale(raw, len(hyperwedges), num_samples)
