"""Parallel MoCHy counters (paper Section 3.4, Figure 10).

The paper parallelizes all MoCHy versions by letting threads process different
hyperedges (MoCHy-E / MoCHy-A) or hyperwedges (MoCHy-A+) independently and
summing the per-thread counters once at the end. The same structure is used
here with ``concurrent.futures``:

* ``ProcessPoolExecutor`` (the default) gives real speedups for CPU-bound
  pure-Python counting, at the cost of pickling the hypergraph to each worker;
* ``ThreadPoolExecutor`` mirrors the paper's shared-memory threading and is
  useful when the GIL is released (or simply to validate the decomposition).

Correctness does not depend on the executor: the work decomposition assigns
each h-motif instance to exactly one worker (MoCHy-E) or preserves the i.i.d.
sampling semantics (MoCHy-A / MoCHy-A+).
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.counting.edge_sampling import count_approx_edge_sampling
from repro.counting.exact import count_exact
from repro.counting.wedge_sampling import count_approx_wedge_sampling
from repro.exceptions import SamplingError
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts, aggregate_counts
from repro.projection.builder import project
from repro.projection.projected_graph import ProjectedGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int

#: Executor backends supported by the parallel counters.
BACKEND_PROCESS = "process"
BACKEND_THREAD = "thread"
_BACKENDS = (BACKEND_PROCESS, BACKEND_THREAD)


def _make_executor(backend: str, num_workers: int) -> Executor:
    if backend == BACKEND_PROCESS:
        return ProcessPoolExecutor(max_workers=num_workers)
    if backend == BACKEND_THREAD:
        return ThreadPoolExecutor(max_workers=num_workers)
    raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")


def _split_evenly(items: Sequence, parts: int) -> List[Sequence]:
    """Split *items* into at most *parts* non-empty contiguous chunks."""
    parts = min(parts, len(items)) if items else 1
    chunks: List[Sequence] = []
    base, remainder = divmod(len(items), parts)
    start = 0
    for index in range(parts):
        length = base + (1 if index < remainder else 0)
        if length:
            chunks.append(items[start : start + length])
        start += length
    return chunks


# ------------------------------------------------------------------- MoCHy-E
def _exact_worker(
    hypergraph: Hypergraph, indices: Sequence[int]
) -> MotifCounts:
    projection = project(hypergraph)
    return count_exact(hypergraph, projection, hyperedge_indices=indices)


def count_exact_parallel(
    hypergraph: Hypergraph,
    num_workers: int = 2,
    projection: Optional[ProjectedGraph] = None,
    backend: str = BACKEND_PROCESS,
) -> MotifCounts:
    """Exact counts using *num_workers* workers.

    Hyperedge indices are split into contiguous chunks; each worker runs
    MoCHy-E restricted to its chunk, and the per-worker counters are summed.
    Results are identical to :func:`repro.counting.count_exact`.
    """
    require_positive_int(num_workers, "num_workers")
    if num_workers == 1 or hypergraph.num_hyperedges < 2 * num_workers:
        return count_exact(hypergraph, projection)
    indices = list(range(hypergraph.num_hyperedges))
    chunks = _split_evenly(indices, num_workers)
    if backend == BACKEND_THREAD:
        # Threads can share one projection; build it once.
        shared = projection if projection is not None else project(hypergraph)
        with _make_executor(backend, num_workers) as executor:
            futures = [
                executor.submit(count_exact, hypergraph, shared, chunk)
                for chunk in chunks
            ]
            partials = [future.result() for future in futures]
    else:
        with _make_executor(backend, num_workers) as executor:
            futures = [
                executor.submit(_exact_worker, hypergraph, chunk) for chunk in chunks
            ]
            partials = [future.result() for future in futures]
    return aggregate_counts(partials)


# ------------------------------------------------------------------- MoCHy-A
def _edge_sampling_worker(
    hypergraph: Hypergraph, sample: Sequence[int]
) -> MotifCounts:
    projection = project(hypergraph)
    # Return raw (unscaled) increments: rescaling happens once at the end.
    raw = count_approx_edge_sampling(
        hypergraph,
        num_samples=len(sample),
        projection=projection,
        sampled_indices=list(sample),
    )
    # count_approx_edge_sampling rescales by |E| / (3 * len(sample)); undo it so
    # the final rescale over the full sample count is applied exactly once.
    return raw.scaled(3.0 * len(sample) / hypergraph.num_hyperedges)


def count_approx_edge_sampling_parallel(
    hypergraph: Hypergraph,
    num_samples: int,
    num_workers: int = 2,
    seed: SeedLike = None,
    backend: str = BACKEND_PROCESS,
) -> MotifCounts:
    """MoCHy-A with the sample split across *num_workers* workers."""
    require_positive_int(num_samples, "num_samples")
    require_positive_int(num_workers, "num_workers")
    if hypergraph.num_hyperedges == 0:
        raise SamplingError("cannot sample hyperedges from an empty hypergraph")
    rng = ensure_rng(seed)
    sample = rng.integers(0, hypergraph.num_hyperedges, size=num_samples).tolist()
    if num_workers == 1:
        return count_approx_edge_sampling(
            hypergraph, num_samples, seed=None, sampled_indices=sample
        )
    chunks = _split_evenly(sample, num_workers)
    with _make_executor(backend, num_workers) as executor:
        futures = [
            executor.submit(_edge_sampling_worker, hypergraph, chunk)
            for chunk in chunks
        ]
        partials = [future.result() for future in futures]
    raw = aggregate_counts(partials)
    return raw.scaled(hypergraph.num_hyperedges / (3.0 * num_samples))


# ------------------------------------------------------------------ MoCHy-A+
def _wedge_sampling_worker(
    hypergraph: Hypergraph, sample: Sequence[Tuple[int, int]]
) -> MotifCounts:
    """Raw (unscaled) increments for one chunk of sampled hyperwedges."""
    from repro.counting.wedge_sampling import _accumulate_instances_containing_wedge

    projection = project(hypergraph)
    raw = MotifCounts.zeros()
    for i, j in sample:
        _accumulate_instances_containing_wedge(hypergraph, projection, int(i), int(j), raw)
    return raw


def count_approx_wedge_sampling_parallel(
    hypergraph: Hypergraph,
    num_samples: int,
    num_workers: int = 2,
    seed: SeedLike = None,
    backend: str = BACKEND_PROCESS,
    projection: Optional[ProjectedGraph] = None,
) -> MotifCounts:
    """MoCHy-A+ with the hyperwedge sample split across *num_workers* workers."""
    require_positive_int(num_samples, "num_samples")
    require_positive_int(num_workers, "num_workers")
    if projection is None:
        projection = project(hypergraph)
    hyperwedges = projection.hyperwedge_list()
    if not hyperwedges:
        raise SamplingError("the hypergraph has no hyperwedges")
    rng = ensure_rng(seed)
    positions = rng.integers(0, len(hyperwedges), size=num_samples)
    sample = [hyperwedges[int(position)] for position in positions]
    if num_workers == 1:
        return count_approx_wedge_sampling(
            hypergraph,
            num_samples,
            projection=projection,
            hyperwedges=hyperwedges,
            sampled_wedges=sample,
        )
    chunks = _split_evenly(sample, num_workers)
    with _make_executor(backend, num_workers) as executor:
        futures = [
            executor.submit(_wedge_sampling_worker, hypergraph, chunk)
            for chunk in chunks
        ]
        partials = [future.result() for future in futures]
    raw = aggregate_counts(partials)
    from repro.motifs.patterns import NUM_MOTIFS, open_motif_indices

    open_set = set(open_motif_indices())
    factors = {
        index: len(hyperwedges) / ((2.0 if index in open_set else 3.0) * num_samples)
        for index in range(1, NUM_MOTIFS + 1)
    }
    return raw.scaled_per_motif(factors)
