"""Shared instance-classification helper for the MoCHy counters.

Every counter ultimately needs ``h({e_i, e_j, e_k})`` for triples drawn from
the projected graph. This module centralizes that step so the exact and
approximate counters cannot drift apart: hyperedge sizes come from the
hypergraph, pairwise overlaps from the projection (hyperwedge weights ``ω``),
and the triple overlap is computed by scanning the smallest hyperedge
(Lemma 2).
"""

from __future__ import annotations

from typing import Protocol

from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.classify import classify_from_cardinalities, triple_overlap_size


class NeighborhoodProvider(Protocol):
    """The projection interface the counters rely on.

    Both :class:`repro.projection.ProjectedGraph` and
    :class:`repro.projection.LazyProjection` satisfy it. Providers that can
    additionally expose CSR adjacency arrays (via an ``adjacency_arrays()``
    method) are routed through the batched fast-core kernels; see
    :func:`fast_adjacency`.
    """

    def neighbors(self, i: int) -> dict:  # pragma: no cover - protocol
        ...

    def overlap(self, i: int, j: int) -> int:  # pragma: no cover - protocol
        ...


def fast_adjacency(projection: NeighborhoodProvider):
    """The provider's CSR adjacency arrays, or ``None`` if it has none.

    Any provider exposing ``adjacency_arrays()`` (today
    :class:`repro.projection.ProjectedGraph`) yields a fully materialized
    :class:`~repro.fastcore.projection.AdjacencyArrays` — the picklable form
    the parallel drivers ship to workers and the compiled backend requires.
    """
    getter = getattr(projection, "adjacency_arrays", None)
    return getter() if getter is not None else None


#: Methods a provider must expose to drive the batched block kernels.
_KERNEL_SOURCE_METHODS = ("gather_rows", "row_lengths", "pair_weights")


def kernel_source(projection: NeighborhoodProvider):
    """A block-kernel source for *projection*, or ``None`` for the fallback.

    This is the single dispatch seam between the per-triple fallback loops
    and the batched fast-core kernels. Full projections resolve to their
    :class:`~repro.fastcore.projection.AdjacencyArrays`; any other provider
    implementing the gather/lookup interface (today
    :class:`repro.projection.LazyProjection`) is consumed directly, so the
    memory-budgeted projection runs the same vectorized sweeps. Providers
    with neither take the per-triple reference path.
    """
    arrays = fast_adjacency(projection)
    if arrays is not None:
        return arrays
    if all(hasattr(projection, name) for name in _KERNEL_SOURCE_METHODS):
        return projection
    return None


def classify_triple(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    i: int,
    j: int,
    k: int,
) -> int:
    """Motif index of the instance ``{e_i, e_j, e_k}``.

    The caller is responsible for ensuring the triple is connected (which is
    guaranteed when ``j`` and ``k`` are drawn from neighborhoods as in the
    MoCHy algorithms); a disconnected or degenerate triple raises the same
    exceptions as :func:`repro.motifs.classify_instance`.
    """
    edge_i = hypergraph.hyperedge(i)
    edge_j = hypergraph.hyperedge(j)
    edge_k = hypergraph.hyperedge(k)
    # Query overlaps from the endpoints whose neighborhoods the calling
    # algorithm has already touched (i and j): with a lazy projection this
    # avoids materializing the neighborhood of every candidate e_k.
    overlap_ij = projection.overlap(i, j)
    overlap_jk = projection.overlap(j, k)
    overlap_ki = projection.overlap(i, k)
    overlap_ijk = triple_overlap_size(edge_i, edge_j, edge_k)
    return classify_from_cardinalities(
        len(edge_i),
        len(edge_j),
        len(edge_k),
        overlap_ij,
        overlap_jk,
        overlap_ki,
        overlap_ijk,
    )
