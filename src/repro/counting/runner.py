"""High-level entry point for h-motif counting.

:func:`count_motifs` dispatches to the requested MoCHy variant with sensible
defaults, handling projection construction and sample-size selection from a
sampling ratio. It is the function most users (and the CLI, examples and
benchmarks) call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.counting.edge_sampling import count_approx_edge_sampling
from repro.counting.exact import count_exact
from repro.counting.parallel import (
    count_approx_edge_sampling_parallel,
    count_approx_wedge_sampling_parallel,
    count_exact_parallel,
)
from repro.counting.wedge_sampling import count_approx_wedge_sampling
from repro.exceptions import SamplingError
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.projection.builder import project
from repro.projection.projected_graph import ProjectedGraph
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer

#: Supported algorithm names.
ALGORITHM_EXACT = "exact"
ALGORITHM_EDGE_SAMPLING = "edge-sampling"
ALGORITHM_WEDGE_SAMPLING = "wedge-sampling"
ALGORITHMS = (ALGORITHM_EXACT, ALGORITHM_EDGE_SAMPLING, ALGORITHM_WEDGE_SAMPLING)

#: Aliases matching the paper's algorithm names.
ALGORITHM_ALIASES = {
    "mochy-e": ALGORITHM_EXACT,
    "mochy-a": ALGORITHM_EDGE_SAMPLING,
    "mochy-a+": ALGORITHM_WEDGE_SAMPLING,
    ALGORITHM_EXACT: ALGORITHM_EXACT,
    ALGORITHM_EDGE_SAMPLING: ALGORITHM_EDGE_SAMPLING,
    ALGORITHM_WEDGE_SAMPLING: ALGORITHM_WEDGE_SAMPLING,
}


@dataclass(frozen=True)
class CountingRun:
    """Result of one counting run, with timing metadata."""

    counts: MotifCounts
    algorithm: str
    num_samples: Optional[int]
    projection_seconds: float
    counting_seconds: float

    @property
    def total_seconds(self) -> float:
        """Projection plus counting time."""
        return self.projection_seconds + self.counting_seconds


def resolve_algorithm(name: str) -> str:
    """Normalize an algorithm name or paper alias (case-insensitive)."""
    key = name.strip().lower()
    if key not in ALGORITHM_ALIASES:
        raise SamplingError(
            f"unknown algorithm {name!r}; choose from "
            f"{sorted(set(ALGORITHM_ALIASES))}"
        )
    return ALGORITHM_ALIASES[key]


def count_motifs(
    hypergraph: Hypergraph,
    algorithm: str = ALGORITHM_EXACT,
    num_samples: Optional[int] = None,
    sampling_ratio: Optional[float] = None,
    num_workers: int = 1,
    seed: SeedLike = None,
    projection: Optional[ProjectedGraph] = None,
) -> MotifCounts:
    """Count (or estimate) the instances of every h-motif in *hypergraph*.

    Parameters
    ----------
    algorithm:
        ``"exact"`` (MoCHy-E), ``"edge-sampling"`` (MoCHy-A) or
        ``"wedge-sampling"`` (MoCHy-A+); the paper names are accepted as
        aliases.
    num_samples / sampling_ratio:
        For the approximate algorithms, either an explicit sample count or a
        ratio of the population size (``s = ratio · |E|`` for MoCHy-A,
        ``r = ratio · |∧|`` for MoCHy-A+). Exactly one may be given; the
        default ratio is 0.1.
    num_workers:
        Use the parallel drivers when greater than one.
    """
    return run_counting(
        hypergraph,
        algorithm=algorithm,
        num_samples=num_samples,
        sampling_ratio=sampling_ratio,
        num_workers=num_workers,
        seed=seed,
        projection=projection,
    ).counts


def run_counting(
    hypergraph: Hypergraph,
    algorithm: str = ALGORITHM_EXACT,
    num_samples: Optional[int] = None,
    sampling_ratio: Optional[float] = None,
    num_workers: int = 1,
    seed: SeedLike = None,
    projection: Optional[ProjectedGraph] = None,
) -> CountingRun:
    """As :func:`count_motifs`, but also reporting timing metadata."""
    algorithm = resolve_algorithm(algorithm)
    if num_samples is not None and sampling_ratio is not None:
        raise SamplingError("pass either num_samples or sampling_ratio, not both")

    with Timer() as projection_timer:
        if projection is None:
            projection = project(hypergraph)
    resolved_samples = _resolve_samples(
        algorithm, hypergraph, projection, num_samples, sampling_ratio
    )

    with Timer() as counting_timer:
        if algorithm == ALGORITHM_EXACT:
            if num_workers > 1:
                counts = count_exact_parallel(hypergraph, num_workers, projection)
            else:
                counts = count_exact(hypergraph, projection)
        elif algorithm == ALGORITHM_EDGE_SAMPLING:
            if num_workers > 1:
                counts = count_approx_edge_sampling_parallel(
                    hypergraph,
                    resolved_samples,
                    num_workers,
                    seed=seed,
                    projection=projection,
                )
            else:
                counts = count_approx_edge_sampling(
                    hypergraph, resolved_samples, projection, seed=seed
                )
        else:
            if num_workers > 1:
                counts = count_approx_wedge_sampling_parallel(
                    hypergraph,
                    resolved_samples,
                    num_workers,
                    seed=seed,
                    projection=projection,
                )
            else:
                counts = count_approx_wedge_sampling(
                    hypergraph, resolved_samples, projection, seed=seed
                )
    return CountingRun(
        counts=counts,
        algorithm=algorithm,
        num_samples=resolved_samples if algorithm != ALGORITHM_EXACT else None,
        projection_seconds=projection_timer.elapsed,
        counting_seconds=counting_timer.elapsed,
    )


def _resolve_samples(
    algorithm: str,
    hypergraph: Hypergraph,
    projection: ProjectedGraph,
    num_samples: Optional[int],
    sampling_ratio: Optional[float],
) -> Optional[int]:
    if algorithm == ALGORITHM_EXACT:
        return None
    if num_samples is not None:
        if num_samples <= 0:
            raise SamplingError(f"num_samples must be positive, got {num_samples}")
        return int(num_samples)
    ratio = 0.1 if sampling_ratio is None else float(sampling_ratio)
    if ratio <= 0:
        raise SamplingError(f"sampling_ratio must be positive, got {ratio}")
    if algorithm == ALGORITHM_EDGE_SAMPLING:
        population = hypergraph.num_hyperedges
    else:
        population = projection.num_hyperwedges
    return max(1, int(round(ratio * population)))
