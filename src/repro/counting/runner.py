"""Legacy high-level entry points for h-motif counting.

.. deprecated::
    :func:`count_motifs` and :func:`run_counting` are kept as thin shims over
    :class:`repro.api.MotifEngine` so existing callers, tests and benchmarks
    keep working bit-identically. New code should construct an engine and a
    :class:`repro.api.CountSpec` directly — the engine caches the projection
    and memoizes results across workflows, which these one-shot functions
    cannot.

The algorithm-name constants and :func:`resolve_algorithm` remain the
canonical registry of MoCHy variant names (the spec layer builds on them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import SamplingError
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.projection.projected_graph import ProjectedGraph
from repro.utils.rng import SeedLike

#: Supported algorithm names.
ALGORITHM_EXACT = "exact"
ALGORITHM_EDGE_SAMPLING = "edge-sampling"
ALGORITHM_WEDGE_SAMPLING = "wedge-sampling"
ALGORITHMS = (ALGORITHM_EXACT, ALGORITHM_EDGE_SAMPLING, ALGORITHM_WEDGE_SAMPLING)

#: Aliases matching the paper's algorithm names.
ALGORITHM_ALIASES = {
    "mochy-e": ALGORITHM_EXACT,
    "mochy-a": ALGORITHM_EDGE_SAMPLING,
    "mochy-a+": ALGORITHM_WEDGE_SAMPLING,
    ALGORITHM_EXACT: ALGORITHM_EXACT,
    ALGORITHM_EDGE_SAMPLING: ALGORITHM_EDGE_SAMPLING,
    ALGORITHM_WEDGE_SAMPLING: ALGORITHM_WEDGE_SAMPLING,
}


@dataclass(frozen=True)
class CountingRun:
    """Result of one counting run, with timing metadata."""

    counts: MotifCounts
    algorithm: str
    num_samples: Optional[int]
    projection_seconds: float
    counting_seconds: float

    @property
    def total_seconds(self) -> float:
        """Projection plus counting time."""
        return self.projection_seconds + self.counting_seconds


def resolve_algorithm(name: str) -> str:
    """Normalize an algorithm name or paper alias (case-insensitive)."""
    key = name.strip().lower()
    if key not in ALGORITHM_ALIASES:
        raise SamplingError(
            f"unknown algorithm {name!r}; choose from "
            f"{sorted(set(ALGORITHM_ALIASES))}"
        )
    return ALGORITHM_ALIASES[key]


def count_motifs(
    hypergraph: Hypergraph,
    algorithm: str = ALGORITHM_EXACT,
    num_samples: Optional[int] = None,
    sampling_ratio: Optional[float] = None,
    num_workers: int = 1,
    seed: SeedLike = None,
    projection: Optional[ProjectedGraph] = None,
) -> MotifCounts:
    """Count (or estimate) the instances of every h-motif in *hypergraph*.

    .. deprecated:: use :meth:`repro.api.MotifEngine.count`; this shim builds
       a throwaway engine per call.

    Parameters
    ----------
    algorithm:
        ``"exact"`` (MoCHy-E), ``"edge-sampling"`` (MoCHy-A) or
        ``"wedge-sampling"`` (MoCHy-A+); the paper names are accepted as
        aliases.
    num_samples / sampling_ratio:
        For the approximate algorithms, either an explicit sample count or a
        ratio of the population size (``s = ratio · |E|`` for MoCHy-A,
        ``r = ratio · |∧|`` for MoCHy-A+). Exactly one may be given; the
        default ratio is 0.1.
    num_workers:
        Use the parallel drivers when greater than one.
    """
    return run_counting(
        hypergraph,
        algorithm=algorithm,
        num_samples=num_samples,
        sampling_ratio=sampling_ratio,
        num_workers=num_workers,
        seed=seed,
        projection=projection,
    ).counts


def run_counting(
    hypergraph: Hypergraph,
    algorithm: str = ALGORITHM_EXACT,
    num_samples: Optional[int] = None,
    sampling_ratio: Optional[float] = None,
    num_workers: int = 1,
    seed: SeedLike = None,
    projection: Optional[ProjectedGraph] = None,
) -> CountingRun:
    """As :func:`count_motifs`, but also reporting timing metadata.

    .. deprecated:: use :meth:`repro.api.MotifEngine.count`, whose
       :class:`repro.api.CountResult` carries the same metadata plus
       projection-cache information.
    """
    # Imported here: repro.api builds on the counting layer, so a module-level
    # import would be circular.
    from repro.api.config import CountSpec
    from repro.api.engine import MotifEngine

    spec = CountSpec(
        algorithm=algorithm,
        num_samples=num_samples,
        sampling_ratio=sampling_ratio,
        num_workers=num_workers,
        seed=seed,
    )
    result = MotifEngine(hypergraph, projection=projection).count(spec)
    return CountingRun(
        counts=result.counts,
        algorithm=result.algorithm,
        num_samples=result.num_samples,
        projection_seconds=result.projection_seconds,
        counting_seconds=result.counting_seconds,
    )
