"""MoCHy-A+: approximate counting via hyperwedge sampling (paper Algorithm 5).

``r`` hyperwedges (overlapping hyperedge pairs) are sampled uniformly at
random with replacement. For each sampled hyperwedge ``∧_ij``, every h-motif
instance containing both ``e_i`` and ``e_j`` is visited by scanning
``e_k ∈ N(e_i) ∪ N(e_j) \\ {e_i, e_j}``. A closed instance contains three
hyperwedges and an open instance two, so the raw counters are rescaled by
``|∧| / (3r)`` and ``|∧| / (2r)`` respectively, giving unbiased estimates
(Theorem 4). MoCHy-A+ has the same asymptotic cost as MoCHy-A at equal
sampling ratios but strictly smaller variance (Section 3.3), which is the
paper's headline algorithmic result.

Both the array-backed :class:`~repro.projection.ProjectedGraph` and the
budgeted :class:`~repro.projection.LazyProjection` (the point of
Section 3.4) run the per-wedge visit through the batched fast-core kernel
(:func:`repro.fastcore.count_wedges_batched`) — for the lazy projection only
the row fetches honor the memoization budget; other neighborhood providers
use the per-triple fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.counting.classification import (
    NeighborhoodProvider,
    classify_triple,
    kernel_source,
)
from repro.exceptions import SamplingError
from repro.fastcore.kernels import count_wedges_batched
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS, open_motif_indices
from repro.projection.builder import project
from repro.projection.lazy import LazyProjection
from repro.projection.projected_graph import ProjectedGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class WedgeSamplingResult:
    """Outcome of one MoCHy-A+ run."""

    estimates: MotifCounts
    num_samples: int
    num_hyperwedges: int
    raw_increments: float


def count_approx_wedge_sampling(
    hypergraph: Hypergraph,
    num_samples: int,
    projection: Optional[NeighborhoodProvider] = None,
    seed: SeedLike = None,
    hyperwedges: Optional[Sequence[Tuple[int, int]]] = None,
    sampled_wedges: Optional[Sequence[Tuple[int, int]]] = None,
) -> MotifCounts:
    """Unbiased estimates of h-motif counts via hyperwedge sampling (MoCHy-A+)."""
    return run_wedge_sampling(
        hypergraph, num_samples, projection, seed, hyperwedges, sampled_wedges
    ).estimates


def run_wedge_sampling(
    hypergraph: Hypergraph,
    num_samples: int,
    projection: Optional[NeighborhoodProvider] = None,
    seed: SeedLike = None,
    hyperwedges: Optional[Sequence[Tuple[int, int]]] = None,
    sampled_wedges: Optional[Sequence[Tuple[int, int]]] = None,
) -> WedgeSamplingResult:
    """As :func:`count_approx_wedge_sampling` but returning sampling metadata.

    Parameters
    ----------
    hypergraph:
        The input hypergraph.
    num_samples:
        The number ``r`` of hyperwedges sampled with replacement; must be >= 1.
    projection:
        Pre-built projection. When a :class:`LazyProjection` is supplied the
        on-the-fly variant of Section 3.4 is effectively used: neighborhoods
        are computed only for hyperedges touched by sampled hyperwedges
        (except for the initial hyperwedge enumeration when *hyperwedges* is
        not supplied).
    seed:
        Randomness for sampling.
    hyperwedges:
        The hyperwedge list ``∧``. Computed from the projection when omitted.
    sampled_wedges:
        Explicit sample of hyperwedges (for tests / parallel driver); when
        provided, ``num_samples`` must equal its length.
    """
    require_positive_int(num_samples, "num_samples")
    if projection is None:
        projection = project(hypergraph)
    if hyperwedges is None:
        hyperwedges = _hyperwedge_list(projection)
    num_hyperwedges = len(hyperwedges)
    if num_hyperwedges == 0:
        raise SamplingError(
            "the hypergraph has no hyperwedges (no two hyperedges overlap); "
            "there are no h-motif instances to estimate"
        )
    if sampled_wedges is None:
        rng = ensure_rng(seed)
        positions = rng.integers(0, num_hyperwedges, size=num_samples)
        sampled_wedges = [hyperwedges[int(position)] for position in positions]
    elif len(sampled_wedges) != num_samples:
        raise SamplingError(
            f"sampled_wedges has length {len(sampled_wedges)} but num_samples is {num_samples}"
        )

    raw = accumulate_containing_wedges(hypergraph, projection, sampled_wedges)
    raw_total = raw.total()
    estimates = _rescale(raw, num_hyperwedges, num_samples)
    return WedgeSamplingResult(
        estimates=estimates,
        num_samples=num_samples,
        num_hyperwedges=num_hyperwedges,
        raw_increments=raw_total,
    )


def _hyperwedge_list(
    projection: NeighborhoodProvider,
) -> List[Tuple[int, int]]:
    if isinstance(projection, (ProjectedGraph, LazyProjection)):
        return projection.hyperwedge_list()
    raise SamplingError(
        "cannot enumerate hyperwedges from this projection type; "
        "pass the hyperwedge list explicitly"
    )


def accumulate_containing_wedges(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    wedges: Sequence[Tuple[int, int]],
) -> MotifCounts:
    """Raw counts over all instances containing each sampled hyperwedge."""
    source = kernel_source(projection)
    if source is not None:
        return MotifCounts(
            count_wedges_batched(
                hypergraph.csr(), source, [(int(i), int(j)) for i, j in wedges]
            )
        )
    counts = MotifCounts.zeros()
    for i, j in wedges:
        _accumulate_instances_containing_wedge(
            hypergraph, projection, int(i), int(j), counts
        )
    return counts


def _accumulate_instances_containing_wedge(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    i: int,
    j: int,
    counts: MotifCounts,
) -> None:
    """Per-triple fallback: visit every instance containing ``∧_ij`` once."""
    neighbors_i = projection.neighbors(i)
    neighbors_j = projection.neighbors(j)
    candidates = set(neighbors_i)
    candidates.update(neighbors_j)
    candidates.discard(i)
    candidates.discard(j)
    for k in candidates:
        motif = classify_triple(hypergraph, projection, i, j, k)
        counts.increment(motif)


def _rescale(raw: MotifCounts, num_hyperwedges: int, num_samples: int) -> MotifCounts:
    open_indices = set(open_motif_indices())
    factors = {}
    for index in range(1, NUM_MOTIFS + 1):
        if index in open_indices:
            factors[index] = num_hyperwedges / (2.0 * num_samples)
        else:
            factors[index] = num_hyperwedges / (3.0 * num_samples)
    return raw.scaled_per_motif(factors)
