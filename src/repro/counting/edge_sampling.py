"""MoCHy-A: approximate counting via hyperedge sampling (paper Algorithm 4).

``s`` hyperedges are sampled uniformly at random with replacement. For each
sampled hyperedge ``e_i``, every h-motif instance containing ``e_i`` is
visited exactly once (by iterating over ``e_j ∈ N(e_i)`` and
``e_k ∈ N(e_i) ∪ N(e_j)`` with the ``k ∉ N(e_i) or j < k`` filter) and the
corresponding counter is incremented. Since each instance contains three
hyperedges, it is counted ``3s/|E|`` times in expectation, so multiplying by
``|E| / (3s)`` yields an unbiased estimate (Theorem 2).

Both the array-backed :class:`~repro.projection.ProjectedGraph` and the
budgeted lazy projection run the per-sample visit through the batched
fast-core kernel (:func:`repro.fastcore.count_containing_batched`); other
neighborhood providers use the per-triple fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.counting.classification import (
    NeighborhoodProvider,
    classify_triple,
    kernel_source,
)
from repro.exceptions import SamplingError
from repro.fastcore.kernels import count_containing_batched
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.projection.builder import project
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class EdgeSamplingResult:
    """Outcome of one MoCHy-A run."""

    estimates: MotifCounts
    num_samples: int
    raw_increments: float


def count_approx_edge_sampling(
    hypergraph: Hypergraph,
    num_samples: int,
    projection: Optional[NeighborhoodProvider] = None,
    seed: SeedLike = None,
    sampled_indices: Optional[Sequence[int]] = None,
) -> MotifCounts:
    """Unbiased estimates of h-motif counts via hyperedge sampling (MoCHy-A).

    Parameters
    ----------
    hypergraph:
        The input hypergraph.
    num_samples:
        The number ``s`` of hyperedges sampled with replacement; must be >= 1.
    projection:
        Pre-built projection (full or lazy); built when omitted.
    seed:
        Randomness for sampling.
    sampled_indices:
        Explicit sample of hyperedge indices. Intended for tests and for the
        parallel driver; when provided, ``num_samples`` must equal its length.
    """
    return run_edge_sampling(
        hypergraph, num_samples, projection, seed, sampled_indices
    ).estimates


def run_edge_sampling(
    hypergraph: Hypergraph,
    num_samples: int,
    projection: Optional[NeighborhoodProvider] = None,
    seed: SeedLike = None,
    sampled_indices: Optional[Sequence[int]] = None,
) -> EdgeSamplingResult:
    """As :func:`count_approx_edge_sampling` but returning sampling metadata."""
    require_positive_int(num_samples, "num_samples")
    num_hyperedges = hypergraph.num_hyperedges
    if num_hyperedges == 0:
        raise SamplingError("cannot sample hyperedges from an empty hypergraph")
    if projection is None:
        projection = project(hypergraph)
    if sampled_indices is None:
        rng = ensure_rng(seed)
        sampled_indices = rng.integers(0, num_hyperedges, size=num_samples).tolist()
    elif len(sampled_indices) != num_samples:
        raise SamplingError(
            f"sampled_indices has length {len(sampled_indices)} but num_samples is {num_samples}"
        )

    raw = accumulate_containing(hypergraph, projection, sampled_indices)
    raw_total = raw.total()
    # Rescale: each instance is counted 3s/|E| times in expectation.
    estimates = raw.scaled(num_hyperedges / (3.0 * num_samples))
    return EdgeSamplingResult(
        estimates=estimates, num_samples=num_samples, raw_increments=raw_total
    )


def accumulate_containing(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    anchors: Sequence[int],
) -> MotifCounts:
    """Raw counts over all instances containing each anchor hyperedge.

    Each instance containing an anchor is visited exactly once per occurrence
    of that anchor in *anchors* (duplicates are intentional: sampling is with
    replacement).
    """
    source = kernel_source(projection)
    if source is not None:
        return MotifCounts(
            count_containing_batched(
                hypergraph.csr(), source, [int(anchor) for anchor in anchors]
            )
        )
    counts = MotifCounts.zeros()
    for anchor in anchors:
        _accumulate_instances_containing(hypergraph, projection, int(anchor), counts)
    return counts


def _accumulate_instances_containing(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    i: int,
    counts: MotifCounts,
) -> None:
    """Per-triple fallback: visit every instance containing ``e_i`` once."""
    neighbors_i = projection.neighbors(i)
    neighbor_set = set(neighbors_i)
    for j in neighbors_i:
        neighbors_j = projection.neighbors(j)
        candidates = neighbor_set.union(neighbors_j)
        candidates.discard(i)
        candidates.discard(j)
        for k in candidates:
            if k not in neighbor_set or j < k:
                motif = classify_triple(hypergraph, projection, i, j, k)
                counts.increment(motif)
