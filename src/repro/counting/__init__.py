"""MoCHy counting algorithms: exact, sampling-based, parallel, and analyses."""

from repro.counting.exact import (
    MotifInstance,
    count_exact,
    count_instances_containing,
    enumerate_instances,
)
from repro.counting.edge_sampling import (
    EdgeSamplingResult,
    count_approx_edge_sampling,
    run_edge_sampling,
)
from repro.counting.wedge_sampling import (
    WedgeSamplingResult,
    count_approx_wedge_sampling,
    run_wedge_sampling,
)
from repro.counting.parallel import (
    BACKEND_PROCESS,
    BACKEND_THREAD,
    count_approx_edge_sampling_parallel,
    count_approx_wedge_sampling_parallel,
    count_exact_parallel,
)
from repro.counting.variance import (
    OverlapStatistics,
    compute_overlap_statistics,
    edge_sampling_variance,
    variance_comparison,
    wedge_sampling_variance,
)
from repro.counting.runner import (
    ALGORITHM_EDGE_SAMPLING,
    ALGORITHM_EXACT,
    ALGORITHM_WEDGE_SAMPLING,
    ALGORITHMS,
    CountingRun,
    count_motifs,
    resolve_algorithm,
    run_counting,
)

__all__ = [
    "MotifInstance",
    "count_exact",
    "count_instances_containing",
    "enumerate_instances",
    "EdgeSamplingResult",
    "count_approx_edge_sampling",
    "run_edge_sampling",
    "WedgeSamplingResult",
    "count_approx_wedge_sampling",
    "run_wedge_sampling",
    "BACKEND_PROCESS",
    "BACKEND_THREAD",
    "count_exact_parallel",
    "count_approx_edge_sampling_parallel",
    "count_approx_wedge_sampling_parallel",
    "OverlapStatistics",
    "compute_overlap_statistics",
    "edge_sampling_variance",
    "wedge_sampling_variance",
    "variance_comparison",
    "ALGORITHMS",
    "ALGORITHM_EXACT",
    "ALGORITHM_EDGE_SAMPLING",
    "ALGORITHM_WEDGE_SAMPLING",
    "CountingRun",
    "count_motifs",
    "resolve_algorithm",
    "run_counting",
]
