"""MoCHy-E: exact h-motif counting and enumeration (paper Algorithms 2 and 3).

For every hyperedge ``e_i`` and every unordered pair ``{e_j, e_k}`` of its
neighbors in the projected graph, the triple ``{e_i, e_j, e_k}`` is an h-motif
instance. An open instance (``e_j ∩ e_k = ∅``) is seen only from its center
``e_i``; a closed instance is seen from each of its three hyperedges, so it is
counted only when ``i < min(j, k)``. This guarantees every instance is counted
exactly once. Complexity is ``O(Σ_i |N_{e_i}|² · |e_i|)`` (Theorem 1).

``count_exact`` routes through the batched fast-core kernel
(:func:`repro.fastcore.count_exact_batched`) whenever the projection can
serve the block gather interface — the array-backed
:class:`~repro.projection.ProjectedGraph` *and* the budgeted
:class:`~repro.projection.LazyProjection` both can; any other
:class:`NeighborhoodProvider` falls back to the per-triple enumeration,
which is also kept as the instance-level API (``enumerate_instances``).
All paths visit identical triples and produce bit-identical counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from repro.counting.classification import (
    NeighborhoodProvider,
    classify_triple,
    kernel_source,
)
from repro.fastcore.kernels import count_exact_batched
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.projection.builder import project


@dataclass(frozen=True)
class MotifInstance:
    """One h-motif instance: the three hyperedge indices and its motif id."""

    hyperedges: Tuple[int, int, int]
    motif: int


def count_exact(
    hypergraph: Hypergraph,
    projection: Optional[NeighborhoodProvider] = None,
    hyperedge_indices: Optional[Iterable[int]] = None,
) -> MotifCounts:
    """Exact counts of every h-motif's instances (MoCHy-E).

    Parameters
    ----------
    hypergraph:
        The input hypergraph ``G``.
    projection:
        Pre-built projected graph; built with Algorithm 1 when omitted.
    hyperedge_indices:
        Restrict the outer loop to these hyperedge indices. Used by the
        parallel driver to split work; the filter preserves exactness because
        each instance is attributed to a single "responsible" hyperedge
        (its center for open instances, its minimum index for closed ones).
    """
    if projection is None:
        projection = project(hypergraph)
    source = kernel_source(projection)
    if source is not None:
        return MotifCounts(
            count_exact_batched(hypergraph.csr(), source, hyperedge_indices)
        )
    counts = MotifCounts.zeros()
    for instance in enumerate_instances(hypergraph, projection, hyperedge_indices):
        counts.increment(instance.motif)
    return counts


def enumerate_instances(
    hypergraph: Hypergraph,
    projection: Optional[NeighborhoodProvider] = None,
    hyperedge_indices: Optional[Iterable[int]] = None,
) -> Iterator[MotifInstance]:
    """Enumerate every h-motif instance exactly once (MoCHy-E-ENUM).

    Yields :class:`MotifInstance` objects; this is the per-triple reference
    path — use :func:`count_exact` when only the counts are needed.
    """
    if projection is None:
        projection = project(hypergraph)
    if hyperedge_indices is None:
        hyperedge_indices = range(hypergraph.num_hyperedges)
    for i in hyperedge_indices:
        neighbors = sorted(projection.neighbors(i))
        for position, j in enumerate(neighbors):
            for k in neighbors[position + 1 :]:
                overlap_jk = projection.overlap(j, k)
                if overlap_jk == 0 or i < min(j, k):
                    motif = classify_triple(hypergraph, projection, i, j, k)
                    yield MotifInstance(hyperedges=(i, j, k), motif=motif)


def count_instances_containing(
    hypergraph: Hypergraph,
    hyperedge_index: int,
    projection: Optional[NeighborhoodProvider] = None,
) -> MotifCounts:
    """Counts of instances that contain the given hyperedge.

    This is the per-hyperedge feature used by the hyperedge-prediction
    application (paper Section 4.4, feature set HM26): entry ``t`` is the
    number of h-motif ``t`` instances containing ``e_{hyperedge_index}``.
    Each instance containing the hyperedge is visited exactly once, as in
    MoCHy-A for a single sample (without rescaling).
    """
    from repro.counting.edge_sampling import accumulate_containing

    if projection is None:
        projection = project(hypergraph)
    return accumulate_containing(hypergraph, projection, (int(hyperedge_index),))
