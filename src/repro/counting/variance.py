"""Variance analysis of the MoCHy samplers (paper Theorems 2 and 4).

The variances of the unbiased estimators depend on how many pairs of h-motif
instances share hyperedges (``p_l[t]`` for MoCHy-A) or hyperwedges
(``q_n[t]`` for MoCHy-A+). This module computes those overlap statistics by
exact enumeration (feasible for the small/medium hypergraphs used in tests and
benchmarks) and evaluates the closed-form variance expressions, enabling the
MoCHy-A vs. MoCHy-A+ comparison of Section 3.3 to be verified numerically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.counting.exact import enumerate_instances
from repro.counting.classification import NeighborhoodProvider
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS, motif_is_open
from repro.projection.builder import project


@dataclass(frozen=True)
class OverlapStatistics:
    """Instance-overlap statistics of one hypergraph.

    Attributes
    ----------
    counts:
        Exact motif counts ``M[t]``.
    pairs_sharing_edges:
        ``p_l[t]`` — for each motif ``t``, a dict ``l -> number of unordered
        pairs of its instances sharing exactly ``l`` hyperedges (``l`` in 0..2).
    pairs_sharing_wedges:
        ``q_n[t]`` — for each motif ``t``, a dict ``n -> number of unordered
        pairs of its instances sharing exactly ``n`` hyperwedges (``n`` in 0..1).
    num_hyperedges:
        ``|E|`` of the hypergraph.
    num_hyperwedges:
        ``|∧|`` of the hypergraph.
    """

    counts: MotifCounts
    pairs_sharing_edges: Dict[int, Dict[int, int]]
    pairs_sharing_wedges: Dict[int, Dict[int, int]]
    num_hyperedges: int
    num_hyperwedges: int


def compute_overlap_statistics(
    hypergraph: Hypergraph, projection: Optional[NeighborhoodProvider] = None
) -> OverlapStatistics:
    """Enumerate all instances and compute ``M[t]``, ``p_l[t]`` and ``q_n[t]``.

    For each motif ``t``:

    * ``Σ_e C(c_e, 2)`` over hyperedges ``e`` (where ``c_e`` is the number of
      ``t``-instances containing ``e``) counts pairs sharing one hyperedge once
      and pairs sharing two hyperedges twice, so ``p_1 = Σ_e C(c_e,2) - 2 p_2``;
    * ``p_2 = Σ_{(a,b)} C(c_{ab}, 2)`` over hyperedge pairs contained together;
    * two distinct instances can share at most one hyperwedge, so
      ``q_1 = Σ_w C(c_w, 2)`` over hyperwedges ``w``.
    """
    if projection is None:
        projection = project(hypergraph)
    counts = MotifCounts.zeros()
    per_edge: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    per_pair: Dict[int, Dict[Tuple[int, int], int]] = defaultdict(lambda: defaultdict(int))
    per_wedge: Dict[int, Dict[Tuple[int, int], int]] = defaultdict(lambda: defaultdict(int))

    num_wedges = 0
    if hasattr(projection, "num_hyperwedges"):
        num_wedges = projection.num_hyperwedges
    else:
        num_wedges = len(projection.hyperwedge_list())

    for instance in enumerate_instances(hypergraph, projection):
        motif = instance.motif
        counts.increment(motif)
        i, j, k = instance.hyperedges
        for edge in (i, j, k):
            per_edge[motif][edge] += 1
        for a, b in ((i, j), (j, k), (i, k)):
            pair = (a, b) if a < b else (b, a)
            per_pair[motif][pair] += 1
            if projection.overlap(a, b) > 0:
                per_wedge[motif][pair] += 1

    pairs_sharing_edges: Dict[int, Dict[int, int]] = {}
    pairs_sharing_wedges: Dict[int, Dict[int, int]] = {}
    for motif in range(1, NUM_MOTIFS + 1):
        total = int(counts[motif])
        total_pairs = total * (total - 1) // 2
        share_two = sum(
            value * (value - 1) // 2 for value in per_pair[motif].values()
        )
        weighted = sum(value * (value - 1) // 2 for value in per_edge[motif].values())
        share_one = weighted - 2 * share_two
        share_zero = total_pairs - share_one - share_two
        pairs_sharing_edges[motif] = {0: share_zero, 1: share_one, 2: share_two}
        wedge_one = sum(
            value * (value - 1) // 2 for value in per_wedge[motif].values()
        )
        pairs_sharing_wedges[motif] = {0: total_pairs - wedge_one, 1: wedge_one}

    return OverlapStatistics(
        counts=counts,
        pairs_sharing_edges=pairs_sharing_edges,
        pairs_sharing_wedges=pairs_sharing_wedges,
        num_hyperedges=hypergraph.num_hyperedges,
        num_hyperwedges=num_wedges,
    )


def edge_sampling_variance(
    statistics: OverlapStatistics, motif: int, num_samples: int
) -> float:
    """Theoretical variance of the MoCHy-A estimate for *motif* (Theorem 2, Eq. 5)."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    count = statistics.counts[motif]
    num_edges = statistics.num_hyperedges
    shares = statistics.pairs_sharing_edges[motif]
    first = count * (num_edges - 3) / (3.0 * num_samples)
    second = sum(
        shares[l] * (l * num_edges - 9) for l in (0, 1, 2)
    ) / (9.0 * num_samples)
    return first + second


def wedge_sampling_variance(
    statistics: OverlapStatistics, motif: int, num_samples: int
) -> float:
    """Theoretical variance of the MoCHy-A+ estimate for *motif* (Theorem 4, Eq. 7/8)."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    count = statistics.counts[motif]
    num_wedges = statistics.num_hyperwedges
    shares = statistics.pairs_sharing_wedges[motif]
    if motif_is_open(motif):
        first = count * (num_wedges - 2) / (2.0 * num_samples)
        second = sum(
            shares[n] * (n * num_wedges - 4) for n in (0, 1)
        ) / (4.0 * num_samples)
    else:
        first = count * (num_wedges - 3) / (3.0 * num_samples)
        second = sum(
            shares[n] * (n * num_wedges - 9) for n in (0, 1)
        ) / (9.0 * num_samples)
    return first + second


def variance_comparison(
    statistics: OverlapStatistics, sampling_ratio: float
) -> List[Tuple[int, float, float]]:
    """Per-motif variances of MoCHy-A and MoCHy-A+ at an equal sampling ratio.

    ``sampling_ratio`` is the paper's ``α = s/|E| = r/|∧|``. Returns a list of
    ``(motif, variance_A, variance_A_plus)`` tuples, skipping motifs with no
    instances.
    """
    if sampling_ratio <= 0:
        raise ValueError("sampling_ratio must be positive")
    num_edge_samples = max(1, int(round(sampling_ratio * statistics.num_hyperedges)))
    num_wedge_samples = max(1, int(round(sampling_ratio * statistics.num_hyperwedges)))
    rows: List[Tuple[int, float, float]] = []
    for motif in range(1, NUM_MOTIFS + 1):
        if statistics.counts[motif] == 0:
            continue
        rows.append(
            (
                motif,
                edge_sampling_variance(statistics, motif, num_edge_samples),
                wedge_sampling_variance(statistics, motif, num_wedge_samples),
            )
        )
    return rows
