"""Array-native fast core for the MoCHy reproduction.

``repro.fastcore`` holds the contiguous-array (CSR) data layout and the
batched NumPy kernels that every hot path of the library routes through:

* :mod:`repro.fastcore.csr` — the :class:`HypergraphCSR` layout: hyperedges
  as sorted dense node-id runs plus the transposed node→edge memberships.
* :mod:`repro.fastcore.projection` — Algorithm 1 (hypergraph projection)
  rewritten as array merges (``bincount``/``argsort``/``reduceat``) producing
  CSR adjacency ``(nbr_ptr, nbr_idx, nbr_weight)``, and the picklable
  :class:`AdjacencyArrays` view the counting kernels consume.
* :mod:`repro.fastcore.kernels` — batched h-motif classification: anchors
  are packed into pair-budgeted blocks and each block's candidate triples
  are classified in one vectorized sweep through a precomputed 128-entry
  pattern→motif lookup table (no per-anchor Python iteration).
* :mod:`repro.fastcore.backend` / :mod:`repro.fastcore.compiled` — kernel
  backend selection (``REPRO_KERNEL_BACKEND``, ``--kernel-backend``,
  ``KernelConfig``) and the optional numba-compiled inner loops; pure NumPy
  is always the default fallback.
* :mod:`repro.fastcore.reference` — the seed (object-graph, per-triple)
  implementations, kept as the executable specification for parity tests and
  the ``bench_core_speed`` benchmark.

Exactness argument
------------------
The fast core changes the *data layout*, never the arithmetic: every counter
still visits exactly the triples the paper's algorithms visit, derives the
same seven Venn-region cardinalities from the same sizes/overlaps
(inclusion–exclusion, Lemma 2), and increments counters by 1.0 per instance.
Sums of unit increments are order-independent in floating point, so all
counts are bit-identical to the reference implementations.
"""

from repro.fastcore.backend import (
    ENV_KERNEL_BACKEND,
    KERNEL_BACKEND_CHOICES,
    KERNEL_BACKENDS,
    get_backend,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.fastcore.csr import HypergraphCSR, build_csr
from repro.fastcore.projection import (
    AdjacencyArrays,
    aggregate_cooccurrence,
    aggregate_pair_keys,
    build_projection_arrays,
    gather_row_positions,
    pairs_to_symmetric_csr,
)
from repro.fastcore.kernels import (
    count_containing_batched,
    count_exact_batched,
    count_wedges_batched,
)

__all__ = [
    "HypergraphCSR",
    "build_csr",
    "AdjacencyArrays",
    "build_projection_arrays",
    "aggregate_cooccurrence",
    "aggregate_pair_keys",
    "gather_row_positions",
    "pairs_to_symmetric_csr",
    "count_exact_batched",
    "count_containing_batched",
    "count_wedges_batched",
    "ENV_KERNEL_BACKEND",
    "KERNEL_BACKENDS",
    "KERNEL_BACKEND_CHOICES",
    "numba_available",
    "resolve_backend",
    "get_backend",
    "set_backend",
    "use_backend",
]
