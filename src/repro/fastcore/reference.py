"""Seed (object-graph) implementations, kept as the executable specification.

These are the pre-fastcore hot paths, verbatim in structure: Algorithm 1 as a
tuple-keyed dict of overlap increments, and the MoCHy counters as per-triple
``classify_triple`` calls. They are **not** used by the library's fast paths;
they exist so that

* the parity test-suite (``tests/test_fastcore_parity.py``) can assert that
  the batched kernels return bit-identical ``MotifCounts``; and
* ``benchmarks/bench_core_speed.py`` can measure the fast core's speedup
  against the seed implementation on the same inputs.

Keep this module dependency-light and boring: its value is that it changes
only when the *semantics* of the counters change.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.counting.classification import NeighborhoodProvider, classify_triple
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.projection.projected_graph import ProjectedGraph


def project_reference(hypergraph: Hypergraph) -> ProjectedGraph:
    """Algorithm 1 with a tuple-keyed weight dict (the seed layout)."""
    weights: Dict[Tuple[int, int], int] = {}
    for i in range(hypergraph.num_hyperedges):
        edge = hypergraph.hyperedge(i)
        for node in edge:
            for j in hypergraph.memberships(node):
                if j > i:
                    key = (i, j)
                    weights[key] = weights.get(key, 0) + 1
    adjacency: Dict[int, Dict[int, int]] = {}
    for (i, j), weight in weights.items():
        adjacency.setdefault(i, {})[j] = weight
        adjacency.setdefault(j, {})[i] = weight
    return ProjectedGraph(hypergraph.num_hyperedges, adjacency)


def count_exact_reference(
    hypergraph: Hypergraph,
    projection: Optional[NeighborhoodProvider] = None,
    hyperedge_indices: Optional[Iterable[int]] = None,
) -> MotifCounts:
    """MoCHy-E with one ``classify_triple`` call per candidate triple."""
    if projection is None:
        projection = project_reference(hypergraph)
    if hyperedge_indices is None:
        hyperedge_indices = range(hypergraph.num_hyperedges)
    counts = MotifCounts.zeros()
    for i in hyperedge_indices:
        neighbors = sorted(projection.neighbors(i))
        for position, j in enumerate(neighbors):
            for k in neighbors[position + 1 :]:
                overlap_jk = projection.overlap(j, k)
                if overlap_jk == 0 or i < min(j, k):
                    counts.increment(classify_triple(hypergraph, projection, i, j, k))
    return counts


def count_containing_reference(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    anchors: Sequence[int],
) -> MotifCounts:
    """Raw MoCHy-A increments: instances containing each anchor, per triple."""
    counts = MotifCounts.zeros()
    for i in anchors:
        i = int(i)
        neighbors_i = projection.neighbors(i)
        neighbor_set = set(neighbors_i)
        for j in neighbors_i:
            neighbors_j = projection.neighbors(j)
            candidates = neighbor_set.union(neighbors_j)
            candidates.discard(i)
            candidates.discard(j)
            for k in candidates:
                if k not in neighbor_set or j < k:
                    counts.increment(classify_triple(hypergraph, projection, i, j, k))
    return counts


def count_wedges_reference(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    wedges: Sequence[Tuple[int, int]],
) -> MotifCounts:
    """Raw MoCHy-A+ increments: instances containing each wedge, per triple."""
    counts = MotifCounts.zeros()
    for i, j in wedges:
        i = int(i)
        j = int(j)
        candidates = set(projection.neighbors(i))
        candidates.update(projection.neighbors(j))
        candidates.discard(i)
        candidates.discard(j)
        for k in candidates:
            counts.increment(classify_triple(hypergraph, projection, i, j, k))
    return counts
