"""CSR (compressed sparse row) layout of a hypergraph.

The friendly :class:`repro.hypergraph.Hypergraph` API speaks frozensets of
arbitrary hashable nodes; the hot paths speak :class:`HypergraphCSR` —
two int32 CSR structures over *dense* integer ids:

* the hyperedge side: ``edge_ptr`` / ``edge_nodes``, where
  ``edge_nodes[edge_ptr[i]:edge_ptr[i+1]]`` are the dense node ids of
  hyperedge ``e_i``, **sorted ascending** (so pairwise/triple intersections
  reduce to sorted-array merges and ``searchsorted`` lookups);
* the transposed node side: ``node_ptr`` / ``node_edges``, where
  ``node_edges[node_ptr[v]:node_ptr[v+1]]`` are the hyperedge indices
  containing node ``v`` (the paper's ``E_v``), sorted ascending.

Dense node ids are assigned by the owning ``Hypergraph`` (position in its
deterministic node ordering), so the CSR view and the frozenset view always
agree on which node is which. The structure is immutable, built once and
cached on the hypergraph, and picklable (plain arrays), which lets parallel
drivers ship it to worker processes without serializing frozenset graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Mapping, Sequence

import numpy as np

INDEX_DTYPE = np.int32


@dataclass(frozen=True, eq=False)
class HypergraphCSR:
    """Immutable CSR view of a hypergraph over dense integer ids.

    Attributes
    ----------
    num_edges, num_nodes:
        ``|E|`` and ``|V|``.
    edge_ptr, edge_nodes:
        Hyperedge rows: sorted dense node ids of each hyperedge.
    node_ptr, node_edges:
        Transposed membership rows: sorted hyperedge indices per node.
    edge_sizes:
        ``|e_i|`` for every hyperedge, in index order.
    """

    num_edges: int
    num_nodes: int
    edge_ptr: np.ndarray
    edge_nodes: np.ndarray
    node_ptr: np.ndarray
    node_edges: np.ndarray
    edge_sizes: np.ndarray

    def edge_row(self, i: int) -> np.ndarray:
        """Sorted dense node ids of hyperedge *i*."""
        return self.edge_nodes[self.edge_ptr[i] : self.edge_ptr[i + 1]]

    def node_row(self, v: int) -> np.ndarray:
        """Sorted hyperedge indices containing dense node *v*."""
        return self.node_edges[self.node_ptr[v] : self.node_ptr[v + 1]]


def build_csr(
    hyperedges: Sequence[FrozenSet[Hashable]],
    node_index: Mapping[Hashable, int],
) -> HypergraphCSR:
    """Build the CSR layout from frozenset hyperedges and a dense node-id map.

    ``node_index`` must map every node appearing in *hyperedges* to a unique
    id in ``[0, num_nodes)``; the owning ``Hypergraph`` supplies its cached
    deterministic ordering.
    """
    num_edges = len(hyperedges)
    num_nodes = len(node_index)
    edge_sizes = np.fromiter(
        (len(edge) for edge in hyperedges), dtype=INDEX_DTYPE, count=num_edges
    )
    total = int(edge_sizes.astype(np.int64).sum())
    if total > np.iinfo(INDEX_DTYPE).max:
        # Both pointer arrays top out at `total`; int32 cumsum would wrap
        # silently, so make the layout limit loud instead.
        raise OverflowError(
            f"total incidence {total} exceeds the int32 CSR layout limit "
            f"({np.iinfo(INDEX_DTYPE).max})"
        )
    edge_ptr = np.zeros(num_edges + 1, dtype=INDEX_DTYPE)
    edge_ptr[1:] = np.cumsum(edge_sizes)

    flat = np.fromiter(
        (node_index[node] for edge in hyperedges for node in edge),
        dtype=INDEX_DTYPE,
        count=total,
    )
    owner = np.repeat(np.arange(num_edges, dtype=INDEX_DTYPE), edge_sizes)

    # Sort node ids within each hyperedge row: one global stable sort on the
    # (edge, node) key keeps rows contiguous and orders nodes inside them.
    edge_key = owner.astype(np.int64) * max(num_nodes, 1) + flat
    edge_order = np.argsort(edge_key, kind="stable")
    edge_nodes = flat[edge_order]

    # Transpose to node→edges rows the same way, keyed by (node, edge).
    node_key = flat.astype(np.int64) * max(num_edges, 1) + owner
    node_order = np.argsort(node_key, kind="stable")
    node_edges = owner[node_order]
    node_ptr = np.zeros(num_nodes + 1, dtype=INDEX_DTYPE)
    node_ptr[1:] = np.cumsum(np.bincount(flat, minlength=num_nodes))

    for array in (edge_ptr, edge_nodes, node_ptr, node_edges, edge_sizes):
        array.setflags(write=False)
    return HypergraphCSR(
        num_edges=num_edges,
        num_nodes=num_nodes,
        edge_ptr=edge_ptr,
        edge_nodes=edge_nodes,
        node_ptr=node_ptr,
        node_edges=node_edges,
        edge_sizes=edge_sizes,
    )
