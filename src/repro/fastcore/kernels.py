"""Batched h-motif classification kernels over CSR arrays.

Every MoCHy counter reduces to the same inner step: given an anchor (a
hyperedge ``e_i`` or a hyperwedge ``∧_ij``), classify a *set* of candidate
triples. The seed implementation called ``classify_triple`` once per triple;
the first fastcore generation processed all candidates of one anchor at once
but still drove the anchors from a Python ``for`` loop. These kernels remove
that last loop: anchors are packed into *blocks* bounded by a candidate-pair
budget, and each block is processed by one vectorized sweep —

* the neighborhoods of a whole block come from one CSR gather
  (:meth:`AdjacencyArrays.gather_rows`, or a budgeted
  :class:`~repro.projection.lazy.LazyProjection` serving the same interface);
* candidate pairs for every anchor in the block are enumerated together,
  degree-bucketed so all anchors of equal degree share one upper-triangle
  index broadcast;
* pairwise overlaps come from one vectorized ``searchsorted`` against the
  projected graph's sorted key array (``pair_weights``);
* triple overlaps ``|e_i ∩ e_j ∩ e_k|`` use one bitmask row per *(anchor,
  neighbor)* combination — bit ``p`` set iff the ``p``-th node of the anchor
  hyperedge belongs to the neighbor — so a pair's overlap is
  ``popcount(mask_j & mask_k)``; combinations are deduplicated across the
  block with offset keys ``anchor·|E| + neighbor``;
* the seven Venn-region cardinalities follow from inclusion–exclusion
  (Lemma 2) in vectorized int arithmetic, and the final motif ids come from
  the 128-entry pattern→motif table of
  :func:`repro.motifs.classify.motif_lookup_table` with one fancy index,
  accumulated with a single ``bincount`` per block.

An optional compiled backend (:mod:`repro.fastcore.compiled`, numba) can
replace the NumPy block sweep for full :class:`AdjacencyArrays` sources; it
is selected via :mod:`repro.fastcore.backend` (``REPRO_KERNEL_BACKEND``,
``--kernel-backend``, ``KernelConfig``) and the pure-NumPy path always
remains the default fallback.

Exactness: the kernels enumerate exactly the triples the reference loops
enumerate, compute identical integer cardinalities, and raise the same
exceptions (``MotifError`` / ``DuplicateHyperedgeError`` /
``NotConnectedError``) on invalid triples. Counters are sums of unit
increments in float64 (integers far below 2**53), so the resulting
``MotifCounts`` are bit-identical regardless of block boundaries or backend.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    DuplicateHyperedgeError,
    MotifError,
    NotConnectedError,
    ProjectionError,
)
from repro.fastcore import backend as _backend
from repro.fastcore.csr import HypergraphCSR
from repro.fastcore.projection import (
    AdjacencyArrays,
    gather_row_positions,
    iter_triu_chunks,
    sorted_member_positions,
)
from repro.motifs.classify import (
    LOOKUP_DISCONNECTED,
    LOOKUP_DUPLICATE,
    LOOKUP_EMPTY_EDGE,
    motif_lookup_table,
)
from repro.motifs.patterns import NUM_MOTIFS

# Upper-triangle index pairs per neighborhood size, shared across anchors
# (and across the parallel drivers' threads — hence the lock below).
_TRIU_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
_TRIU_CACHE_LOCK = threading.Lock()

# Degrees above this are recomputed on the fly: a cached entry holds
# O(degree²) int64 pairs, so hub rows would pin worst-case memory forever.
_TRIU_CACHE_MAX_DEGREE = 1024

# Aggregate pair budget across all cached entries (~128 MB of index arrays);
# the cache is cleared when exceeded so degree-diverse workloads stay bounded.
_TRIU_CACHE_PAIR_BUDGET = 1 << 23
_triu_cached_pairs = 0


def _triu_pairs(size: int) -> Tuple[np.ndarray, np.ndarray]:
    global _triu_cached_pairs
    if size > _TRIU_CACHE_MAX_DEGREE:
        return np.triu_indices(size, 1)
    cached = _TRIU_CACHE.get(size)
    if cached is not None:
        return cached
    fresh = np.triu_indices(size, 1)
    num_pairs = size * (size - 1) // 2
    with _TRIU_CACHE_LOCK:
        # Re-check under the lock: two threads racing on the same size must
        # charge the budget once, not once per thread, or the inflated
        # counter triggers spurious cache clears.
        cached = _TRIU_CACHE.get(size)
        if cached is not None:
            return cached
        if _triu_cached_pairs + num_pairs > _TRIU_CACHE_PAIR_BUDGET:
            _TRIU_CACHE.clear()
            _triu_cached_pairs = 0
        _TRIU_CACHE[size] = fresh
        _triu_cached_pairs += num_pairs
    return fresh


# Maximum candidate pairs materialized at once for one anchor (~16 MB per
# int64 array). Pair enumeration is chunked above this so hub anchors with
# projected degree in the tens of thousands stay memory-bounded instead of
# allocating O(degree²) arrays in one shot.
_PAIR_CHUNK = 1 << 21


def _iter_triu_chunks(size: int):
    """Yield ``(left, right)`` position pairs of ``triu_indices(size, 1)``.

    Same pairs and order as the unchunked call, in slabs of at most
    ``_PAIR_CHUNK`` pairs; small sizes reuse the shared cache.
    """
    total = size * (size - 1) // 2
    if total <= _PAIR_CHUNK:
        if total:
            yield _triu_pairs(size)
        return
    yield from iter_triu_chunks(size, _PAIR_CHUNK)


# Candidate-pair budget per anchor block. A block slab carries roughly eight
# int64 arrays of this length through classification, so the budget bounds
# peak kernel memory (~32 MB) while keeping each vectorized call fat enough
# to amortize NumPy dispatch over thousands of anchors.
_BLOCK_PAIR_BUDGET = 1 << 19

# Provisional anchors per block before the pair budget shrinks it.
_ANCHOR_BLOCK = 4096


_BYTE_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1)


def _popcount_rows_bytes(masks: np.ndarray) -> np.ndarray:
    """Row-wise popcount via a byte lookup table (works on any numpy)."""
    as_bytes = np.ascontiguousarray(masks).view(np.uint8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=1).astype(np.int64)


if hasattr(np, "bitwise_count"):

    def _popcount_rows(masks: np.ndarray) -> np.ndarray:
        """Row-wise population count of a (n, words) uint64 matrix."""
        return np.bitwise_count(masks).sum(axis=1).astype(np.int64)

else:  # pragma: no cover - numpy < 2.0
    _popcount_rows = _popcount_rows_bytes


def classify_batch(
    size_i: np.ndarray,
    size_j: np.ndarray,
    size_k: np.ndarray,
    overlap_ij: np.ndarray,
    overlap_jk: np.ndarray,
    overlap_ki: np.ndarray,
    overlap_ijk: np.ndarray,
) -> np.ndarray:
    """Motif ids (1..26) for a batch of triples given sizes and overlaps.

    Inputs broadcast against each other; all values are integers. Raises the
    same exceptions as the scalar ``classify_from_cardinalities`` when any
    element of the batch is invalid, reporting the first offending triple.
    """
    size_i, size_j, size_k, overlap_ij, overlap_jk, overlap_ki, overlap_ijk = (
        np.atleast_1d(*np.broadcast_arrays(
            *(
                np.asarray(value, dtype=np.int64)
                for value in (
                    size_i,
                    size_j,
                    size_k,
                    overlap_ij,
                    overlap_jk,
                    overlap_ki,
                    overlap_ijk,
                )
            )
        ))
    )
    only_i = size_i - overlap_ij - overlap_ki + overlap_ijk
    only_j = size_j - overlap_ij - overlap_jk + overlap_ijk
    only_k = size_k - overlap_ki - overlap_jk + overlap_ijk
    pair_ij = overlap_ij - overlap_ijk
    pair_jk = overlap_jk - overlap_ijk
    pair_ki = overlap_ki - overlap_ijk
    regions = (only_i, only_j, only_k, pair_ij, pair_jk, pair_ki, overlap_ijk)

    bad = np.zeros(only_i.shape, dtype=bool)
    for region in regions:
        bad |= region < 0
    if bad.any():
        at = int(np.argmax(bad))
        raise MotifError(
            "inconsistent cardinalities: "
            f"sizes=({int(size_i[at])}, {int(size_j[at])}, {int(size_k[at])}), "
            f"pairwise=({int(overlap_ij[at])}, {int(overlap_jk[at])}, "
            f"{int(overlap_ki[at])}), "
            f"triple={int(overlap_ijk[at])} produce negative region sizes "
            f"{tuple(int(region[at]) for region in regions)}"
        )

    code = np.zeros(only_i.shape, dtype=np.uint8)
    for position, region in enumerate(regions):
        code |= (region > 0).astype(np.uint8) << np.uint8(position)
    motifs = motif_lookup_table()[code]
    if (motifs < 0).any():
        # Report the first offending triple in batch order; counting is
        # all-or-nothing per batch, so which invalid triple is named does not
        # affect the raised exception type.
        sentinel = int(motifs[np.argmax(motifs < 0)])
        if sentinel == LOOKUP_EMPTY_EDGE:
            raise MotifError("an h-motif instance cannot contain an empty hyperedge")
        if sentinel == LOOKUP_DUPLICATE:
            raise DuplicateHyperedgeError(
                "h-motif instances must consist of three distinct hyperedges"
            )
        if sentinel == LOOKUP_DISCONNECTED:
            raise NotConnectedError(
                "the three hyperedges are not connected and do not form an "
                "h-motif instance"
            )
    return motifs.astype(np.int64)


# Backwards-compatible aliases: the gather helpers moved to
# repro.fastcore.projection so AdjacencyArrays could grow gather_rows().
_gather_row_positions = gather_row_positions


def _gather_rows(
    ptr: np.ndarray, data: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate variable-length CSR rows; returns ``(values, owner)``."""
    positions, owner = gather_row_positions(ptr, rows)
    return data[positions], owner


# --------------------------------------------------------------------------
# Anchor-block machinery
# --------------------------------------------------------------------------


def _check_vertex_range(values: np.ndarray, limit: int) -> None:
    """Validate anchor/wedge ids, matching ``AdjacencyArrays.row``'s error."""
    if values.size == 0:
        return
    low = int(values.min())
    high = int(values.max())
    if low < 0 or high >= limit:
        bad = low if low < 0 else high
        raise ProjectionError(f"vertex {bad} out of range [0, {limit})")


def _as_anchor_array(
    anchors: Optional[Iterable[int]], num_edges: int
) -> np.ndarray:
    if anchors is None:
        return np.arange(num_edges, dtype=np.int64)
    if isinstance(anchors, np.ndarray):
        array = anchors.astype(np.int64, copy=False).ravel()
    else:
        array = np.fromiter((int(i) for i in anchors), dtype=np.int64)
    _check_vertex_range(array, num_edges)
    return array


def _compiled_module(adjacency, backend: Optional[str]):
    """The compiled backend module when it should handle this call, else None.

    Lazy sources always take the NumPy block path — the compiled kernels
    need the full adjacency arrays.
    """
    name = (
        _backend.get_backend()
        if backend is None
        else _backend.resolve_backend(backend)
    )
    if name != _backend.BACKEND_NUMBA or not isinstance(adjacency, AdjacencyArrays):
        return None
    from repro.fastcore import compiled

    return compiled


def _iter_source_blocks(
    source, anchors: np.ndarray
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(block, ids, weights, lengths)`` covering *anchors* in order.

    Each block's total candidate-pair count fits ``_BLOCK_PAIR_BUDGET``
    except when a single hub anchor alone exceeds it — that anchor comes
    back as a singleton block and is pair-chunked downstream.
    """
    n = anchors.size
    start = 0
    while start < n:
        block = anchors[start : start + _ANCHOR_BLOCK]
        ids, weights, lengths = source.gather_rows(block)
        pairs = lengths * (lengths - 1) // 2
        if block.size > 1 and int(pairs.sum()) > _BLOCK_PAIR_BUDGET:
            cumulative = np.cumsum(pairs)
            fit = int(np.searchsorted(cumulative, _BLOCK_PAIR_BUDGET, side="right"))
            fit = max(fit, 1)
            if fit < block.size:
                block = block[:fit]
                total = int(lengths[:fit].sum())
                ids = ids[:total]
                weights = weights[:total]
                lengths = lengths[:fit]
        yield block, ids, weights, lengths
        start += block.size


def _iter_pair_slabs(
    block: np.ndarray,
    ids: np.ndarray,
    weights: np.ndarray,
    lengths: np.ndarray,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Candidate pairs of a gathered block as flat per-pair arrays.

    Yields ``(anchor, left_ids, right_ids, left_weights, right_weights)``
    with ``left_ids < right_ids`` elementwise (rows are sorted, and the
    upper-triangle index orders positions within a row).
    """
    pairs = lengths * (lengths - 1) // 2
    total = int(pairs.sum())
    if total == 0:
        return
    if block.size == 1 and total > _BLOCK_PAIR_BUDGET:
        # Hub anchor: its own pair count exceeds the block budget, so
        # enumerate its upper triangle in bounded chunks.
        anchor = int(block[0])
        for left, right in _iter_triu_chunks(int(lengths[0])):
            yield (
                np.full(left.size, anchor, dtype=np.int64),
                ids[left],
                ids[right],
                weights[left],
                weights[right],
            )
        return
    left, right, owner = _block_triu_positions(lengths)
    yield block[owner], ids[left], ids[right], weights[left], weights[right]


def _block_triu_positions(
    lengths: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Upper-triangle positions for every row of a gathered block at once.

    Rows are bucketed by degree so all rows of equal length share a single
    cached ``triu_indices`` broadcast; ``owner`` maps each pair back to its
    row. Pair order is grouped by degree bucket, not row — the counters sum
    order-independent unit increments, so this changes nothing observable.
    """
    pairs = lengths * (lengths - 1) // 2
    total = int(pairs.sum())
    left = np.empty(total, dtype=np.int64)
    right = np.empty(total, dtype=np.int64)
    owner = np.empty(total, dtype=np.int64)
    if total == 0:
        return left, right, owner
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    out = 0
    for degree in np.unique(lengths):
        degree = int(degree)
        if degree < 2:
            continue
        rows = np.nonzero(lengths == degree)[0]
        upper_i, upper_j = _triu_pairs(degree)
        count = rows.size * upper_i.size
        base = offsets[rows][:, None]
        left[out : out + count] = (base + upper_i[None, :]).ravel()
        right[out : out + count] = (base + upper_j[None, :]).ravel()
        owner[out : out + count] = np.repeat(rows, upper_i.size)
        out += count
    return left, right, owner


def _triple_overlaps_blocked(
    csr: HypergraphCSR,
    anchors: np.ndarray,
    left_ids: np.ndarray,
    right_ids: np.ndarray,
    closed: np.ndarray,
) -> np.ndarray:
    """Triple overlaps ``|e_anchor ∩ e_left ∩ e_right|`` for closed pairs.

    One bitmask row is built per distinct *(anchor, neighbor)* combination —
    bit ``p`` set iff the ``p``-th node of the anchor hyperedge also belongs
    to the neighbor — so each pair's overlap is one ``popcount(mask_l &
    mask_r)``. Combinations are deduplicated across the whole block with
    offset keys, and only anchors participating in a closed pair gather any
    node data at all.
    """
    overlaps = np.zeros(len(left_ids), dtype=np.int64)
    if not closed.any():
        return overlaps
    edge_scale = np.int64(max(csr.num_edges, 1))
    closed_anchors = anchors[closed].astype(np.int64)
    left_keys = closed_anchors * edge_scale + left_ids[closed]
    right_keys = closed_anchors * edge_scale + right_ids[closed]
    combos = np.unique(np.concatenate([left_keys, right_keys]))
    combo_anchor = combos // edge_scale
    combo_neighbor = combos % edge_scale

    used_anchors = np.unique(combo_anchor)
    anchor_positions, anchor_owner = gather_row_positions(
        csr.edge_ptr, used_anchors
    )
    anchor_nodes = csr.edge_nodes[anchor_positions]
    anchor_lengths = (
        csr.edge_ptr[used_anchors + 1] - csr.edge_ptr[used_anchors]
    ).astype(np.int64)
    anchor_offsets = np.concatenate(([0], np.cumsum(anchor_lengths)[:-1]))
    # Local bit position of each anchor node within its own (sorted) row.
    local_bit = np.arange(anchor_nodes.size, dtype=np.int64) - np.repeat(
        anchor_offsets, anchor_lengths
    )
    node_scale = np.int64(max(csr.num_nodes, 1))
    haystack = anchor_owner * node_scale + anchor_nodes

    words = max(1, (int(anchor_lengths.max()) + 63) // 64)
    masks = np.zeros((combos.size, words), dtype=np.uint64)
    values, value_owner = _gather_rows(csr.edge_ptr, csr.edge_nodes, combo_neighbor)
    combo_anchor_pos = np.searchsorted(used_anchors, combo_anchor)
    hit, positions = sorted_member_positions(
        haystack, combo_anchor_pos[value_owner] * node_scale + values
    )
    bit = local_bit[positions[hit]].astype(np.uint64)
    np.bitwise_or.at(
        masks,
        (value_owner[hit], (bit >> np.uint64(6)).astype(np.int64)),
        np.uint64(1) << (bit & np.uint64(63)),
    )
    left_rows = np.searchsorted(combos, left_keys)
    right_rows = np.searchsorted(combos, right_keys)
    overlaps[closed] = _popcount_rows(masks[left_rows] & masks[right_rows])
    return overlaps


def _accumulate_pair_slab(
    csr: HypergraphCSR,
    source,
    sizes: np.ndarray,
    totals: np.ndarray,
    anchor: np.ndarray,
    left_ids: np.ndarray,
    right_ids: np.ndarray,
    left_weights: np.ndarray,
    right_weights: np.ndarray,
    attribute_min: bool,
) -> None:
    """Classify one slab of candidate pairs and fold it into *totals*.

    ``attribute_min`` applies Algorithm 2's dedup rule — a closed instance is
    counted only from its minimum-index hyperedge (``left_ids`` is the pair
    minimum because rows are sorted) — while the sampling counters visit
    every instance containing the anchor.
    """
    weight_jk = source.pair_weights(left_ids, right_ids).astype(np.int64)
    if attribute_min:
        keep = (weight_jk == 0) | (anchor < left_ids)
        if not keep.any():
            return
        anchor = anchor[keep]
        left_ids = left_ids[keep]
        right_ids = right_ids[keep]
        left_weights = left_weights[keep]
        right_weights = right_weights[keep]
        weight_jk = weight_jk[keep]
    closed = weight_jk > 0
    triple = _triple_overlaps_blocked(csr, anchor, left_ids, right_ids, closed)
    motifs = classify_batch(
        sizes[anchor],
        sizes[left_ids],
        sizes[right_ids],
        left_weights,
        weight_jk,
        right_weights,
        triple,
    )
    totals += np.bincount(motifs, minlength=NUM_MOTIFS + 1)


def count_exact_batched(
    csr: HypergraphCSR,
    adjacency,
    hyperedge_indices: Optional[Iterable[int]] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Exact h-motif counts (MoCHy-E) as a length-26 float array.

    For each anchor ``e_i`` the candidate pairs are every unordered
    ``{e_j, e_k} ⊆ N_{e_i}``; a pair is counted iff it is open (seen only
    from its center) or ``i < min(j, k)`` (a closed instance is attributed to
    its minimum index), exactly as in Algorithm 2. Anchors are processed in
    pair-budgeted blocks with no per-anchor Python iteration.
    """
    anchors = _as_anchor_array(hyperedge_indices, csr.num_edges)
    compiled = _compiled_module(adjacency, backend)
    if compiled is not None:
        result = compiled.count_exact(csr, adjacency, anchors)
        if result is not None:
            return result
    totals = np.zeros(NUM_MOTIFS + 1, dtype=np.float64)
    sizes = csr.edge_sizes
    for block, ids, weights, lengths in _iter_source_blocks(adjacency, anchors):
        for slab in _iter_pair_slabs(block, ids, weights, lengths):
            _accumulate_pair_slab(
                csr, adjacency, sizes, totals, *slab, attribute_min=True
            )
    return totals[1:]


def count_containing_batched(
    csr: HypergraphCSR,
    adjacency,
    anchors: Sequence[int],
    backend: Optional[str] = None,
) -> np.ndarray:
    """Raw counts of instances containing each anchor hyperedge (MoCHy-A).

    Visits every instance containing ``e_i`` exactly once, split into the two
    cases of Algorithm 4's inner loop:

    * both other hyperedges neighbor the anchor — every unordered pair from
      ``N_{e_i}``;
    * ``e_k`` neighbors only ``e_j`` — for each ``e_j ∈ N_{e_i}``, the
      candidates ``N_{e_j} \\ (N_{e_i} ∪ {e_i})``.
    """
    anchor_array = _as_anchor_array(anchors, csr.num_edges)
    compiled = _compiled_module(adjacency, backend)
    if compiled is not None:
        result = compiled.count_containing(csr, adjacency, anchor_array)
        if result is not None:
            return result
    totals = np.zeros(NUM_MOTIFS + 1, dtype=np.float64)
    sizes = csr.edge_sizes
    for block, ids, weights, lengths in _iter_source_blocks(
        adjacency, anchor_array
    ):
        # Case 1: pairs within each anchor's neighborhood.
        for slab in _iter_pair_slabs(block, ids, weights, lengths):
            _accumulate_pair_slab(
                csr, adjacency, sizes, totals, *slab, attribute_min=False
            )
        # Case 2: e_k adjacent to e_j but not to the anchor.
        _accumulate_second_hop(
            csr, adjacency, sizes, totals, block, ids, weights, lengths
        )
    return totals[1:]


def _accumulate_second_hop(
    csr: HypergraphCSR,
    source,
    sizes: np.ndarray,
    totals: np.ndarray,
    block: np.ndarray,
    ids: np.ndarray,
    weights: np.ndarray,
    lengths: np.ndarray,
) -> None:
    """Count Algorithm 4 case-2 triples for a gathered anchor block.

    For every anchor ``e_i`` in the block and neighbor ``e_j``, candidates
    are ``N_{e_j} \\ (N_{e_i} ∪ {e_i})``; membership in ``N_{e_i}`` is tested
    against one concatenated sorted haystack keyed ``anchor_pos·|E| + id``,
    so the whole block needs no per-anchor iteration. ``e_k ∩ e_i = ∅`` for
    every survivor, so both ``ω(∧_ki)`` and the triple overlap vanish.
    """
    if ids.size == 0:
        return
    edge_scale = np.int64(max(csr.num_edges, 1))
    anchor_pos = np.repeat(np.arange(block.size, dtype=np.int64), lengths)
    haystack = anchor_pos * edge_scale + ids
    neighbor_degrees = source.row_lengths(ids)
    bounds = np.cumsum(neighbor_degrees)
    start = 0
    while start < ids.size:
        base = int(bounds[start - 1]) if start else 0
        stop = int(
            np.searchsorted(bounds, base + _BLOCK_PAIR_BUDGET, side="right")
        )
        stop = min(max(stop, start + 1), ids.size)
        cand_ids, cand_weights, cand_lengths = source.gather_rows(
            ids[start:stop]
        )
        entry = start + np.repeat(
            np.arange(stop - start, dtype=np.int64), cand_lengths
        )
        apos = anchor_pos[entry]
        in_neighborhood, _ = sorted_member_positions(
            haystack, apos * edge_scale + cand_ids
        )
        keep = ~in_neighborhood & (cand_ids != block[apos])
        if keep.any():
            entry = entry[keep]
            motifs = classify_batch(
                sizes[block[apos[keep]]],
                sizes[ids[entry]],
                sizes[cand_ids[keep]],
                weights[entry],
                cand_weights[keep],
                0,
                0,
            )
            totals += np.bincount(motifs, minlength=NUM_MOTIFS + 1)
        start = stop


def count_wedges_batched(
    csr: HypergraphCSR,
    adjacency,
    wedges: Sequence[Tuple[int, int]],
    backend: Optional[str] = None,
) -> np.ndarray:
    """Raw counts of instances containing each sampled hyperwedge (MoCHy-A+).

    For a wedge ``∧_ij`` the candidates are ``N_{e_i} ∪ N_{e_j}`` minus the
    wedge endpoints. Wedges are processed in candidate-budgeted blocks: the
    union per wedge comes from one ``np.unique`` over offset keys
    ``wedge_pos·|E| + id``, and triple overlaps intersect each candidate
    hyperedge with the per-wedge shared node sets ``e_i ∩ e_j`` — all
    wedges of a block at once.
    """
    if isinstance(wedges, np.ndarray):
        wedge_array = wedges.astype(np.int64, copy=False).reshape(-1, 2)
    else:
        wedge_array = np.fromiter(
            (int(x) for pair in wedges for x in pair), dtype=np.int64
        ).reshape(-1, 2)
    _check_vertex_range(wedge_array, csr.num_edges)
    compiled = _compiled_module(adjacency, backend)
    if compiled is not None:
        result = compiled.count_wedges(
            csr, adjacency, wedge_array[:, 0], wedge_array[:, 1]
        )
        if result is not None:
            return result
    totals = np.zeros(NUM_MOTIFS + 1, dtype=np.float64)
    sizes = csr.edge_sizes
    num_wedges = wedge_array.shape[0]
    start = 0
    while start < num_wedges:
        stop = min(num_wedges, start + _ANCHOR_BLOCK)
        left = wedge_array[start:stop, 0]
        right = wedge_array[start:stop, 1]
        ids_left, _, len_left = adjacency.gather_rows(left)
        ids_right, _, len_right = adjacency.gather_rows(right)
        candidates_per_wedge = len_left + len_right
        if stop - start > 1 and int(candidates_per_wedge.sum()) > _BLOCK_PAIR_BUDGET:
            cumulative = np.cumsum(candidates_per_wedge)
            fit = int(
                np.searchsorted(cumulative, _BLOCK_PAIR_BUDGET, side="right")
            )
            fit = max(fit, 1)
            if fit < stop - start:
                stop = start + fit
                left = left[:fit]
                right = right[:fit]
                ids_left = ids_left[: int(len_left[:fit].sum())]
                len_left = len_left[:fit]
                ids_right = ids_right[: int(len_right[:fit].sum())]
                len_right = len_right[:fit]
        _accumulate_wedge_block(
            csr,
            adjacency,
            sizes,
            totals,
            left,
            right,
            ids_left,
            len_left,
            ids_right,
            len_right,
        )
        start = stop
    return totals[1:]


def _accumulate_wedge_block(
    csr: HypergraphCSR,
    source,
    sizes: np.ndarray,
    totals: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    ids_left: np.ndarray,
    len_left: np.ndarray,
    ids_right: np.ndarray,
    len_right: np.ndarray,
) -> None:
    """Classify all candidate triples of one wedge block."""
    if ids_left.size + ids_right.size == 0:
        return
    edge_scale = np.int64(max(csr.num_edges, 1))
    wedge_of_left = np.repeat(np.arange(left.size, dtype=np.int64), len_left)
    wedge_of_right = np.repeat(np.arange(right.size, dtype=np.int64), len_right)
    keys = np.concatenate(
        [wedge_of_left * edge_scale + ids_left, wedge_of_right * edge_scale + ids_right]
    )
    unique_keys = np.unique(keys)
    wedge_of = unique_keys // edge_scale
    candidates = unique_keys % edge_scale
    keep = (candidates != left[wedge_of]) & (candidates != right[wedge_of])
    wedge_of = wedge_of[keep]
    candidates = candidates[keep]
    if candidates.size == 0:
        return
    weight_ij = source.pair_weights(left, right).astype(np.int64)
    weight_ik = source.pair_weights(left[wedge_of], candidates).astype(np.int64)
    weight_jk = source.pair_weights(right[wedge_of], candidates).astype(np.int64)
    triple = np.zeros(candidates.size, dtype=np.int64)
    needs_triple = (weight_ik > 0) & (weight_jk > 0)
    if needs_triple.any():
        # Shared node sets e_i ∩ e_j, one haystack for the wedges that need
        # them: keys are wedge_pos·|V| + node, sorted by construction.
        used_wedges = np.unique(wedge_of[needs_triple])
        node_scale = np.int64(max(csr.num_nodes, 1))
        nodes_left, owner_left = _gather_rows(
            csr.edge_ptr, csr.edge_nodes, left[used_wedges]
        )
        nodes_right, owner_right = _gather_rows(
            csr.edge_ptr, csr.edge_nodes, right[used_wedges]
        )
        right_keys = owner_right * node_scale + nodes_right
        shared_hit, _ = sorted_member_positions(
            owner_left * node_scale + nodes_left, right_keys
        )
        shared_keys = right_keys[shared_hit]
        if shared_keys.size:
            rows = candidates[needs_triple]
            values, value_owner = _gather_rows(csr.edge_ptr, csr.edge_nodes, rows)
            wedge_pos = np.searchsorted(used_wedges, wedge_of[needs_triple])
            hit, _ = sorted_member_positions(
                shared_keys, wedge_pos[value_owner] * node_scale + values
            )
            triple[needs_triple] = np.bincount(
                value_owner[hit], minlength=rows.size
            )
    motifs = classify_batch(
        sizes[left[wedge_of]],
        sizes[right[wedge_of]],
        sizes[candidates],
        weight_ij[wedge_of],
        weight_jk,
        weight_ik,
        triple,
    )
    totals += np.bincount(motifs, minlength=NUM_MOTIFS + 1)
