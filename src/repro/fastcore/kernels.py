"""Batched h-motif classification kernels over CSR arrays.

Every MoCHy counter reduces to the same inner step: given an anchor (a
hyperedge ``e_i`` or a hyperwedge ``∧_ij``), classify a *set* of candidate
triples. The seed implementation called ``classify_triple`` once per triple
(three dict lookups, a set intersection, and a Python canonicalization per
call); these kernels process all candidates of one anchor at once:

* pairwise overlaps come from one vectorized ``searchsorted`` against the
  projected graph's sorted key array (:meth:`AdjacencyArrays.pair_weights`);
* triple overlaps ``|e_i ∩ e_j ∩ e_k|`` are computed by sorted-array
  intersection against the smallest set that matters — the anchor hyperedge:
  each neighbor ``e_j`` is encoded as a bitmask over ``e_i``'s (sorted) node
  positions, and a pair's triple overlap is ``popcount(mask_j & mask_k)``;
* the seven Venn-region cardinalities follow from inclusion–exclusion
  (Lemma 2) in vectorized int arithmetic, and the final motif ids come from
  the 128-entry pattern→motif table of
  :func:`repro.motifs.classify.motif_lookup_table` with one fancy index.

Exactness: the kernels enumerate exactly the triples the reference loops
enumerate, compute identical integer cardinalities, and raise the same
exceptions (``MotifError`` / ``DuplicateHyperedgeError`` /
``NotConnectedError``) on invalid triples. Counters are sums of unit
increments, so the resulting ``MotifCounts`` are bit-identical.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DuplicateHyperedgeError, MotifError, NotConnectedError
from repro.fastcore.csr import HypergraphCSR
from repro.fastcore.projection import (
    AdjacencyArrays,
    iter_triu_chunks,
    sorted_member_positions,
)
from repro.motifs.classify import (
    LOOKUP_DISCONNECTED,
    LOOKUP_DUPLICATE,
    LOOKUP_EMPTY_EDGE,
    motif_lookup_table,
)
from repro.motifs.patterns import NUM_MOTIFS

# Upper-triangle index pairs per neighborhood size, shared across anchors
# (and across the parallel drivers' threads — hence the lock below).
_TRIU_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
_TRIU_CACHE_LOCK = threading.Lock()

# Degrees above this are recomputed on the fly: a cached entry holds
# O(degree²) int64 pairs, so hub rows would pin worst-case memory forever.
_TRIU_CACHE_MAX_DEGREE = 1024

# Aggregate pair budget across all cached entries (~128 MB of index arrays);
# the cache is cleared when exceeded so degree-diverse workloads stay bounded.
_TRIU_CACHE_PAIR_BUDGET = 1 << 23
_triu_cached_pairs = 0


def _triu_pairs(size: int) -> Tuple[np.ndarray, np.ndarray]:
    global _triu_cached_pairs
    if size > _TRIU_CACHE_MAX_DEGREE:
        return np.triu_indices(size, 1)
    cached = _TRIU_CACHE.get(size)
    if cached is None:
        cached = np.triu_indices(size, 1)
        num_pairs = size * (size - 1) // 2
        with _TRIU_CACHE_LOCK:
            if _triu_cached_pairs + num_pairs > _TRIU_CACHE_PAIR_BUDGET:
                _TRIU_CACHE.clear()
                _triu_cached_pairs = 0
            _TRIU_CACHE[size] = cached
            _triu_cached_pairs += num_pairs
    return cached


# Maximum candidate pairs materialized at once for one anchor (~16 MB per
# int64 array). Pair enumeration is chunked above this so hub anchors with
# projected degree in the tens of thousands stay memory-bounded instead of
# allocating O(degree²) arrays in one shot.
_PAIR_CHUNK = 1 << 21


def _iter_triu_chunks(size: int):
    """Yield ``(left, right)`` position pairs of ``triu_indices(size, 1)``.

    Same pairs and order as the unchunked call, in slabs of at most
    ``_PAIR_CHUNK`` pairs; small sizes reuse the shared cache.
    """
    total = size * (size - 1) // 2
    if total <= _PAIR_CHUNK:
        if total:
            yield _triu_pairs(size)
        return
    yield from iter_triu_chunks(size, _PAIR_CHUNK)


_BYTE_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1)


def _popcount_rows_bytes(masks: np.ndarray) -> np.ndarray:
    """Row-wise popcount via a byte lookup table (works on any numpy)."""
    as_bytes = np.ascontiguousarray(masks).view(np.uint8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=1).astype(np.int64)


if hasattr(np, "bitwise_count"):

    def _popcount_rows(masks: np.ndarray) -> np.ndarray:
        """Row-wise population count of a (n, words) uint64 matrix."""
        return np.bitwise_count(masks).sum(axis=1).astype(np.int64)

else:  # pragma: no cover - numpy < 2.0
    _popcount_rows = _popcount_rows_bytes


def classify_batch(
    size_i: np.ndarray,
    size_j: np.ndarray,
    size_k: np.ndarray,
    overlap_ij: np.ndarray,
    overlap_jk: np.ndarray,
    overlap_ki: np.ndarray,
    overlap_ijk: np.ndarray,
) -> np.ndarray:
    """Motif ids (1..26) for a batch of triples given sizes and overlaps.

    Inputs broadcast against each other; all values are integers. Raises the
    same exceptions as the scalar ``classify_from_cardinalities`` when any
    element of the batch is invalid, reporting the first offending triple.
    """
    size_i, size_j, size_k, overlap_ij, overlap_jk, overlap_ki, overlap_ijk = (
        np.atleast_1d(*np.broadcast_arrays(
            *(
                np.asarray(value, dtype=np.int64)
                for value in (
                    size_i,
                    size_j,
                    size_k,
                    overlap_ij,
                    overlap_jk,
                    overlap_ki,
                    overlap_ijk,
                )
            )
        ))
    )
    only_i = size_i - overlap_ij - overlap_ki + overlap_ijk
    only_j = size_j - overlap_ij - overlap_jk + overlap_ijk
    only_k = size_k - overlap_ki - overlap_jk + overlap_ijk
    pair_ij = overlap_ij - overlap_ijk
    pair_jk = overlap_jk - overlap_ijk
    pair_ki = overlap_ki - overlap_ijk
    regions = (only_i, only_j, only_k, pair_ij, pair_jk, pair_ki, overlap_ijk)

    bad = np.zeros(only_i.shape, dtype=bool)
    for region in regions:
        bad |= region < 0
    if bad.any():
        at = int(np.argmax(bad))
        raise MotifError(
            "inconsistent cardinalities: "
            f"sizes=({int(size_i[at])}, {int(size_j[at])}, {int(size_k[at])}), "
            f"pairwise=({int(overlap_ij[at])}, {int(overlap_jk[at])}, "
            f"{int(overlap_ki[at])}), "
            f"triple={int(overlap_ijk[at])} produce negative region sizes "
            f"{tuple(int(region[at]) for region in regions)}"
        )

    code = np.zeros(only_i.shape, dtype=np.uint8)
    for position, region in enumerate(regions):
        code |= (region > 0).astype(np.uint8) << np.uint8(position)
    motifs = motif_lookup_table()[code]
    if (motifs < 0).any():
        # Report the first offending triple in batch order, matching the
        # failure point of the per-triple reference loop.
        sentinel = int(motifs[np.argmax(motifs < 0)])
        if sentinel == LOOKUP_EMPTY_EDGE:
            raise MotifError("an h-motif instance cannot contain an empty hyperedge")
        if sentinel == LOOKUP_DUPLICATE:
            raise DuplicateHyperedgeError(
                "h-motif instances must consist of three distinct hyperedges"
            )
        if sentinel == LOOKUP_DISCONNECTED:
            raise NotConnectedError(
                "the three hyperedges are not connected and do not form an "
                "h-motif instance"
            )
    return motifs.astype(np.int64)


def _gather_row_positions(
    ptr: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat data positions of the given CSR rows; returns ``(positions, owner)``.

    ``owner[t]`` is the position within *rows* whose row produced
    ``positions[t]``; indexing any per-entry array with *positions* is the
    pure-array equivalent of ``concatenate([data[r] ...])``.
    """
    starts = ptr[rows].astype(np.int64)
    lengths = (ptr[rows + 1] - ptr[rows]).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, lengths
    )
    owner = np.repeat(np.arange(len(rows), dtype=np.int64), lengths)
    return positions, owner


def _gather_rows(
    ptr: np.ndarray, data: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate variable-length CSR rows; returns ``(values, owner)``."""
    positions, owner = _gather_row_positions(ptr, rows)
    return data[positions], owner


def _neighbor_bitmasks(
    csr: HypergraphCSR, anchor: int, neighbors: np.ndarray
) -> np.ndarray:
    """Bitmasks of ``e_j ∩ e_anchor`` over the anchor's sorted node positions.

    Row ``t`` of the returned ``(len(neighbors), words)`` uint64 matrix has
    bit ``p`` set iff the ``p``-th node of the anchor hyperedge also belongs
    to ``e_{neighbors[t]}``; a pair's triple overlap with the anchor is then
    ``popcount(row_a & row_b)``.
    """
    anchor_nodes = csr.edge_row(anchor)
    words = (anchor_nodes.size + 63) // 64
    masks = np.zeros((len(neighbors), words), dtype=np.uint64)
    values, owner = _gather_rows(csr.edge_ptr, csr.edge_nodes, neighbors)
    if values.size == 0:
        return masks
    hit, positions = sorted_member_positions(anchor_nodes, values)
    owner = owner[hit]
    bit = positions[hit].astype(np.uint64)
    np.bitwise_or.at(
        masks,
        (owner, (bit >> np.uint64(6)).astype(np.int64)),
        np.uint64(1) << (bit & np.uint64(63)),
    )
    return masks


def _pair_triple_overlaps(
    csr: HypergraphCSR,
    anchor: int,
    neighbors: np.ndarray,
    left_pos: np.ndarray,
    right_pos: np.ndarray,
    closed: np.ndarray,
) -> np.ndarray:
    """Triple overlaps ``|e_anchor ∩ e_j ∩ e_k|`` for the selected pairs.

    ``left_pos``/``right_pos`` index into *neighbors*; only entries where
    *closed* is True are computed (an open pair has ``e_j ∩ e_k = ∅`` and
    hence a zero triple overlap).
    """
    overlaps = np.zeros(len(left_pos), dtype=np.int64)
    if not closed.any():
        return overlaps
    # Build bitmasks only for neighbors that actually participate in a closed
    # pair: on high-index anchors most pairs are filtered out, and gathering
    # every neighbor's node row would be wasted work.
    left_closed = left_pos[closed]
    right_closed = right_pos[closed]
    used = np.unique(np.concatenate([left_closed, right_closed]))
    masks = _neighbor_bitmasks(csr, anchor, neighbors[used])
    left_remapped = np.searchsorted(used, left_closed)
    right_remapped = np.searchsorted(used, right_closed)
    overlaps[closed] = _popcount_rows(
        masks[left_remapped] & masks[right_remapped]
    )
    return overlaps


def count_exact_batched(
    csr: HypergraphCSR,
    adjacency: AdjacencyArrays,
    hyperedge_indices: Optional[Iterable[int]] = None,
) -> np.ndarray:
    """Exact h-motif counts (MoCHy-E) as a length-26 float array.

    For each anchor ``e_i`` the candidate pairs are every unordered
    ``{e_j, e_k} ⊆ N_{e_i}``; a pair is counted iff it is open (seen only
    from its center) or ``i < min(j, k)`` (a closed instance is attributed to
    its minimum index), exactly as in Algorithm 2.
    """
    totals = np.zeros(NUM_MOTIFS + 1, dtype=np.float64)
    sizes = csr.edge_sizes
    anchors = (
        range(csr.num_edges) if hyperedge_indices is None else hyperedge_indices
    )
    for i in anchors:
        i = int(i)
        neighbors, anchor_weights = adjacency.row(i)
        degree = neighbors.size
        if degree < 2:
            continue
        for left, right in _iter_triu_chunks(degree):
            weight_jk = adjacency.pair_weights(neighbors[left], neighbors[right])
            # neighbors is sorted, so min(j, k) == neighbors[left] per pair.
            keep = (weight_jk == 0) | (i < neighbors[left])
            if not keep.any():
                continue
            left = left[keep]
            right = right[keep]
            weight_jk = weight_jk[keep].astype(np.int64)
            closed = weight_jk > 0
            triple = _pair_triple_overlaps(csr, i, neighbors, left, right, closed)
            motifs = classify_batch(
                sizes[i],
                sizes[neighbors[left]],
                sizes[neighbors[right]],
                anchor_weights[left],
                weight_jk,
                anchor_weights[right],
                triple,
            )
            totals += np.bincount(motifs, minlength=NUM_MOTIFS + 1)
    return totals[1:]


def count_containing_batched(
    csr: HypergraphCSR,
    adjacency: AdjacencyArrays,
    anchors: Sequence[int],
) -> np.ndarray:
    """Raw counts of instances containing each anchor hyperedge (MoCHy-A).

    Visits every instance containing ``e_i`` exactly once, split into the two
    cases of Algorithm 4's inner loop:

    * both other hyperedges neighbor the anchor — every unordered pair from
      ``N_{e_i}``;
    * ``e_k`` neighbors only ``e_j`` — for each ``e_j ∈ N_{e_i}``, the
      candidates ``N_{e_j} \\ (N_{e_i} ∪ {e_i})``.
    """
    totals = np.zeros(NUM_MOTIFS + 1, dtype=np.float64)
    sizes = csr.edge_sizes
    for i in anchors:
        i = int(i)
        neighbors, anchor_weights = adjacency.row(i)
        degree = neighbors.size
        if degree == 0:
            continue
        # Case 1: pairs within the anchor's neighborhood.
        if degree >= 2:
            for left, right in _iter_triu_chunks(degree):
                weight_jk = adjacency.pair_weights(
                    neighbors[left], neighbors[right]
                ).astype(np.int64)
                closed = weight_jk > 0
                triple = _pair_triple_overlaps(
                    csr, i, neighbors, left, right, closed
                )
                motifs = classify_batch(
                    sizes[i],
                    sizes[neighbors[left]],
                    sizes[neighbors[right]],
                    anchor_weights[left],
                    weight_jk,
                    anchor_weights[right],
                    triple,
                )
                totals += np.bincount(motifs, minlength=NUM_MOTIFS + 1)
        # Case 2: e_k adjacent to e_j but not to the anchor.
        positions, owner = _gather_row_positions(
            adjacency.ptr, neighbors.astype(np.int64)
        )
        if positions.size == 0:
            continue
        candidates = adjacency.idx[positions]
        weights_jk = adjacency.weight[positions]
        in_anchor_neighborhood, _ = sorted_member_positions(neighbors, candidates)
        keep = ~in_anchor_neighborhood & (candidates != i)
        if not keep.any():
            continue
        owner = owner[keep]
        candidates = candidates[keep]
        weights_jk = weights_jk[keep]
        # e_k ∩ e_i = ∅ here, so both ω(∧_ki) and the triple overlap vanish.
        motifs = classify_batch(
            sizes[i],
            sizes[neighbors[owner]],
            sizes[candidates],
            anchor_weights[owner],
            weights_jk,
            0,
            0,
        )
        totals += np.bincount(motifs, minlength=NUM_MOTIFS + 1)
    return totals[1:]


def count_wedges_batched(
    csr: HypergraphCSR,
    adjacency: AdjacencyArrays,
    wedges: Sequence[Tuple[int, int]],
) -> np.ndarray:
    """Raw counts of instances containing each sampled hyperwedge (MoCHy-A+).

    For a wedge ``∧_ij`` the candidates are ``N_{e_i} ∪ N_{e_j}`` minus the
    wedge endpoints; triple overlaps are computed by intersecting each
    candidate hyperedge with the precomputed sorted array ``e_i ∩ e_j``.
    """
    totals = np.zeros(NUM_MOTIFS + 1, dtype=np.float64)
    sizes = csr.edge_sizes
    for i, j in wedges:
        i = int(i)
        j = int(j)
        neighbors_i, _ = adjacency.row(i)
        neighbors_j, _ = adjacency.row(j)
        candidates = np.union1d(neighbors_i, neighbors_j)
        candidates = candidates[(candidates != i) & (candidates != j)]
        if candidates.size == 0:
            continue
        weight_ij = int(adjacency.pair_weights(np.array([i]), np.array([j]))[0])
        weight_ik = adjacency.pair_weights(
            np.full(candidates.size, i), candidates
        ).astype(np.int64)
        weight_jk = adjacency.pair_weights(
            np.full(candidates.size, j), candidates
        ).astype(np.int64)
        triple = np.zeros(candidates.size, dtype=np.int64)
        needs_triple = (weight_ik > 0) & (weight_jk > 0)
        if needs_triple.any():
            shared = np.intersect1d(
                csr.edge_row(i), csr.edge_row(j), assume_unique=True
            )
            if shared.size:
                rows = candidates[needs_triple].astype(np.int64)
                values, owner = _gather_rows(csr.edge_ptr, csr.edge_nodes, rows)
                hit, _ = sorted_member_positions(shared, values)
                triple[needs_triple] = np.bincount(
                    owner[hit], minlength=len(rows)
                )
        motifs = classify_batch(
            sizes[i],
            sizes[j],
            sizes[candidates],
            weight_ij,
            weight_jk,
            weight_ik,
            triple,
        )
        totals += np.bincount(motifs, minlength=NUM_MOTIFS + 1)
    return totals[1:]
