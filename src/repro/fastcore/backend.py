"""Kernel backend selection for the batched MoCHy counters.

The counting kernels in :mod:`repro.fastcore.kernels` have two
implementations of the same arithmetic:

* ``"numpy"`` — the pure-NumPy anchor-block kernels. Always available and
  always the default: every other backend is parity-tested against it (and
  against :mod:`repro.fastcore.reference`).
* ``"numba"`` — optional JIT-compiled inner loops
  (:mod:`repro.fastcore.compiled`). Selected only when the ``numba`` package
  is importable; requesting it without numba installed raises
  :class:`~repro.exceptions.KernelBackendError` so a mis-provisioned worker
  fails loudly instead of silently running a different code path than its
  parent.

``"auto"`` resolves to ``"numba"`` when available and ``"numpy"`` otherwise;
it is accepted everywhere a backend name is (the environment variable, the
CLI flag, :class:`repro.api.KernelConfig`) but is resolved to a concrete
backend immediately, so :func:`get_backend` only ever reports ``"numpy"`` or
``"numba"``.

Selection layers, outermost wins:

1. :func:`use_backend` — a context manager for scoped overrides (what
   :class:`~repro.api.MotifEngine` uses when given a ``KernelConfig``);
2. :func:`set_backend` — the process-wide default (what the CLI's
   ``--kernel-backend`` flag sets);
3. the ``REPRO_KERNEL_BACKEND`` environment variable — the initial
   process-wide default, re-read by worker processes so forked/spawned
   executors inherit the parent's choice even without an explicit flag.

Every count is bit-identical across backends (integer arithmetic summed into
float64 well below 2**53), so the backend is deliberately *not* part of any
cache key: artifacts computed under one backend are served to engines running
another.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.exceptions import KernelBackendError

#: Environment variable holding the process-default backend name.
ENV_KERNEL_BACKEND = "REPRO_KERNEL_BACKEND"

BACKEND_NUMPY = "numpy"
BACKEND_NUMBA = "numba"
BACKEND_AUTO = "auto"

#: Concrete kernel backends (what :func:`get_backend` can return).
KERNEL_BACKENDS = (BACKEND_NUMPY, BACKEND_NUMBA)

#: Names accepted wherever a backend is chosen (CLI, env, ``KernelConfig``).
KERNEL_BACKEND_CHOICES = (BACKEND_NUMPY, BACKEND_NUMBA, BACKEND_AUTO)

_numba_probe: Optional[bool] = None
_lock = threading.Lock()
_process_backend: Optional[str] = None
# Scoped overrides are thread-local so engines with different KernelConfigs
# running on the thread executor cannot clobber each other's choice.
_local = threading.local()


def numba_available() -> bool:
    """Whether the optional numba dependency is importable (cached probe)."""
    global _numba_probe
    if _numba_probe is None:
        try:
            import numba  # noqa: F401
        except Exception:
            _numba_probe = False
        else:
            _numba_probe = True
    return _numba_probe


def resolve_backend(name: Optional[str]) -> str:
    """Resolve a requested backend name to a concrete, available backend.

    ``None`` consults the process default (:func:`set_backend`, else the
    ``REPRO_KERNEL_BACKEND`` environment variable, else ``"numpy"``);
    ``"auto"`` picks numba when importable. An explicit ``"numba"`` without
    numba installed raises :class:`KernelBackendError` — the pure-NumPy path
    is the *default* fallback, never a silent substitute for an explicit
    request.
    """
    if name is None:
        with _lock:
            if _process_backend is not None:
                return _process_backend
        name = os.environ.get(ENV_KERNEL_BACKEND) or BACKEND_NUMPY
    name = str(name).strip().lower()
    if name == BACKEND_AUTO:
        return BACKEND_NUMBA if numba_available() else BACKEND_NUMPY
    if name not in KERNEL_BACKENDS:
        raise KernelBackendError(
            f"unknown kernel backend {name!r}; choose from "
            f"{KERNEL_BACKEND_CHOICES}"
        )
    if name == BACKEND_NUMBA and not numba_available():
        raise KernelBackendError(
            "kernel backend 'numba' requested but the numba package is not "
            "installed; install the 'compiled' extra (pip install "
            "repro-mochy[compiled]) or use --kernel-backend numpy"
        )
    return name


def set_backend(name: Optional[str]) -> str:
    """Set (and return) the process-wide default backend.

    ``None`` clears the override back to the environment default. The name is
    validated and resolved eagerly, so an unavailable backend fails here, not
    in the middle of a counting run.
    """
    global _process_backend
    resolved = None if name is None else resolve_backend(name)
    with _lock:
        _process_backend = resolved
    return resolved if resolved is not None else resolve_backend(None)


def get_backend() -> str:
    """The backend the kernels will use right now (scoped override first)."""
    override = getattr(_local, "backend", None)
    if override is not None:
        return override
    return resolve_backend(None)


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[str]:
    """Scoped backend override for the current thread.

    ``None`` is a no-op context (the ambient backend applies), which lets
    callers write ``with use_backend(config and config.backend):`` without
    branching.
    """
    if name is None:
        yield get_backend()
        return
    resolved = resolve_backend(name)
    previous = getattr(_local, "backend", None)
    _local.backend = resolved
    try:
        yield resolved
    finally:
        _local.backend = previous
