"""Incremental exact h-motif counting over hyperedge deltas.

Given a counted snapshot and a batch of *added* hyperedges, the delta
engine updates the projection and the exact motif counts without
recounting the whole graph. The update exploits three structural facts of
Algorithm 2's attribution rule:

1. **Old pair weights are immutable.** Adding hyperedges never changes
   ``|e_j ∩ e_k|`` for existing edges, so every hyperwedge weight, triple
   overlap and edge size seen from an untouched anchor is exactly what it
   was before the delta.
2. **New pairs are localized.** A projected pair involving an added edge
   can only arise from the membership rows of nodes the added edges
   contain; aggregating the co-occurrence stream over those *touched*
   nodes alone yields every new pair with its full weight (every shared
   node of such a pair is by definition touched).
3. **Attribution lands on affected anchors.** Added edges receive the
   largest indices, so a closed instance involving an added edge has its
   minimum index either at an added edge or at an old edge adjacent to
   one, and an open instance's center is adjacent to both leaves —
   in all cases an *affected* anchor (an added edge, or an old edge that
   gained a new neighbor). Anchors outside that set contribute
   bit-identically before and after the delta.

The exact counts are therefore updated as::

    counts += count(new graph, affected anchors) - count(old graph, affected old anchors)

All three terms are integer-valued float64 vectors (bincount sums), exact
well below 2^53, so the incremental result is **bit-identical** to a
from-scratch recount — pinned by parity tests.

The engine keeps its own append-only dense node-id map: the friendly
:class:`~repro.hypergraph.Hypergraph` re-sorts node ids on every
construction, which would reshuffle rows between snapshots, while motif
counts are invariant under node relabeling (they depend only on edge
sizes and intersection cardinalities). Edge indices, by contrast, are
append-only by construction — the property the whole scheme rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import EmptyHyperedgeError
from repro.fastcore.csr import INDEX_DTYPE, HypergraphCSR
from repro.fastcore.kernels import count_exact_batched
from repro.fastcore.projection import (
    AdjacencyArrays,
    aggregate_cooccurrence,
    gather_row_positions,
    merge_partial_pairs,
    pairs_to_symmetric_csr,
)
from repro.hypergraph.hypergraph import _node_sort_key

Node = Hashable

__all__ = ["DeltaStats", "DeltaState", "initial_state", "apply_delta"]


@dataclass(frozen=True)
class DeltaStats:
    """Work accounting for one applied delta.

    ``affected_anchors`` is the number of anchors re-run through the exact
    kernel on the new graph (old invalidated anchors plus every added
    edge); ``invalidated_anchors`` counts only the old ones, whose stale
    contribution is also recomputed on the old graph and subtracted.
    """

    added_edges: int
    added_nodes: int
    invalidated_anchors: int
    affected_anchors: int
    pairs_added: int
    total_edges: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "added_edges": self.added_edges,
            "added_nodes": self.added_nodes,
            "invalidated_anchors": self.invalidated_anchors,
            "affected_anchors": self.affected_anchors,
            "pairs_added": self.pairs_added,
            "total_edges": self.total_edges,
        }


class DeltaState:
    """Mutable incremental-counting state for one growing hypergraph.

    Holds the CSR layout, the aggregated projection pairs, the symmetric
    adjacency and the running exact counts. :func:`apply_delta` advances
    the state in place and returns per-delta work stats. ``counts`` is the
    exact length-26 vector for the current graph at all times.
    """

    __slots__ = (
        "node_ids",
        "csr",
        "adjacency",
        "pair_keys",
        "pair_counts",
        "counts",
        "backend",
    )

    def __init__(
        self,
        node_ids: Dict[Node, int],
        csr: HypergraphCSR,
        adjacency: AdjacencyArrays,
        pair_keys: np.ndarray,
        pair_counts: np.ndarray,
        counts: np.ndarray,
        backend: Optional[str] = None,
    ) -> None:
        self.node_ids = node_ids
        self.csr = csr
        self.adjacency = adjacency
        self.pair_keys = pair_keys
        self.pair_counts = pair_counts
        self.counts = counts
        self.backend = backend

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges


def _empty_csr() -> HypergraphCSR:
    zero = np.zeros(1, dtype=INDEX_DTYPE)
    empty = np.empty(0, dtype=INDEX_DTYPE)
    for array in (zero, empty):
        array.setflags(write=False)
    return HypergraphCSR(
        num_edges=0,
        num_nodes=0,
        edge_ptr=zero,
        edge_nodes=empty,
        node_ptr=zero,
        node_edges=empty,
        edge_sizes=empty,
    )


def initial_state(
    hyperedges: Iterable[Iterable[Node]] = (),
    backend: Optional[str] = None,
) -> DeltaState:
    """A fresh state counted from scratch over *hyperedges*.

    The initial count runs through :func:`apply_delta` against an empty
    graph — the incremental and from-scratch paths are literally the same
    code, which is what makes the bit-identity claim easy to trust.
    """
    empty_keys = np.empty(0, dtype=np.int64)
    state = DeltaState(
        node_ids={},
        csr=_empty_csr(),
        adjacency=AdjacencyArrays(
            0,
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
        ),
        pair_keys=empty_keys,
        pair_counts=empty_keys.copy(),
        counts=np.zeros(26, dtype=np.float64),
        backend=backend,
    )
    edges = list(hyperedges)
    if edges:
        apply_delta(state, edges)
    return state


def _append_edge_rows(
    state: DeltaState, added: List[FrozenSet[Node]]
) -> Tuple[List[np.ndarray], int]:
    """Assign dense ids to unseen nodes and return the new sorted edge rows."""
    node_ids = state.node_ids
    added_nodes = 0
    rows: List[np.ndarray] = []
    for position, edge in enumerate(added):
        if not edge:
            raise EmptyHyperedgeError(
                f"delta hyperedge at position {position} is empty"
            )
        fresh = sorted(
            (node for node in edge if node not in node_ids), key=_node_sort_key
        )
        for node in fresh:
            node_ids[node] = len(node_ids)
        added_nodes += len(fresh)
        row = np.fromiter(
            sorted(node_ids[node] for node in edge),
            dtype=INDEX_DTYPE,
            count=len(edge),
        )
        rows.append(row)
    return rows, added_nodes


def _extend_csr(
    state: DeltaState, rows: List[np.ndarray]
) -> HypergraphCSR:
    """The CSR layout of the grown graph: old rows with *rows* appended."""
    old = state.csr
    num_edges = old.num_edges + len(rows)
    num_nodes = len(state.node_ids)
    edge_nodes = np.concatenate([old.edge_nodes, *rows])
    new_sizes = np.fromiter(
        (row.size for row in rows), dtype=INDEX_DTYPE, count=len(rows)
    )
    edge_sizes = np.concatenate([old.edge_sizes, new_sizes])
    total = int(edge_sizes.astype(np.int64).sum())
    if total > np.iinfo(INDEX_DTYPE).max:
        raise OverflowError(
            f"total incidence {total} exceeds the int32 CSR layout limit "
            f"({np.iinfo(INDEX_DTYPE).max})"
        )
    edge_ptr = np.zeros(num_edges + 1, dtype=INDEX_DTYPE)
    edge_ptr[1:] = np.cumsum(edge_sizes)

    # Transpose to node→edges rows exactly as build_csr does: one stable
    # sort on the (node, edge) key keeps per-node rows sorted by edge id.
    owner = np.repeat(np.arange(num_edges, dtype=INDEX_DTYPE), edge_sizes)
    node_key = edge_nodes.astype(np.int64) * max(num_edges, 1) + owner
    node_order = np.argsort(node_key, kind="stable")
    node_edges = owner[node_order]
    node_ptr = np.zeros(num_nodes + 1, dtype=INDEX_DTYPE)
    node_ptr[1:] = np.cumsum(np.bincount(edge_nodes, minlength=num_nodes))

    for array in (edge_ptr, edge_nodes, node_ptr, node_edges, edge_sizes):
        array.setflags(write=False)
    return HypergraphCSR(
        num_edges=num_edges,
        num_nodes=num_nodes,
        edge_ptr=edge_ptr,
        edge_nodes=edge_nodes,
        node_ptr=node_ptr,
        node_edges=node_edges,
        edge_sizes=edge_sizes,
    )


def _new_pairs(
    csr: HypergraphCSR, touched: np.ndarray, first_new_edge: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregated ``(keys, weights)`` of projected pairs involving added edges.

    Runs the standard co-occurrence aggregation over the *new* membership
    rows of the touched nodes only, then keeps the pairs whose upper
    column is an added edge (``j >= first_new_edge``). Rows are
    upper-triangular (``i < j``) and added edges hold the largest indices,
    so that filter is exactly "involves an added edge"; the surviving
    multiplicities are complete weights because every node shared with an
    added edge is touched.
    """
    if touched.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    positions, _ = gather_row_positions(csr.node_ptr, touched)
    sub_edges = csr.node_edges[positions]
    lengths = (csr.node_ptr[touched + 1] - csr.node_ptr[touched]).astype(
        np.int64
    )
    sub_ptr = np.zeros(touched.size + 1, dtype=np.int64)
    sub_ptr[1:] = np.cumsum(lengths)
    keys, counts = aggregate_cooccurrence(sub_ptr, sub_edges, csr.num_edges)
    scale = np.int64(max(csr.num_edges, 1))
    involves_new = (keys % scale) >= first_new_edge
    return keys[involves_new], counts[involves_new]


def apply_delta(
    state: DeltaState, added_edges: Iterable[Iterable[Node]]
) -> DeltaStats:
    """Grow *state* by the added hyperedges and update its exact counts.

    The added edges are appended after the existing ones (their indices
    continue the current numbering). Counts, projection pairs, adjacency
    and CSR arrays are all advanced in place; the returned stats describe
    how much work the delta actually required.
    """
    added = [frozenset(edge) for edge in added_edges]
    if not added:
        return DeltaStats(0, 0, 0, 0, 0, state.num_edges)

    first_new_edge = state.num_edges
    rows, added_nodes = _append_edge_rows(state, added)
    new_csr = _extend_csr(state, rows)

    touched = np.unique(np.concatenate(rows)).astype(np.int64)
    new_keys, new_counts = _new_pairs(new_csr, touched, first_new_edge)

    # Re-key the surviving old pairs from the old edge scale to the new
    # one; the i·|E|+j encoding is lexicographic in (i, j) under either
    # scale, so the re-keyed array stays sorted.
    old_scale = np.int64(max(first_new_edge, 1))
    new_scale = np.int64(max(new_csr.num_edges, 1))
    rekeyed = (
        (state.pair_keys // old_scale) * new_scale
        + state.pair_keys % old_scale
    )
    pair_keys, pair_counts = merge_partial_pairs(
        ((rekeyed, state.pair_counts), (new_keys, new_counts))
    )
    adjacency = AdjacencyArrays(
        new_csr.num_edges,
        *pairs_to_symmetric_csr(pair_keys, pair_counts, new_csr.num_edges),
    )

    # Affected anchors: every added edge, plus each old edge that gained a
    # neighbor (it appears as the row of a new upper-triangle pair — the
    # column is always >= first_new_edge, hence never an old edge).
    anchor_rows = new_keys // new_scale
    invalidated = np.unique(anchor_rows[anchor_rows < first_new_edge])
    affected = np.concatenate(
        [invalidated, np.arange(first_new_edge, new_csr.num_edges, dtype=np.int64)]
    )

    gained = count_exact_batched(new_csr, adjacency, affected, backend=state.backend)
    if invalidated.size:
        stale = count_exact_batched(
            state.csr, state.adjacency, invalidated, backend=state.backend
        )
        state.counts = state.counts + gained - stale
    else:
        state.counts = state.counts + gained

    state.csr = new_csr
    state.adjacency = adjacency
    state.pair_keys = pair_keys
    state.pair_counts = pair_counts
    return DeltaStats(
        added_edges=len(added),
        added_nodes=added_nodes,
        invalidated_anchors=int(invalidated.size),
        affected_anchors=int(affected.size),
        pairs_added=int(new_keys.size),
        total_edges=new_csr.num_edges,
    )
