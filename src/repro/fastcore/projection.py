"""Array-native hypergraph projection (Algorithm 1 on CSR arrays).

The projected graph ``G¯ = (E, ∧, ω)`` assigns every overlapping hyperedge
pair the weight ``ω(∧_ij) = |e_i ∩ e_j|``. On the CSR layout that weight has
a purely combinatorial reading: ``ω(∧_ij)`` equals the number of nodes whose
membership row contains both ``i`` and ``j``. The builder therefore

1. emits, for every node ``v``, all ordered pairs ``(i, j)`` with ``i < j``
   drawn from its sorted membership row (vectorized per degree bucket, so one
   fancy-indexing gather handles every node of the same degree at once);
2. encodes pairs as int64 keys ``i·|E| + j`` and aggregates duplicate keys
   with ``np.unique(..., return_counts=True)`` — the count *is* the weight.
   The occurrence stream is consumed in bounded slabs
   (:data:`PAIR_STREAM_CHUNK`) merged incrementally, so peak memory tracks
   the number of *distinct* pairs (like the seed's dict builder), not the
   total pair count — hub nodes with enormous membership rows stay safe;
3. mirrors the surviving pairs and sorts once more to obtain symmetric CSR
   adjacency ``(nbr_ptr, nbr_idx, nbr_weight)``.

Total work is ``O(P log P)`` for ``P = Σ_v C(|E_v|, 2) = Σ_{∧ij} |e_i ∩ e_j|``
— the same pair stream Algorithm 1 scans, minus the per-pair Python dict
machinery. ``aggregate_cooccurrence``/``merge_partial_pairs`` are exposed
separately so the parallel driver can aggregate per-worker partial pair
streams with the same array merge instead of dict unions.

:class:`AdjacencyArrays` is the minimal picklable view of the result that the
batched counting kernels (and worker processes) consume.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ProjectionError
from repro.fastcore.csr import INDEX_DTYPE

#: dtype used for hyperwedge weights (overlap sizes fit easily).
WEIGHT_DTYPE = np.int32


def sorted_member_positions(
    haystack: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized membership test of *values* against a sorted *haystack*.

    Returns ``(hit, positions)``: ``hit[t]`` is True iff ``values[t]`` occurs
    in *haystack*, and ``positions[t]`` is its index there (clipped into
    range, so it is only meaningful where ``hit`` is True). This is the one
    shared implementation of the searchsorted-and-verify idiom every fast
    kernel uses for overlap lookups and intersection tests.
    """
    if haystack.size == 0:
        return (
            np.zeros(len(values), dtype=bool),
            np.zeros(len(values), dtype=np.int64),
        )
    positions = np.minimum(
        np.searchsorted(haystack, values), haystack.size - 1
    )
    return haystack[positions] == values, positions


def gather_row_positions(
    ptr: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat data positions of the given CSR rows; returns ``(positions, owner)``.

    ``owner[t]`` is the position within *rows* whose row produced
    ``positions[t]``; indexing any per-entry array with *positions* is the
    pure-array equivalent of ``concatenate([data[r] ...])``.
    """
    starts = ptr[rows].astype(np.int64)
    lengths = (ptr[rows + 1] - ptr[rows]).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, lengths
    )
    owner = np.repeat(np.arange(len(rows), dtype=np.int64), lengths)
    return positions, owner


class AdjacencyArrays:
    """Picklable CSR adjacency of a projected graph.

    ``idx[ptr[i]:ptr[i+1]]`` are the neighbors of hyperedge ``i`` sorted
    ascending and ``weight`` the matching overlap sizes, so

    * a neighborhood is an O(1) pair of array slices,
    * a single overlap ``ω(∧_ij)`` is one binary search in row ``i``,
    * a *batch* of overlaps is one vectorized ``searchsorted`` against the
      globally sorted key array ``row·|E| + col`` (cached lazily),
    * a *block* of neighborhoods is one :meth:`gather_rows` call — the unit
      the anchor-block counting kernels consume.
    """

    __slots__ = ("num_vertices", "ptr", "idx", "weight", "_keys")

    def __init__(
        self, num_vertices: int, ptr: np.ndarray, idx: np.ndarray, weight: np.ndarray
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.ptr = ptr
        self.idx = idx
        self.weight = weight
        self._keys: Optional[np.ndarray] = None

    def __getstate__(self) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        # Drop the lazy key cache: workers rebuild it on first batch lookup.
        return (self.num_vertices, self.ptr, self.idx, self.weight)

    def __setstate__(
        self, state: Tuple[int, np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        self.num_vertices, self.ptr, self.idx, self.weight = state
        self._keys = None

    # ------------------------------------------------------------------ reads
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbor ids, weights)`` of vertex *i* as array slices."""
        if not 0 <= i < self.num_vertices:
            # Matches ProjectedGraph._check_vertex: a negative index would
            # otherwise wrap into a silently empty (or wrong) slice.
            raise ProjectionError(
                f"vertex {i} out of range [0, {self.num_vertices})"
            )
        start, end = self.ptr[i], self.ptr[i + 1]
        return self.idx[start:end], self.weight[start:end]

    def keys(self) -> np.ndarray:
        """Globally sorted int64 ``row·|E| + col`` keys of all entries."""
        if self._keys is None:
            rows = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), np.diff(self.ptr)
            )
            self._keys = rows * max(self.num_vertices, 1) + self.idx
        return self._keys

    def pair_weights(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized ``ω(∧_{rows[t], cols[t]})`` lookups (0 where absent)."""
        keys = self.keys()
        query = rows.astype(np.int64) * max(self.num_vertices, 1) + cols
        found, positions = sorted_member_positions(keys, query)
        if keys.size == 0:
            return np.zeros(len(rows), dtype=WEIGHT_DTYPE)
        return np.where(found, self.weight[positions], 0).astype(WEIGHT_DTYPE)

    def row_lengths(self, rows: np.ndarray) -> np.ndarray:
        """Projected degrees of the given vertices as int64."""
        rows = np.asarray(rows, dtype=np.int64)
        return (self.ptr[rows + 1] - self.ptr[rows]).astype(np.int64)

    def gather_rows(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated ``(neighbor ids, weights, lengths)`` of the given rows.

        ``lengths[t]`` is the degree of ``rows[t]``; the id/weight arrays are
        the rows laid out back to back, each sorted ascending by neighbor id.
        """
        rows = np.asarray(rows, dtype=np.int64)
        positions, _ = gather_row_positions(self.ptr, rows)
        lengths = (self.ptr[rows + 1] - self.ptr[rows]).astype(np.int64)
        return self.idx[positions], self.weight[positions], lengths


#: Maximum pair occurrences materialized at once while building a projection
#: (~32 MB of int64 keys); slabs above this are aggregated incrementally so
#: hub nodes with huge membership rows cannot blow up peak memory.
PAIR_STREAM_CHUNK = 1 << 22


def iter_triu_chunks(size: int, max_pairs: int):
    """Yield the ``(left, right)`` pairs of ``np.triu_indices(size, 1)``.

    Produces the same pairs in the same order as the unchunked call, but in
    slabs of at most *max_pairs* pairs, grouped by whole left rows (a single
    row longer than *max_pairs* is yielded alone). Shared by the counting
    kernels (per-anchor pair enumeration) and the projection builder
    (per-hub-node pair enumeration).
    """
    total = size * (size - 1) // 2
    if total <= max_pairs:
        if total:
            yield np.triu_indices(size, 1)
        return
    row = 0
    while row < size - 1:
        row_end = row
        pairs = 0
        while row_end < size - 1 and pairs + (size - 1 - row_end) <= max_pairs:
            pairs += size - 1 - row_end
            row_end += 1
        row_end = max(row_end, row + 1)  # a single huge row still progresses
        lengths = np.arange(size - 1 - row, size - 1 - row_end, -1, dtype=np.int64)
        left = np.repeat(np.arange(row, row_end, dtype=np.int64), lengths)
        offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        right = (
            np.arange(int(lengths.sum()), dtype=np.int64)
            - np.repeat(offsets, lengths)
            + np.repeat(np.arange(row, row_end, dtype=np.int64) + 1, lengths)
        )
        yield left, right
        row = row_end


def _iter_cooccurrence_partials(
    node_ptr: np.ndarray,
    node_edges: np.ndarray,
    num_edges: int,
    max_pairs: int,
):
    """Yield aggregated ``(keys, counts)`` partials of the pair stream.

    One pair key ``i·|E| + j`` (``i < j``) is produced per (node, hyperedge
    pair) co-occurrence, so a key's total multiplicity equals the hyperwedge
    weight ``ω(∧_ij)``. Nodes are processed in degree buckets — all rows of
    equal length share one upper-triangle index — and each partial is built
    from at most ~*max_pairs* pair occurrences, keeping peak memory bounded
    by the slab size plus the number of distinct pairs (as the seed's dict
    builder was) instead of the full occurrence stream.
    """
    degrees = np.diff(node_ptr)
    scale = np.int64(max(num_edges, 1))
    pending = []
    pending_size = 0
    for degree in np.unique(degrees):
        if degree < 2:
            continue
        degree = int(degree)
        nodes = np.nonzero(degrees == degree)[0]
        pairs_per_node = degree * (degree - 1) // 2
        if pairs_per_node >= max_pairs:
            # Hub rows: enumerate each row's pairs in chunks of their own.
            for node in nodes.tolist():
                row = node_edges[node_ptr[node] : node_ptr[node + 1]].astype(
                    np.int64
                )
                for left, right in iter_triu_chunks(degree, max_pairs):
                    yield aggregate_pair_keys(row[left] * scale + row[right])
            continue
        rows_per_slab = max(1, max_pairs // pairs_per_node)
        upper_i, upper_j = np.triu_indices(degree, 1)
        for start in range(0, len(nodes), rows_per_slab):
            slab = nodes[start : start + rows_per_slab]
            starts = node_ptr[slab].astype(np.int64)
            rows = node_edges[starts[:, None] + np.arange(degree)]
            # Rows are sorted ascending, so rows[:, upper_i] < rows[:, upper_j].
            keys = (
                rows[:, upper_i].astype(np.int64) * scale + rows[:, upper_j]
            ).ravel()
            pending.append(keys)
            pending_size += keys.size
            if pending_size >= max_pairs:
                yield aggregate_pair_keys(np.concatenate(pending))
                pending = []
                pending_size = 0
    if pending:
        yield aggregate_pair_keys(np.concatenate(pending))


def aggregate_cooccurrence(
    node_ptr: np.ndarray,
    node_edges: np.ndarray,
    num_edges: int,
    max_pairs: int = PAIR_STREAM_CHUNK,
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregated ``(pair keys, multiplicities)`` of all node co-occurrences."""
    # Fold each slab into the running aggregate immediately: holding all
    # partials before one big merge would keep ~one entry per occurrence
    # alive (pairs recur across slabs), defeating the bounded-memory goal.
    result = None
    for partial in _iter_cooccurrence_partials(
        node_ptr, node_edges, num_edges, max_pairs
    ):
        result = (
            partial if result is None else merge_partial_pairs((result, partial))
        )
    if result is None:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return result


def aggregate_pair_keys(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse a pair-key stream into ``(unique keys, multiplicities)``."""
    if keys.size == 0:
        return keys, np.empty(0, dtype=np.int64)
    return np.unique(keys, return_counts=True)


def merge_partial_pairs(
    partials: Tuple[Tuple[np.ndarray, np.ndarray], ...],
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-worker ``(keys, counts)`` partials, summing shared keys.

    This is the CSR partial-merge used by ``project_parallel``: partial
    aggregates from different node ranges may contain the same hyperedge pair
    (the pair's weight is a sum over *nodes*), so counts for equal keys are
    added with one sort + ``reduceat`` instead of a Python dict union.
    """
    keys = np.concatenate([part[0] for part in partials])
    counts = np.concatenate([part[1] for part in partials])
    if keys.size == 0:
        return keys, counts
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    counts = counts[order]
    boundaries = np.nonzero(np.concatenate(([True], keys[1:] != keys[:-1])))[0]
    summed = np.add.reduceat(counts, boundaries)
    return keys[boundaries], summed


def pairs_to_symmetric_csr(
    keys: np.ndarray, counts: np.ndarray, num_edges: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric CSR adjacency from aggregated upper-triangle pair keys."""
    scale = np.int64(max(num_edges, 1))
    upper_rows = (keys // scale).astype(INDEX_DTYPE)
    upper_cols = (keys % scale).astype(INDEX_DTYPE)
    rows = np.concatenate([upper_rows, upper_cols])
    cols = np.concatenate([upper_cols, upper_rows])
    weights = np.concatenate([counts, counts]).astype(WEIGHT_DTYPE)
    order = np.argsort(rows.astype(np.int64) * scale + cols, kind="stable")
    idx = cols[order]
    weight = weights[order]
    ptr = np.zeros(num_edges + 1, dtype=np.int64)
    ptr[1:] = np.cumsum(np.bincount(rows, minlength=num_edges))
    for array in (ptr, idx, weight):
        array.setflags(write=False)
    return ptr, idx, weight


def build_projection_arrays(
    node_ptr: np.ndarray, node_edges: np.ndarray, num_edges: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency ``(nbr_ptr, nbr_idx, nbr_weight)`` of the projected graph."""
    keys, counts = aggregate_cooccurrence(node_ptr, node_edges, num_edges)
    return pairs_to_symmetric_csr(keys, counts, num_edges)


def neighborhood_arrays(
    node_ptr: np.ndarray,
    node_edges: np.ndarray,
    edge_row: np.ndarray,
    i: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(neighbor ids, weights)`` of one hyperedge from the membership rows.

    The unit of work of the lazy projection: concatenate the membership rows
    of ``e_i``'s nodes and histogram them — each co-member appears once per
    shared node. Ids come back sorted ascending (``np.unique``), matching the
    row ordering of :class:`AdjacencyArrays`.
    """
    if edge_row.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pieces = [
        node_edges[node_ptr[v] : node_ptr[v + 1]] for v in edge_row.tolist()
    ]
    members = np.concatenate(pieces)
    neighbors, multiplicity = np.unique(members, return_counts=True)
    keep = neighbors != i
    return neighbors[keep].astype(np.int64), multiplicity[keep].astype(np.int64)


def neighborhood_counts(
    node_ptr: np.ndarray,
    node_edges: np.ndarray,
    edge_row: np.ndarray,
    i: int,
) -> Dict[int, int]:
    """``{j: ω(∧_ij)}`` for one hyperedge from the membership rows."""
    neighbors, multiplicity = neighborhood_arrays(node_ptr, node_edges, edge_row, i)
    return {
        int(j): int(w)
        for j, w in zip(neighbors.tolist(), multiplicity.tolist())
    }
