"""Optional numba-compiled inner loops for the MoCHy counting kernels.

The NumPy block kernels in :mod:`repro.fastcore.kernels` amortize interpreter
dispatch over thousands of candidate pairs, but still materialize the pair
slabs as arrays. On machines with numba installed the same triple visits can
run as tight compiled loops with zero intermediate allocation; this module
holds those loops.

Design rules:

* **Bit-identical or bust.** Each kernel visits exactly the triples its NumPy
  counterpart visits and performs the same integer arithmetic; counts are
  accumulated as unit increments into float64, so results are bit-identical.
  Parity is enforced by the tier-1 suite against both the NumPy kernels and
  ``repro.fastcore.reference``.
* **Errors defer to NumPy.** On any invalid triple the compiled loop returns
  a nonzero status and the caller returns ``None``; the dispatching kernel
  then re-runs the NumPy path, which raises the library's exact exception
  types with their usual messages. Invalid input aborts the whole count
  either way, so the recomputation only happens on the failure path.
* **Import-gated.** ``@_jit`` is the identity when numba is missing, so this
  module always imports and the loops stay executable as plain Python —
  which is how the test suite checks their logic on machines without numba.
  The backend selector (:mod:`repro.fastcore.backend`) never routes here
  unless numba is importable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fastcore.backend import numba_available
from repro.fastcore.csr import HypergraphCSR
from repro.fastcore.projection import AdjacencyArrays
from repro.motifs.classify import motif_lookup_table
from repro.motifs.patterns import NUM_MOTIFS

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit
except Exception:  # pragma: no cover - the common case in minimal installs
    _njit = None


def _jit(function):
    """``numba.njit`` when available, identity otherwise (keeps logic testable)."""
    if _njit is None:
        return function
    return _njit(cache=True, nogil=True)(function)  # pragma: no cover


@_jit
def _pair_weight(ptr, idx, weight, row, col):
    """``ω(∧_{row,col})`` via binary search in the sorted adjacency row."""
    lo = ptr[row]
    hi = ptr[row + 1]
    while lo < hi:
        mid = (lo + hi) // 2
        value = idx[mid]
        if value < col:
            lo = mid + 1
        elif value > col:
            hi = mid
        else:
            return weight[mid]
    return 0


@_jit
def _triple_overlap(edge_ptr, edge_nodes, i, j, k):
    """``|e_i ∩ e_j ∩ e_k|`` by three-pointer merge over sorted node rows."""
    ai = edge_ptr[i]
    bi = edge_ptr[i + 1]
    aj = edge_ptr[j]
    bj = edge_ptr[j + 1]
    ak = edge_ptr[k]
    bk = edge_ptr[k + 1]
    count = 0
    while ai < bi and aj < bj and ak < bk:
        vi = edge_nodes[ai]
        vj = edge_nodes[aj]
        vk = edge_nodes[ak]
        if vi == vj and vj == vk:
            count += 1
            ai += 1
            aj += 1
            ak += 1
        else:
            top = vi
            if vj > top:
                top = vj
            if vk > top:
                top = vk
            if vi < top:
                ai += 1
            if vj < top:
                aj += 1
            if vk < top:
                ak += 1
    return count


@_jit
def _classify(lookup, size_i, size_j, size_k, w_ij, w_jk, w_ki, triple):
    """Motif id for one triple; negative on any invalid configuration.

    Mirrors ``classify_batch``: Venn regions by inclusion–exclusion, a 7-bit
    occupancy code, then the 128-entry lookup table (whose negative
    sentinels pass straight through).
    """
    only_i = size_i - w_ij - w_ki + triple
    only_j = size_j - w_ij - w_jk + triple
    only_k = size_k - w_ki - w_jk + triple
    pair_ij = w_ij - triple
    pair_jk = w_jk - triple
    pair_ki = w_ki - triple
    if (
        only_i < 0
        or only_j < 0
        or only_k < 0
        or pair_ij < 0
        or pair_jk < 0
        or pair_ki < 0
        or triple < 0
    ):
        return -100
    code = 0
    if only_i > 0:
        code |= 1
    if only_j > 0:
        code |= 2
    if only_k > 0:
        code |= 4
    if pair_ij > 0:
        code |= 8
    if pair_jk > 0:
        code |= 16
    if pair_ki > 0:
        code |= 32
    if triple > 0:
        code |= 64
    return lookup[code]


@_jit
def _count_exact_loop(
    edge_ptr, edge_nodes, edge_sizes, adj_ptr, adj_idx, adj_weight,
    anchors, lookup, totals,
):
    for t in range(anchors.shape[0]):
        i = anchors[t]
        row_start = adj_ptr[i]
        row_end = adj_ptr[i + 1]
        for a in range(row_start, row_end - 1):
            j = adj_idx[a]
            w_ij = adj_weight[a]
            for b in range(a + 1, row_end):
                k = adj_idx[b]
                w_ik = adj_weight[b]
                w_jk = _pair_weight(adj_ptr, adj_idx, adj_weight, j, k)
                # Closed instances are attributed to their minimum index;
                # j == min(j, k) because the row is sorted.
                if w_jk != 0 and i >= j:
                    continue
                triple = 0
                if w_jk > 0:
                    triple = _triple_overlap(edge_ptr, edge_nodes, i, j, k)
                motif = _classify(
                    lookup,
                    edge_sizes[i], edge_sizes[j], edge_sizes[k],
                    w_ij, w_jk, w_ik, triple,
                )
                if motif < 0:
                    return 1
                totals[motif] += 1.0
    return 0


@_jit
def _count_containing_loop(
    edge_ptr, edge_nodes, edge_sizes, adj_ptr, adj_idx, adj_weight,
    anchors, lookup, totals,
):
    for t in range(anchors.shape[0]):
        i = anchors[t]
        row_start = adj_ptr[i]
        row_end = adj_ptr[i + 1]
        for a in range(row_start, row_end):
            j = adj_idx[a]
            w_ij = adj_weight[a]
            # Case 1: both other hyperedges neighbor the anchor.
            for b in range(a + 1, row_end):
                k = adj_idx[b]
                w_ik = adj_weight[b]
                w_jk = _pair_weight(adj_ptr, adj_idx, adj_weight, j, k)
                triple = 0
                if w_jk > 0:
                    triple = _triple_overlap(edge_ptr, edge_nodes, i, j, k)
                motif = _classify(
                    lookup,
                    edge_sizes[i], edge_sizes[j], edge_sizes[k],
                    w_ij, w_jk, w_ik, triple,
                )
                if motif < 0:
                    return 1
                totals[motif] += 1.0
            # Case 2: e_k adjacent to e_j but not to the anchor.
            for p in range(adj_ptr[j], adj_ptr[j + 1]):
                k = adj_idx[p]
                if k == i:
                    continue
                if _pair_weight(adj_ptr, adj_idx, adj_weight, i, k) != 0:
                    continue
                motif = _classify(
                    lookup,
                    edge_sizes[i], edge_sizes[j], edge_sizes[k],
                    w_ij, adj_weight[p], 0, 0,
                )
                if motif < 0:
                    return 1
                totals[motif] += 1.0
    return 0


@_jit
def _count_wedges_loop(
    edge_ptr, edge_nodes, edge_sizes, adj_ptr, adj_idx, adj_weight,
    wedge_i, wedge_j, lookup, totals,
):
    for t in range(wedge_i.shape[0]):
        i = wedge_i[t]
        j = wedge_j[t]
        w_ij = _pair_weight(adj_ptr, adj_idx, adj_weight, i, j)
        ai = adj_ptr[i]
        bi = adj_ptr[i + 1]
        aj = adj_ptr[j]
        bj = adj_ptr[j + 1]
        # Merged union of the two sorted neighbor rows; the merge yields each
        # candidate's ω(∧_ik)/ω(∧_jk) without extra binary searches.
        while ai < bi or aj < bj:
            if aj >= bj or (ai < bi and adj_idx[ai] < adj_idx[aj]):
                k = adj_idx[ai]
                w_ik = adj_weight[ai]
                w_jk = 0
                ai += 1
            elif ai >= bi or adj_idx[aj] < adj_idx[ai]:
                k = adj_idx[aj]
                w_ik = 0
                w_jk = adj_weight[aj]
                aj += 1
            else:
                k = adj_idx[ai]
                w_ik = adj_weight[ai]
                w_jk = adj_weight[aj]
                ai += 1
                aj += 1
            if k == i or k == j:
                continue
            triple = 0
            if w_ik > 0 and w_jk > 0:
                triple = _triple_overlap(edge_ptr, edge_nodes, i, j, k)
            motif = _classify(
                lookup,
                edge_sizes[i], edge_sizes[j], edge_sizes[k],
                w_ij, w_jk, w_ik, triple,
            )
            if motif < 0:
                return 1
            totals[motif] += 1.0
    return 0


def _run(loop, csr: HypergraphCSR, adjacency: AdjacencyArrays, *anchor_arrays):
    totals = np.zeros(NUM_MOTIFS + 1, dtype=np.float64)
    status = loop(
        csr.edge_ptr,
        csr.edge_nodes,
        csr.edge_sizes,
        adjacency.ptr,
        adjacency.idx,
        adjacency.weight,
        *anchor_arrays,
        motif_lookup_table(),
        totals,
    )
    if status != 0:
        # Invalid triple: hand back to the NumPy path, which raises the
        # library's exact exception types.
        return None
    return totals[1:]


def count_exact(
    csr: HypergraphCSR, adjacency: AdjacencyArrays, anchors: np.ndarray
) -> Optional[np.ndarray]:
    """Compiled MoCHy-E; ``None`` means "fall back to the NumPy kernels"."""
    if not numba_available():
        return None
    return _run(_count_exact_loop, csr, adjacency, anchors)


def count_containing(
    csr: HypergraphCSR, adjacency: AdjacencyArrays, anchors: np.ndarray
) -> Optional[np.ndarray]:
    """Compiled MoCHy-A inner counts; ``None`` = fall back to NumPy."""
    if not numba_available():
        return None
    return _run(_count_containing_loop, csr, adjacency, anchors)


def count_wedges(
    csr: HypergraphCSR,
    adjacency: AdjacencyArrays,
    wedge_i: np.ndarray,
    wedge_j: np.ndarray,
) -> Optional[np.ndarray]:
    """Compiled MoCHy-A+ inner counts; ``None`` = fall back to NumPy."""
    if not numba_available():
        return None
    return _run(_count_wedges_loop, csr, adjacency, wedge_i, wedge_j)
