"""Null models for hypergraph randomization."""

from repro.randomization.chung_lu import (
    chung_lu_bipartite,
    chung_lu_hypergraph,
    weighted_slot_fill,
)
from repro.randomization.null_model import (
    NULL_MODEL_CHUNG_LU,
    NULL_MODEL_SLOT_FILL,
    NULL_MODELS,
    NullModelCounts,
    get_randomizer,
    random_motif_counts,
    randomize,
)

__all__ = [
    "chung_lu_bipartite",
    "chung_lu_hypergraph",
    "weighted_slot_fill",
    "NULL_MODEL_CHUNG_LU",
    "NULL_MODEL_SLOT_FILL",
    "NULL_MODELS",
    "NullModelCounts",
    "get_randomizer",
    "random_motif_counts",
    "randomize",
]
