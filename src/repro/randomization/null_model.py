"""Null-model driver: randomized hypergraphs and their averaged motif counts.

The significance of an h-motif compares its count in the real hypergraph with
the *average* count over several randomized hypergraphs (the paper uses five).
:func:`random_motif_counts` runs the full loop: generate randomizations, count
each with the chosen MoCHy variant, and average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.exceptions import RandomizationError
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.randomization.chung_lu import chung_lu_hypergraph, weighted_slot_fill
from repro.counting.runner import ALGORITHM_EXACT
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs
from repro.utils.validation import require_positive_int

#: Named null models available to callers and the CLI.
NULL_MODEL_CHUNG_LU = "chung-lu"
NULL_MODEL_SLOT_FILL = "slot-fill"
NULL_MODELS = (NULL_MODEL_CHUNG_LU, NULL_MODEL_SLOT_FILL)

RandomizerFn = Callable[..., Hypergraph]

_RANDOMIZERS = {
    NULL_MODEL_CHUNG_LU: chung_lu_hypergraph,
    NULL_MODEL_SLOT_FILL: weighted_slot_fill,
}


def get_randomizer(null_model: str) -> RandomizerFn:
    """The randomization function registered under *null_model*."""
    try:
        return _RANDOMIZERS[null_model]
    except KeyError:
        raise RandomizationError(
            f"unknown null model {null_model!r}; choose from {NULL_MODELS}"
        ) from None


def randomize(
    hypergraph: Hypergraph,
    num_samples: int = 5,
    null_model: str = NULL_MODEL_CHUNG_LU,
    seed: SeedLike = None,
) -> List[Hypergraph]:
    """Generate *num_samples* randomized versions of *hypergraph*."""
    require_positive_int(num_samples, "num_samples")
    randomizer = get_randomizer(null_model)
    rngs = spawn_rngs(seed, num_samples)
    return [
        randomizer(hypergraph, seed=rng, name=f"{hypergraph.name}-rand{index}")
        for index, rng in enumerate(rngs)
    ]


@dataclass(frozen=True)
class NullModelCounts:
    """Averaged motif counts over randomized hypergraphs, with the per-sample counts."""

    mean_counts: MotifCounts
    per_sample_counts: List[MotifCounts]
    null_model: str


def random_motif_counts(
    hypergraph: Hypergraph,
    num_random: int = 5,
    null_model: str = NULL_MODEL_CHUNG_LU,
    algorithm: str = ALGORITHM_EXACT,
    sampling_ratio: Optional[float] = None,
    seed: SeedLike = None,
) -> NullModelCounts:
    """Average h-motif counts over *num_random* randomized hypergraphs.

    Parameters
    ----------
    algorithm / sampling_ratio:
        Counting configuration applied to every randomized hypergraph; the
        paper uses the same algorithm for the real and randomized ones.
    """
    # Imported here: repro.api builds on this module (random_motif_counts).
    from repro.api.config import CountSpec
    from repro.api.engine import MotifEngine

    require_positive_int(num_random, "num_random")
    rng = ensure_rng(seed)
    randomized = randomize(hypergraph, num_random, null_model, seed=rng)
    per_sample: List[MotifCounts] = []
    for sample in randomized:
        # The randomized hypergraphs are ephemeral by construction, so count
        # them with store-less engines: persisting their projections/counts
        # would grow the artifact store with entries whose fingerprints never
        # recur (the *aggregated* null counts are what the caller persists).
        spec = CountSpec(
            algorithm=algorithm, sampling_ratio=sampling_ratio, seed=rng
        )
        per_sample.append(MotifEngine(sample, store=False).count(spec).counts)
    return NullModelCounts(
        mean_counts=MotifCounts.mean(per_sample),
        per_sample_counts=per_sample,
        null_model=null_model,
    )
