"""Bipartite Chung–Lu randomization of a hypergraph (paper Section 2.3).

The hypergraph ``G = (V, E)`` is viewed as its incidence bipartite graph
``G' = (V ∪ E, {(v, e) : v ∈ e})``. The Chung–Lu model generates a random
bipartite graph in which the expected degree of every vertex matches its
degree in ``G'``: node ``v`` and hyperedge-slot ``e`` are connected with
probability ``min(1, d_v · d_e / m)`` where ``m = Σ_e |e|`` is the number of
incidences. Converting the generated bipartite graph back to a hypergraph
yields a randomized hypergraph whose node-degree and hyperedge-size
distributions approximately match the original — the null model against which
h-motif significance is measured.

Two implementations are provided:

* :func:`chung_lu_bipartite` — the faithful Bernoulli model, with the standard
  sorted-weight geometric-skipping speedup so dense pairs are not all visited.
  All hyperedges advance through the sorted node list together: each round
  draws the geometric skips and acceptance tests for the whole frontier of
  still-active hyperedges in one vectorized sweep.
* :func:`weighted_slot_fill` — a simpler per-hyperedge refill (each slot of a
  hyperedge is filled with a node drawn proportionally to node degree). It
  exactly preserves the hyperedge-size distribution and preserves node degrees
  in expectation; it is used as a fallback and as an ablation null model.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import RandomizationError
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng

#: Rounds of vectorized duplicate-redraw before ``weighted_slot_fill`` falls
#: back to per-hyperedge ``rng.choice(replace=False)`` for the stragglers.
_SLOT_FILL_ROUNDS = 50


def chung_lu_hypergraph(
    hypergraph: Hypergraph, seed: SeedLike = None, name: str | None = None
) -> Hypergraph:
    """One Chung–Lu randomization of *hypergraph*.

    Hyperedge-side vertices that end up with no incident nodes (possible under
    the Bernoulli model) are dropped, matching the paper's construction where
    only non-empty hyperedges survive. Exact duplicate hyperedges are also
    dropped, because motif counting (like the paper's preprocessing) assumes
    distinct hyperedges.
    """
    if hypergraph.num_hyperedges == 0:
        raise RandomizationError("cannot randomize an empty hypergraph")
    rng = ensure_rng(seed)
    # Degrees come straight off the CSR view: node ids are positions in
    # ``hypergraph.nodes()``, so the pointer gaps line up with *node_labels*.
    csr = hypergraph.csr()
    node_labels = hypergraph.nodes()
    node_degrees = np.diff(csr.node_ptr).astype(float)
    edge_sizes = np.asarray(csr.edge_sizes, dtype=float)
    memberships = chung_lu_bipartite(node_degrees, edge_sizes, rng)
    edges: List[List] = []
    seen = set()
    for members in memberships:
        if members:
            key = frozenset(members)
            if key in seen:
                continue
            seen.add(key)
            edges.append([node_labels[index] for index in members])
    if not edges:
        raise RandomizationError(
            "Chung-Lu randomization produced no non-empty hyperedges; "
            "the input hypergraph is too sparse for this null model"
        )
    return Hypergraph(edges, name=name or f"{hypergraph.name}-randomized")


def chung_lu_bipartite(
    node_degrees: Sequence[float],
    edge_sizes: Sequence[float],
    rng: np.random.Generator,
) -> List[List[int]]:
    """Sample a bipartite graph with the given expected degree sequences.

    Returns, for each hyperedge-side vertex, the list of node indices linked
    to it. Uses the efficient Chung–Lu sampling of Aksoy et al.: nodes are
    sorted by weight and, for each hyperedge, candidate nodes are visited with
    geometric skips so the expected work is proportional to the number of
    generated edges rather than ``|V| · |E|``. The skip/accept recurrence is
    identical for every hyperedge, so all hyperedges are advanced in lockstep:
    each round draws one skip and one acceptance uniform per still-active
    hyperedge and updates the whole frontier with array operations.
    """
    node_degrees = np.asarray(node_degrees, dtype=float)
    edge_sizes = np.asarray(edge_sizes, dtype=float)
    if np.any(node_degrees < 0) or np.any(edge_sizes < 0):
        raise RandomizationError("degrees must be non-negative")
    total = node_degrees.sum()
    if total <= 0 or edge_sizes.sum() <= 0:
        raise RandomizationError("degree sequences must have positive totals")

    # Sort nodes by decreasing weight; probabilities are monotone along the list.
    order = np.argsort(-node_degrees)
    sorted_degrees = node_degrees[order]
    num_nodes = len(sorted_degrees)
    num_edges = len(edge_sizes)

    # Frontier state: one cursor and one carried probability per active edge.
    active = np.flatnonzero(edge_sizes > 0).astype(np.int64)
    position = np.zeros(active.size, dtype=np.int64)
    probability = np.minimum(1.0, edge_sizes[active] * sorted_degrees[0] / total)
    keep = probability > 0
    active, position, probability = active[keep], position[keep], probability[keep]

    hit_edges: List[np.ndarray] = []
    hit_nodes: List[np.ndarray] = []
    while active.size:
        # Geometric skip: jump over nodes that would not connect. 1 - random()
        # lies in (0, 1], so the logarithm is finite; probability == 1 skips 0.
        skippable = probability < 1.0
        if np.any(skippable):
            draws = rng.random(active.size)
            with np.errstate(divide="ignore", invalid="ignore"):
                skip = np.floor(
                    np.log1p(-draws) / np.log1p(-probability)
                ).astype(np.int64)
            position = position + np.where(skippable, skip, 0)
        alive = position < num_nodes
        active, position, probability = (
            active[alive],
            position[alive],
            probability[alive],
        )
        if not active.size:
            break
        current = np.minimum(
            1.0, edge_sizes[active] * sorted_degrees[position] / total
        )
        accept = rng.random(active.size) < current / probability
        if np.any(accept):
            hit_edges.append(active[accept])
            hit_nodes.append(order[position[accept]])
        probability = current
        position = position + 1
        alive = (position < num_nodes) & (probability > 0)
        active, position, probability = (
            active[alive],
            position[alive],
            probability[alive],
        )

    return _group_by_edge(hit_edges, hit_nodes, num_edges)


def _group_by_edge(
    hit_edges: List[np.ndarray], hit_nodes: List[np.ndarray], num_edges: int
) -> List[List[int]]:
    """Regroup flat (edge, node) hit arrays into per-edge member lists."""
    if not hit_edges:
        return [[] for _ in range(num_edges)]
    edges_flat = np.concatenate(hit_edges)
    nodes_flat = np.concatenate(hit_nodes)
    grouped = np.argsort(edges_flat, kind="stable")
    edges_flat, nodes_flat = edges_flat[grouped], nodes_flat[grouped]
    bounds = np.searchsorted(edges_flat, np.arange(num_edges + 1))
    return [
        nodes_flat[bounds[index] : bounds[index + 1]].tolist()
        for index in range(num_edges)
    ]


def weighted_slot_fill(
    hypergraph: Hypergraph, seed: SeedLike = None, name: str | None = None
) -> Hypergraph:
    """Size-preserving null model: refill every hyperedge with degree-weighted nodes.

    Each hyperedge keeps its size; its members are re-drawn without replacement
    with probability proportional to node degree. Node degrees are preserved in
    expectation, hyperedge sizes exactly. All slots across all hyperedges are
    drawn at once via inverse-CDF ``searchsorted``; within-hyperedge duplicates
    are redrawn in vectorized rounds, with a per-hyperedge
    ``rng.choice(replace=False)`` fallback for any hyperedge still clashing
    after :data:`_SLOT_FILL_ROUNDS` rounds. Used as an ablation alternative to
    the Chung–Lu model.
    """
    if hypergraph.num_hyperedges == 0:
        raise RandomizationError("cannot randomize an empty hypergraph")
    rng = ensure_rng(seed)
    csr = hypergraph.csr()
    node_labels = hypergraph.nodes()
    num_nodes = len(node_labels)
    degrees = np.diff(csr.node_ptr).astype(float)
    probabilities = degrees / degrees.sum()
    cumulative = np.cumsum(probabilities)
    cumulative[-1] = 1.0  # guard against round-off excluding the last node

    sizes = np.minimum(np.asarray(csr.edge_sizes, dtype=np.int64), num_nodes)
    total_slots = int(sizes.sum())
    owner = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    picks = np.searchsorted(cumulative, rng.random(total_slots), side="right")
    picks = np.minimum(picks, num_nodes - 1).astype(np.int64)

    # Redraw slots that collide with another slot of the same hyperedge.
    for _ in range(_SLOT_FILL_ROUNDS):
        duplicate = _duplicate_slots(owner, picks, num_nodes)
        if not np.any(duplicate):
            break
        redraw = np.searchsorted(
            cumulative, rng.random(int(duplicate.sum())), side="right"
        )
        picks[duplicate] = np.minimum(redraw, num_nodes - 1)
    else:
        # Stragglers (e.g. a hyperedge needing nearly every node): draw those
        # hyperedges whole, without replacement, the slow exact way.
        duplicate = _duplicate_slots(owner, picks, num_nodes)
        for edge in np.unique(owner[duplicate]):
            slots = owner == edge
            picks[slots] = rng.choice(
                num_nodes, size=int(slots.sum()), replace=False, p=probabilities
            )

    bounds = np.concatenate(([0], np.cumsum(sizes)))
    edges: List[List] = []
    seen = set()
    for index in range(sizes.size):
        members = picks[bounds[index] : bounds[index + 1]]
        key = frozenset(int(pick) for pick in members)
        if key in seen:
            continue
        seen.add(key)
        edges.append([node_labels[int(pick)] for pick in members])
    return Hypergraph(edges, name=name or f"{hypergraph.name}-slotfill")


def _duplicate_slots(
    owner: np.ndarray, picks: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Mask of slots whose pick repeats an earlier pick of the same hyperedge."""
    keys = owner * np.int64(num_nodes) + picks
    grouped = np.argsort(keys, kind="stable")
    sorted_keys = keys[grouped]
    duplicate_sorted = np.zeros(keys.size, dtype=bool)
    duplicate_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
    duplicate = np.zeros(keys.size, dtype=bool)
    duplicate[grouped] = duplicate_sorted
    return duplicate
