"""Bipartite Chung–Lu randomization of a hypergraph (paper Section 2.3).

The hypergraph ``G = (V, E)`` is viewed as its incidence bipartite graph
``G' = (V ∪ E, {(v, e) : v ∈ e})``. The Chung–Lu model generates a random
bipartite graph in which the expected degree of every vertex matches its
degree in ``G'``: node ``v`` and hyperedge-slot ``e`` are connected with
probability ``min(1, d_v · d_e / m)`` where ``m = Σ_e |e|`` is the number of
incidences. Converting the generated bipartite graph back to a hypergraph
yields a randomized hypergraph whose node-degree and hyperedge-size
distributions approximately match the original — the null model against which
h-motif significance is measured.

Two implementations are provided:

* :func:`chung_lu_bipartite` — the faithful Bernoulli model, with the standard
  sorted-weight geometric-skipping speedup so dense pairs are not all visited.
* :func:`weighted_slot_fill` — a simpler per-hyperedge refill (each slot of a
  hyperedge is filled with a node drawn proportionally to node degree). It
  exactly preserves the hyperedge-size distribution and preserves node degrees
  in expectation; it is used as a fallback and as an ablation null model.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import RandomizationError
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng


def chung_lu_hypergraph(
    hypergraph: Hypergraph, seed: SeedLike = None, name: str | None = None
) -> Hypergraph:
    """One Chung–Lu randomization of *hypergraph*.

    Hyperedge-side vertices that end up with no incident nodes (possible under
    the Bernoulli model) are dropped, matching the paper's construction where
    only non-empty hyperedges survive. Exact duplicate hyperedges are also
    dropped, because motif counting (like the paper's preprocessing) assumes
    distinct hyperedges.
    """
    if hypergraph.num_hyperedges == 0:
        raise RandomizationError("cannot randomize an empty hypergraph")
    rng = ensure_rng(seed)
    node_labels = list(hypergraph.nodes())
    node_degrees = np.array(
        [hypergraph.degree(node) for node in node_labels], dtype=float
    )
    edge_sizes = np.array(hypergraph.hyperedge_sizes(), dtype=float)
    memberships = chung_lu_bipartite(node_degrees, edge_sizes, rng)
    edges: List[List] = []
    seen = set()
    for members in memberships:
        if members:
            key = frozenset(members)
            if key in seen:
                continue
            seen.add(key)
            edges.append([node_labels[index] for index in members])
    if not edges:
        raise RandomizationError(
            "Chung-Lu randomization produced no non-empty hyperedges; "
            "the input hypergraph is too sparse for this null model"
        )
    return Hypergraph(edges, name=name or f"{hypergraph.name}-randomized")


def chung_lu_bipartite(
    node_degrees: Sequence[float],
    edge_sizes: Sequence[float],
    rng: np.random.Generator,
) -> List[List[int]]:
    """Sample a bipartite graph with the given expected degree sequences.

    Returns, for each hyperedge-side vertex, the list of node indices linked
    to it. Uses the efficient Chung–Lu sampling of Aksoy et al.: nodes are
    sorted by weight and, for each hyperedge, candidate nodes are visited with
    geometric skips so the expected work is proportional to the number of
    generated edges rather than ``|V| · |E|``.
    """
    node_degrees = np.asarray(node_degrees, dtype=float)
    edge_sizes = np.asarray(edge_sizes, dtype=float)
    if np.any(node_degrees < 0) or np.any(edge_sizes < 0):
        raise RandomizationError("degrees must be non-negative")
    total = node_degrees.sum()
    if total <= 0 or edge_sizes.sum() <= 0:
        raise RandomizationError("degree sequences must have positive totals")

    # Sort nodes by decreasing weight; probabilities are monotone along the list.
    order = np.argsort(-node_degrees)
    sorted_degrees = node_degrees[order]
    num_nodes = len(sorted_degrees)
    memberships: List[List[int]] = []
    for edge_size in edge_sizes:
        members: List[int] = []
        if edge_size <= 0:
            memberships.append(members)
            continue
        position = 0
        probability = min(1.0, edge_size * sorted_degrees[0] / total) if num_nodes else 0.0
        while position < num_nodes and probability > 0:
            if probability < 1.0:
                # Geometric skip: jump over nodes that would not connect.
                # 1 - random() lies in (0, 1], so the logarithm is finite.
                skip = int(np.floor(np.log(1.0 - rng.random()) / np.log(1.0 - probability)))
                position += skip
            if position >= num_nodes:
                break
            current = min(1.0, edge_size * sorted_degrees[position] / total)
            if rng.random() < current / probability:
                members.append(int(order[position]))
            probability = current
            position += 1
        memberships.append(members)
    return memberships


def weighted_slot_fill(
    hypergraph: Hypergraph, seed: SeedLike = None, name: str | None = None
) -> Hypergraph:
    """Size-preserving null model: refill every hyperedge with degree-weighted nodes.

    Each hyperedge keeps its size; its members are re-drawn without replacement
    with probability proportional to node degree. Node degrees are preserved in
    expectation, hyperedge sizes exactly. Used as an ablation alternative to
    the Chung–Lu model.
    """
    if hypergraph.num_hyperedges == 0:
        raise RandomizationError("cannot randomize an empty hypergraph")
    rng = ensure_rng(seed)
    node_labels = list(hypergraph.nodes())
    degrees = np.array([hypergraph.degree(node) for node in node_labels], dtype=float)
    probabilities = degrees / degrees.sum()
    edges: List[List] = []
    seen = set()
    for size in hypergraph.hyperedge_sizes():
        size = min(size, len(node_labels))
        chosen = rng.choice(len(node_labels), size=size, replace=False, p=probabilities)
        key = frozenset(int(index) for index in chosen)
        if key in seen:
            continue
        seen.add(key)
        edges.append([node_labels[int(index)] for index in chosen])
    return Hypergraph(edges, name=name or f"{hypergraph.name}-slotfill")
