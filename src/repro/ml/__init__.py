"""From-scratch binary classifiers used by the hyperedge-prediction application."""

from repro.ml.base import BinaryClassifier, StandardScaler, validate_features_labels
from repro.ml.logistic import LogisticRegression
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.mlp import MLPClassifier

__all__ = [
    "BinaryClassifier",
    "StandardScaler",
    "validate_features_labels",
    "LogisticRegression",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "MLPClassifier",
]


def default_classifiers(seed: int = 0) -> dict:
    """The five classifier families of the paper's Table 4, with default settings."""
    return {
        "logistic-regression": LogisticRegression(),
        "random-forest": RandomForestClassifier(seed=seed),
        "decision-tree": DecisionTreeClassifier(seed=seed),
        "k-nearest-neighbors": KNeighborsClassifier(),
        "mlp": MLPClassifier(seed=seed),
    }
