"""k-nearest-neighbours classifier on standardized Euclidean distance."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BinaryClassifier, StandardScaler, validate_features_labels
from repro.utils.validation import require_positive_int


class KNeighborsClassifier(BinaryClassifier):
    """Binary k-NN with an optional internal standardizer.

    Parameters
    ----------
    num_neighbors:
        Number of neighbours whose labels are averaged into the probability.
    standardize:
        Standardize features before computing distances (recommended when
        feature scales differ, as with raw motif counts).
    """

    def __init__(self, num_neighbors: int = 5, standardize: bool = True) -> None:
        super().__init__()
        require_positive_int(num_neighbors, "num_neighbors")
        self.num_neighbors = int(num_neighbors)
        self.standardize = bool(standardize)
        self._scaler: Optional[StandardScaler] = None
        self._train_features: Optional[np.ndarray] = None
        self._train_labels: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNeighborsClassifier":
        features, labels = validate_features_labels(features, labels)
        if self.standardize:
            self._scaler = StandardScaler()
            features = self._scaler.fit_transform(features)
        self._train_features = features
        self._train_labels = labels
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features, _ = validate_features_labels(features)
        if self._scaler is not None:
            features = self._scaler.transform(features)
        neighbors = min(self.num_neighbors, self._train_features.shape[0])
        probabilities = np.empty(features.shape[0])
        for row_index, row in enumerate(features):
            distances = np.linalg.norm(self._train_features - row, axis=1)
            nearest = np.argpartition(distances, neighbors - 1)[:neighbors]
            probabilities[row_index] = self._train_labels[nearest].mean()
        return probabilities
