"""A small multi-layer perceptron (one hidden ReLU layer, sigmoid output)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BinaryClassifier, StandardScaler, validate_features_labels
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def _sigmoid(values: np.ndarray) -> np.ndarray:
    clipped = np.clip(values, -35.0, 35.0)
    return 1.0 / (1.0 + np.exp(-clipped))


class MLPClassifier(BinaryClassifier):
    """Binary MLP trained with mini-batch gradient descent and cross-entropy loss.

    Parameters
    ----------
    hidden_units:
        Width of the single hidden layer.
    learning_rate:
        Gradient step size.
    num_epochs:
        Passes over the training data.
    batch_size:
        Mini-batch size (clamped to the dataset size).
    l2_penalty:
        Weight-decay coefficient.
    seed:
        Randomness for initialization and shuffling.
    """

    def __init__(
        self,
        hidden_units: int = 32,
        learning_rate: float = 0.05,
        num_epochs: int = 200,
        batch_size: int = 32,
        l2_penalty: float = 1e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        require_positive_int(hidden_units, "hidden_units")
        require_positive_int(num_epochs, "num_epochs")
        require_positive_int(batch_size, "batch_size")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        self.hidden_units = int(hidden_units)
        self.learning_rate = float(learning_rate)
        self.num_epochs = int(num_epochs)
        self.batch_size = int(batch_size)
        self.l2_penalty = float(l2_penalty)
        self._rng = ensure_rng(seed)
        self._scaler: Optional[StandardScaler] = None
        self._weights_hidden: Optional[np.ndarray] = None
        self._bias_hidden: Optional[np.ndarray] = None
        self._weights_output: Optional[np.ndarray] = None
        self._bias_output: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        features, labels = validate_features_labels(features, labels)
        self._scaler = StandardScaler()
        features = self._scaler.fit_transform(features)
        num_samples, num_features = features.shape
        scale = 1.0 / np.sqrt(num_features)
        self._weights_hidden = self._rng.normal(0.0, scale, size=(num_features, self.hidden_units))
        self._bias_hidden = np.zeros(self.hidden_units)
        self._weights_output = self._rng.normal(0.0, 1.0 / np.sqrt(self.hidden_units), size=self.hidden_units)
        self._bias_output = 0.0
        batch_size = min(self.batch_size, num_samples)
        for _ in range(self.num_epochs):
            order = self._rng.permutation(num_samples)
            for start in range(0, num_samples, batch_size):
                batch = order[start : start + batch_size]
                self._step(features[batch], labels[batch])
        self._fitted = True
        return self

    def _step(self, features: np.ndarray, labels: np.ndarray) -> None:
        batch_size = features.shape[0]
        hidden_pre = features @ self._weights_hidden + self._bias_hidden
        hidden = np.maximum(hidden_pre, 0.0)
        logits = hidden @ self._weights_output + self._bias_output
        probabilities = _sigmoid(logits)
        errors = probabilities - labels

        grad_weights_output = hidden.T @ errors / batch_size + self.l2_penalty * self._weights_output
        grad_bias_output = errors.mean()
        grad_hidden = np.outer(errors, self._weights_output) * (hidden_pre > 0)
        grad_weights_hidden = features.T @ grad_hidden / batch_size + self.l2_penalty * self._weights_hidden
        grad_bias_hidden = grad_hidden.mean(axis=0)

        self._weights_output -= self.learning_rate * grad_weights_output
        self._bias_output -= self.learning_rate * grad_bias_output
        self._weights_hidden -= self.learning_rate * grad_weights_hidden
        self._bias_hidden -= self.learning_rate * grad_bias_hidden

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features, _ = validate_features_labels(features)
        features = self._scaler.transform(features)
        hidden = np.maximum(features @ self._weights_hidden + self._bias_hidden, 0.0)
        return _sigmoid(hidden @ self._weights_output + self._bias_output)
