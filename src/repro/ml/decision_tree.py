"""CART-style decision tree classifier (Gini impurity, axis-aligned splits)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import BinaryClassifier, validate_features_labels
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


@dataclass
class _Node:
    """A tree node; leaves carry a positive-class probability."""

    probability: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    positive = labels.mean()
    return 2.0 * positive * (1.0 - positive)


class DecisionTreeClassifier(BinaryClassifier):
    """Binary CART decision tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum number of samples needed to attempt a split.
    max_features:
        Number of candidate features examined per split (``None`` = all);
        random forests pass ``sqrt``-sized subsets here.
    seed:
        Randomness for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        require_positive_int(max_depth, "max_depth")
        require_positive_int(min_samples_split, "min_samples_split")
        if max_features is not None:
            require_positive_int(max_features, "max_features")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.max_features = max_features
        self._rng = ensure_rng(seed)
        self._root: Optional[_Node] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        features, labels = validate_features_labels(features, labels)
        self._root = self._grow(features, labels, depth=0)
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features, _ = validate_features_labels(features)
        return np.array([self._walk(row) for row in features])

    # --------------------------------------------------------------- internal
    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        probability = float(labels.mean()) if labels.size else 0.5
        node = _Node(probability=probability)
        if (
            depth >= self.max_depth
            or labels.size < self.min_samples_split
            or probability in (0.0, 1.0)
        ):
            return node
        split = self._best_split(features, labels)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], labels[mask], depth + 1)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, labels: np.ndarray
    ) -> Optional[tuple]:
        num_samples, num_features = features.shape
        candidates = np.arange(num_features)
        if self.max_features is not None and self.max_features < num_features:
            candidates = self._rng.choice(
                num_features, size=self.max_features, replace=False
            )
        parent_impurity = _gini(labels)
        best_gain = 1e-12
        best: Optional[tuple] = None
        for feature in candidates:
            values = features[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_labels = labels[order]
            positives_left = np.cumsum(sorted_labels)
            total_positives = positives_left[-1]
            for split_index in range(1, num_samples):
                if sorted_values[split_index] == sorted_values[split_index - 1]:
                    continue
                left_count = split_index
                right_count = num_samples - split_index
                left_positive = positives_left[split_index - 1]
                right_positive = total_positives - left_positive
                left_p = left_positive / left_count
                right_p = right_positive / right_count
                left_impurity = 2.0 * left_p * (1.0 - left_p)
                right_impurity = 2.0 * right_p * (1.0 - right_p)
                weighted = (
                    left_count * left_impurity + right_count * right_impurity
                ) / num_samples
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    threshold = (sorted_values[split_index] + sorted_values[split_index - 1]) / 2.0
                    best = (int(feature), float(threshold))
        return best

    def _walk(self, row: np.ndarray) -> float:
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.probability if node is not None else 0.5
