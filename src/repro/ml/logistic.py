"""Logistic regression trained with full-batch gradient descent and L2 penalty."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BinaryClassifier, StandardScaler, validate_features_labels
from repro.utils.validation import require_positive_int


def _sigmoid(values: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() in range; the probabilities saturate harmlessly.
    clipped = np.clip(values, -35.0, 35.0)
    return 1.0 / (1.0 + np.exp(-clipped))


class LogisticRegression(BinaryClassifier):
    """Binary logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size (on standardized features).
    num_iterations:
        Number of full-batch gradient steps.
    l2_penalty:
        Coefficient of the L2 regularization term (0 disables it).
    standardize:
        Standardize features internally (recommended; the count features used
        in the paper's application span several orders of magnitude).
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        num_iterations: int = 500,
        l2_penalty: float = 1e-3,
        standardize: bool = True,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        require_positive_int(num_iterations, "num_iterations")
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        self.learning_rate = float(learning_rate)
        self.num_iterations = int(num_iterations)
        self.l2_penalty = float(l2_penalty)
        self.standardize = bool(standardize)
        self._scaler: Optional[StandardScaler] = None
        self._weights: Optional[np.ndarray] = None
        self._bias: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features, labels = validate_features_labels(features, labels)
        if self.standardize:
            self._scaler = StandardScaler()
            features = self._scaler.fit_transform(features)
        num_samples, num_features = features.shape
        weights = np.zeros(num_features)
        bias = 0.0
        for _ in range(self.num_iterations):
            logits = features @ weights + bias
            probabilities = _sigmoid(logits)
            errors = probabilities - labels
            gradient_weights = features.T @ errors / num_samples + self.l2_penalty * weights
            gradient_bias = errors.mean()
            weights -= self.learning_rate * gradient_weights
            bias -= self.learning_rate * gradient_bias
        self._weights = weights
        self._bias = float(bias)
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features, _ = validate_features_labels(features)
        if self._scaler is not None:
            features = self._scaler.transform(features)
        return _sigmoid(features @ self._weights + self._bias)

    @property
    def coefficients(self) -> np.ndarray:
        """Learned weight vector (on the standardized feature scale)."""
        self._check_fitted()
        return self._weights.copy()
