"""Base classes and preprocessing for the from-scratch classifiers.

The paper's hyperedge-prediction study (Table 4) trains five standard
classifier families on h-motif features. scikit-learn is not available in
this environment, so :mod:`repro.ml` implements the five families directly on
top of numpy. All classifiers follow the familiar ``fit`` / ``predict`` /
``predict_proba`` protocol defined here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError


def validate_features_labels(
    features: np.ndarray, labels: Optional[np.ndarray] = None
) -> tuple:
    """Coerce inputs to float/int arrays and check their shapes agree."""
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ModelError(f"features must be a 2-D array, got shape {features.shape}")
    if labels is None:
        return features, None
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ModelError(f"labels must be a 1-D array, got shape {labels.shape}")
    if labels.shape[0] != features.shape[0]:
        raise ModelError(
            f"features and labels disagree on sample count: "
            f"{features.shape[0]} vs {labels.shape[0]}"
        )
    unique = np.unique(labels)
    if not np.all(np.isin(unique, (0, 1))):
        raise ModelError(f"labels must be binary (0/1), got values {unique}")
    return features, labels.astype(int)


class BinaryClassifier(ABC):
    """Interface shared by all classifiers in :mod:`repro.ml`."""

    def __init__(self) -> None:
        self._fitted = False

    @abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BinaryClassifier":
        """Train on binary-labelled data and return ``self``."""

    @abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of *features*."""

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling predict"
            )


class StandardScaler:
    """Per-feature standardization to zero mean and unit variance.

    Constant features are left unscaled (their standard deviation is treated
    as 1) so they do not produce NaNs.
    """

    def __init__(self) -> None:
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn the per-feature mean and standard deviation."""
        features, _ = validate_features_labels(features)
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self._mean is None or self._std is None:
            raise NotFittedError("StandardScaler must be fitted before transform")
        features, _ = validate_features_labels(features)
        if features.shape[1] != self._mean.shape[0]:
            raise ModelError(
                f"expected {self._mean.shape[0]} features, got {features.shape[1]}"
            )
        return (features - self._mean) / self._std

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(features).transform(features)
