"""Random forest: bagged decision trees with per-split feature subsampling."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import BinaryClassifier, validate_features_labels
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


class RandomForestClassifier(BinaryClassifier):
    """An ensemble of CART trees trained on bootstrap samples.

    Parameters
    ----------
    num_trees:
        Number of trees in the ensemble.
    max_depth / min_samples_split:
        Passed to each tree.
    max_features:
        Features examined per split; ``None`` uses ``ceil(sqrt(num_features))``.
    seed:
        Randomness for bootstrapping and feature subsampling.
    """

    def __init__(
        self,
        num_trees: int = 25,
        max_depth: int = 7,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        require_positive_int(num_trees, "num_trees")
        self.num_trees = int(num_trees)
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.max_features = max_features
        self._rng = ensure_rng(seed)
        self._trees: List[DecisionTreeClassifier] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        features, labels = validate_features_labels(features, labels)
        num_samples, num_features = features.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.ceil(np.sqrt(num_features))))
        self._trees = []
        for _ in range(self.num_trees):
            bootstrap = self._rng.integers(0, num_samples, size=num_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                seed=self._rng,
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self._trees.append(tree)
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features, _ = validate_features_labels(features)
        votes = np.stack([tree.predict_proba(features) for tree in self._trees])
        return votes.mean(axis=0)
