"""Network-motif counting on plain graphs — the baseline of paper Figure 6(b).

The paper compares CPs built from h-motifs against CPs built from conventional
network motifs counted on the star-expansion bipartite graph. Here we count
small connected patterns with closed-form / neighborhood-intersection
formulas, which is exact and fast enough in pure Python:

* ``wedge`` — paths on 3 vertices (P3),
* ``triangle`` — cycles on 3 vertices,
* ``path4`` — paths on 4 vertices (P4, non-induced),
* ``claw`` — stars K1,3,
* ``cycle4`` — cycles on 4 vertices (C4),
* ``triangle_edge`` (paw) — a triangle with a pendant edge (non-induced).

On bipartite graphs the odd-cycle patterns are structurally zero; they stay in
the vector so the same code handles arbitrary graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.baselines.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph
from repro.profile.significance import DEFAULT_EPSILON
from repro.randomization.chung_lu import chung_lu_bipartite
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs

#: Names of the counted graph motifs, in vector order.
GRAPH_MOTIF_NAMES: tuple = (
    "wedge",
    "triangle",
    "path4",
    "claw",
    "cycle4",
    "triangle_edge",
)


def count_graph_motifs(graph: Graph) -> Dict[str, float]:
    """Counts of the small graph motifs listed in :data:`GRAPH_MOTIF_NAMES`."""
    degrees = graph.degrees()
    wedges = sum(d * (d - 1) // 2 for d in degrees.values())
    claws = sum(d * (d - 1) * (d - 2) // 6 for d in degrees.values())

    triangles = _count_triangles(graph)

    # Non-induced P4 count: for each edge (u, v), extend on both sides;
    # subtract the extensions that close into a triangle (3 per triangle).
    path4 = 0
    for u, v in graph.edges():
        path4 += (degrees[u] - 1) * (degrees[v] - 1)
    path4 -= 3 * triangles

    cycle4 = _count_four_cycles(graph)

    # Paw (triangle with a pendant edge), non-induced: each triangle can be
    # extended by any edge leaving one of its vertices that is not a triangle edge.
    paw = _count_paws(graph)

    return {
        "wedge": float(wedges),
        "triangle": float(triangles),
        "path4": float(path4),
        "claw": float(claws),
        "cycle4": float(cycle4),
        "triangle_edge": float(paw),
    }


def _count_triangles(graph: Graph) -> int:
    total = 0
    for u, v in graph.edges():
        total += len(graph.neighbors(u) & graph.neighbors(v))
    return total // 3


def _count_four_cycles(graph: Graph) -> int:
    # For each vertex, every unordered pair of its neighbors gains one unit of
    # "co-degree"; a C4 corresponds to a pair with co-degree >= 2 and each C4
    # contributes to exactly two such pairs (its two diagonals).
    codegree: Dict[tuple, int] = {}
    for vertex in graph.vertices():
        neighbors = sorted(graph.neighbors(vertex), key=repr)
        for position, u in enumerate(neighbors):
            for w in neighbors[position + 1 :]:
                key = (u, w)
                codegree[key] = codegree.get(key, 0) + 1
    total = sum(value * (value - 1) // 2 for value in codegree.values())
    return total // 2


def _count_paws(graph: Graph) -> int:
    degrees = graph.degrees()
    total = 0
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        for w in common:
            # Triangle (u, v, w) seen once per edge; pendant edges leave any of
            # the three vertices. Dividing by 3 at the end de-duplicates the
            # per-edge triple counting of each triangle.
            total += degrees[u] + degrees[v] + degrees[w] - 6
    return total // 3


def graph_motif_vector(graph: Graph) -> np.ndarray:
    """The motif counts as a vector ordered by :data:`GRAPH_MOTIF_NAMES`."""
    counts = count_graph_motifs(graph)
    return np.array([counts[name] for name in GRAPH_MOTIF_NAMES], dtype=float)


@dataclass(frozen=True)
class GraphMotifProfile:
    """Normalized significance profile based on network motifs (Figure 6b baseline)."""

    name: str
    values: np.ndarray
    real_counts: np.ndarray
    random_counts: np.ndarray


def network_motif_profile(
    hypergraph: Hypergraph,
    num_random: int = 5,
    seed: SeedLike = None,
    epsilon: float = DEFAULT_EPSILON,
) -> GraphMotifProfile:
    """CP-style profile of *hypergraph* built from network motifs.

    The hypergraph's star expansion is compared against Chung–Lu randomized
    bipartite graphs with the same expected degree sequences, mirroring how the
    h-motif CP compares the hypergraph against randomized hypergraphs.
    """
    star = Graph.from_star_expansion(hypergraph)
    real = graph_motif_vector(star)

    node_labels = list(hypergraph.nodes())
    node_degrees = [hypergraph.degree(node) for node in node_labels]
    edge_sizes = hypergraph.hyperedge_sizes()
    randoms: List[np.ndarray] = []
    for rng in spawn_rngs(seed, num_random):
        memberships = chung_lu_bipartite(node_degrees, edge_sizes, ensure_rng(rng))
        random_graph = Graph.from_biadjacency(memberships, num_left=len(node_labels))
        randoms.append(graph_motif_vector(random_graph))
    random_mean = np.mean(np.stack(randoms), axis=0) if randoms else np.zeros_like(real)

    significances = (real - random_mean) / (real + random_mean + epsilon)
    norm = np.linalg.norm(significances)
    values = significances / norm if norm > 0 else significances
    return GraphMotifProfile(
        name=hypergraph.name,
        values=values,
        real_counts=real,
        random_counts=random_mean,
    )


def graph_profile_correlation(
    first: GraphMotifProfile, second: GraphMotifProfile
) -> float:
    """Pearson correlation between two network-motif profiles."""
    if np.std(first.values) == 0 or np.std(second.values) == 0:
        return 0.0
    return float(np.corrcoef(first.values, second.values)[0, 1])


def graph_similarity_matrix(profiles: Sequence[GraphMotifProfile]) -> np.ndarray:
    """Pairwise correlation matrix of network-motif profiles (Figure 6b)."""
    size = len(profiles)
    matrix = np.ones((size, size), dtype=float)
    for row in range(size):
        for column in range(row + 1, size):
            value = graph_profile_correlation(profiles[row], profiles[column])
            matrix[row, column] = value
            matrix[column, row] = value
    return matrix
