"""Graph substrate and network-motif baseline used for the Figure 6 comparison."""

from repro.baselines.graph import Graph
from repro.baselines.network_motifs import (
    GRAPH_MOTIF_NAMES,
    GraphMotifProfile,
    count_graph_motifs,
    graph_motif_vector,
    graph_profile_correlation,
    graph_similarity_matrix,
    network_motif_profile,
)

__all__ = [
    "Graph",
    "GRAPH_MOTIF_NAMES",
    "GraphMotifProfile",
    "count_graph_motifs",
    "graph_motif_vector",
    "graph_profile_correlation",
    "graph_similarity_matrix",
    "network_motif_profile",
]
