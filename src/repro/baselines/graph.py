"""A lightweight undirected simple graph.

Used by the network-motif baseline (paper Figure 6b): hypergraphs are turned
into their star-expansion bipartite graphs and conventional graph motifs are
counted on them. The class intentionally supports only what the baseline
needs — adjacency sets, degrees and edge iteration — keeping it independent of
the hypergraph machinery.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable


class Graph:
    """An undirected simple graph backed by adjacency sets."""

    def __init__(self, edges: Iterable[Tuple[Vertex, Vertex]] = ()) -> None:
        self._adjacency: Dict[Vertex, Set[Vertex]] = {}
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------- mutation
    def add_vertex(self, vertex: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``; self-loops are rejected."""
        if u == v:
            raise HypergraphError(f"self-loop on vertex {u!r} is not allowed")
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)

    # -------------------------------------------------------------- queries
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def vertices(self) -> List[Vertex]:
        """All vertices in a deterministic order."""
        return sorted(self._adjacency, key=repr)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the edge ``{u, v}`` exists."""
        return v in self._adjacency.get(u, set())

    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        """Neighbors of *vertex*."""
        try:
            return frozenset(self._adjacency[vertex])
        except KeyError:
            raise HypergraphError(f"vertex {vertex!r} not in graph") from None

    def degree(self, vertex: Vertex) -> int:
        """Degree of *vertex*."""
        try:
            return len(self._adjacency[vertex])
        except KeyError:
            raise HypergraphError(f"vertex {vertex!r} not in graph") from None

    def degrees(self) -> Dict[Vertex, int]:
        """Mapping of every vertex to its degree."""
        return {vertex: len(neighbors) for vertex, neighbors in self._adjacency.items()}

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[FrozenSet[Vertex]] = set()
        for u in self.vertices():
            for v in self._adjacency[u]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

    # --------------------------------------------------------- constructors
    @classmethod
    def from_star_expansion(cls, hypergraph: Hypergraph) -> "Graph":
        """The star expansion of *hypergraph* as a plain graph.

        Node-side vertices keep their labels wrapped as ``("node", label)``;
        hyperedge-side vertices become ``("edge", index)`` so the two sides
        can never collide.
        """
        graph = cls()
        for node in hypergraph.nodes():
            graph.add_vertex(("node", node))
        for index, edge in enumerate(hypergraph.hyperedges()):
            edge_vertex = ("edge", index)
            graph.add_vertex(edge_vertex)
            for node in edge:
                graph.add_edge(("node", node), edge_vertex)
        return graph

    @classmethod
    def from_clique_expansion(cls, hypergraph: Hypergraph) -> "Graph":
        """The clique expansion: nodes of each hyperedge become a clique.

        Provided for completeness (the paper discusses why the projected /
        clique views lose information); not used by the main pipeline.
        """
        graph = cls()
        for node in hypergraph.nodes():
            graph.add_vertex(node)
        for edge in hypergraph.hyperedges():
            members = sorted(edge, key=repr)
            for position, u in enumerate(members):
                for v in members[position + 1 :]:
                    graph.add_edge(u, v)
        return graph

    @classmethod
    def from_biadjacency(
        cls, memberships: List[List[int]], num_left: int
    ) -> "Graph":
        """Build a bipartite graph from per-right-vertex member lists.

        ``memberships[j]`` lists the left-vertex indices adjacent to right
        vertex ``j``. Left vertices are labelled ``("node", i)`` and right
        vertices ``("edge", j)``, mirroring :meth:`from_star_expansion`.
        """
        graph = cls()
        for left in range(num_left):
            graph.add_vertex(("node", left))
        for right, members in enumerate(memberships):
            right_vertex = ("edge", right)
            graph.add_vertex(right_vertex)
            for left in members:
                if not 0 <= left < num_left:
                    raise HypergraphError(
                        f"left index {left} out of range [0, {num_left})"
                    )
                graph.add_edge(("node", left), right_vertex)
        return graph
