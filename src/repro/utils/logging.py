"""Library-wide logging configuration.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so applications stay in control of
formatting and verbosity. :func:`enable_console_logging` is a convenience for
scripts and the CLI.
"""

from __future__ import annotations

import logging

_LIBRARY_LOGGER_NAME = "repro"

logging.getLogger(_LIBRARY_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    Parameters
    ----------
    name:
        Usually ``__name__`` of the calling module. Names outside the
        ``repro`` namespace are re-parented under it to keep configuration in
        one place.
    """
    if not name.startswith(_LIBRARY_LOGGER_NAME):
        name = f"{_LIBRARY_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stream handler to the library logger and return it.

    Intended for the CLI and examples; libraries embedding repro should
    configure logging themselves instead.
    """
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
