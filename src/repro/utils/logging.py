"""Library-wide logging configuration.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so applications stay in control of
formatting and verbosity. :func:`enable_console_logging` is a convenience for
scripts and the CLI.
"""

from __future__ import annotations

import logging
from typing import Union

_LIBRARY_LOGGER_NAME = "repro"

#: Level names accepted by :func:`enable_console_logging` (CLI ``--log-level``).
LOG_LEVEL_NAMES = ("debug", "info", "warning", "error", "critical")

logging.getLogger(_LIBRARY_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    Parameters
    ----------
    name:
        Usually ``__name__`` of the calling module. Names outside the
        ``repro`` namespace are re-parented under it to keep configuration in
        one place.
    """
    if not name.startswith(_LIBRARY_LOGGER_NAME):
        name = f"{_LIBRARY_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def resolve_level(level: Union[int, str]) -> int:
    """Turn a numeric level or a case-insensitive name into a logging level."""
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(
                f"unknown log level {level!r}; expected one of {LOG_LEVEL_NAMES}"
            )
        return resolved
    return int(level)


def enable_console_logging(level: Union[int, str] = logging.INFO) -> logging.Handler:
    """Attach a stream handler to the library logger and return it.

    *level* may be a numeric level or a name like ``"debug"``. Intended for
    the CLI and examples; libraries embedding repro should configure logging
    themselves instead.
    """
    level = resolve_level(level)
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
