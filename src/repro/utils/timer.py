"""Simple wall-clock timing helpers used by benchmarks and the CLI."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Timer:
    """Context manager measuring elapsed wall-clock time in seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._end: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._end = None
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._end = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Elapsed seconds; while the timer is running, time since start."""
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start


@dataclass
class StageTimings:
    """Accumulates named stage timings, e.g. projection vs. counting time."""

    timings: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, stage: str, seconds: float) -> None:
        """Record one observation of *seconds* for *stage*."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self.timings.setdefault(stage, []).append(seconds)

    def total(self, stage: str) -> float:
        """Total recorded seconds for *stage* (0.0 if never recorded)."""
        return sum(self.timings.get(stage, []))

    def mean(self, stage: str) -> float:
        """Mean recorded seconds for *stage* (0.0 if never recorded)."""
        values = self.timings.get(stage, [])
        if not values:
            return 0.0
        return sum(values) / len(values)

    def stages(self) -> List[str]:
        """Names of all recorded stages."""
        return sorted(self.timings)
