"""Random-number-generator helpers.

All stochastic components of the library (samplers, null models, generators,
classifiers) accept either an integer seed, a :class:`numpy.random.Generator`,
or ``None``. :func:`ensure_rng` normalizes these into a ``Generator`` so the
rest of the code never has to branch on the seed type.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` for a seeded
        generator, or an existing ``Generator`` which is returned unchanged.

    Raises
    ------
    TypeError
        If *seed* is of an unsupported type.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Derive *count* independent generators from a single seed.

    Used by parallel counters so each worker gets its own stream and results
    are reproducible regardless of scheduling order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def sample_indices_with_replacement(
    rng: np.random.Generator, population_size: int, sample_size: int
) -> np.ndarray:
    """Sample ``sample_size`` indices from ``range(population_size)`` with replacement."""
    if population_size <= 0:
        raise ValueError("population_size must be positive")
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    return rng.integers(0, population_size, size=sample_size)


def weighted_choice(
    rng: np.random.Generator, weights: np.ndarray, size: Optional[int] = None
) -> Union[int, np.ndarray]:
    """Draw indices proportionally to non-negative *weights*.

    Raises
    ------
    ValueError
        If the weights are empty, contain negatives, or sum to zero.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        raise ValueError("weights must be non-empty")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probabilities = weights / total
    result = rng.choice(weights.size, size=size, p=probabilities)
    if size is None:
        return int(result)
    return result
