"""Small argument-validation helpers shared across the library.

They raise ``ValueError``/``TypeError`` with consistent messages so public
functions can validate inputs in one line each.
"""

from __future__ import annotations

from numbers import Integral, Real


def require_positive_int(value, name: str) -> int:
    """Validate that *value* is an integer greater than zero and return it."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_non_negative_int(value, name: str) -> int:
    """Validate that *value* is an integer >= 0 and return it."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_probability(value, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1] and return it."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def require_in_range(value, name: str, low: float, high: float) -> float:
    """Validate that ``low <= value <= high`` and return ``float(value)``."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
