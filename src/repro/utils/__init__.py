"""Shared utilities: random number handling, timing, logging and validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.logging import get_logger
from repro.utils.validation import (
    require_positive_int,
    require_non_negative_int,
    require_probability,
    require_in_range,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "get_logger",
    "require_positive_int",
    "require_non_negative_int",
    "require_probability",
    "require_in_range",
]
