"""Evaluation metrics for the binary hyperedge-prediction task: ACC and AUC."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import PredictionTaskError


def _validate(labels: Sequence[int], values: Sequence[float]) -> tuple:
    labels = np.asarray(labels)
    values = np.asarray(values, dtype=float)
    if labels.shape != values.shape:
        raise PredictionTaskError(
            f"labels and predictions disagree in shape: {labels.shape} vs {values.shape}"
        )
    if labels.size == 0:
        raise PredictionTaskError("cannot evaluate on an empty set")
    unique = np.unique(labels)
    if not np.all(np.isin(unique, (0, 1))):
        raise PredictionTaskError(f"labels must be binary, got values {unique}")
    return labels.astype(int), values


def accuracy(labels: Sequence[int], predictions: Sequence[int]) -> float:
    """Fraction of correct hard predictions."""
    labels, predictions = _validate(labels, predictions)
    return float((labels == predictions.astype(int)).mean())


def roc_auc(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve, computed via the rank (Mann–Whitney) statistic.

    Tied scores receive average ranks. Returns 0.5 when only one class is
    present (the metric is undefined there; 0.5 is the uninformative value).
    """
    labels, scores = _validate(labels, scores)
    num_positive = int(labels.sum())
    num_negative = labels.size - num_positive
    if num_positive == 0 or num_negative == 0:
        return 0.5
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(labels.size, dtype=float)
    sorted_scores = scores[order]
    position = 0
    while position < labels.size:
        end = position
        while end + 1 < labels.size and sorted_scores[end + 1] == sorted_scores[position]:
            end += 1
        average_rank = (position + end) / 2.0 + 1.0
        ranks[order[position : end + 1]] = average_rank
        position = end + 1
    positive_rank_sum = ranks[labels == 1].sum()
    statistic = positive_rank_sum - num_positive * (num_positive + 1) / 2.0
    return float(statistic / (num_positive * num_negative))


def confusion_matrix(labels: Sequence[int], predictions: Sequence[int]) -> dict:
    """True/false positive/negative counts as a dictionary."""
    labels, predictions = _validate(labels, predictions)
    predictions = predictions.astype(int)
    return {
        "true_positive": int(np.sum((labels == 1) & (predictions == 1))),
        "true_negative": int(np.sum((labels == 0) & (predictions == 0))),
        "false_positive": int(np.sum((labels == 0) & (predictions == 1))),
        "false_negative": int(np.sum((labels == 1) & (predictions == 0))),
    }
