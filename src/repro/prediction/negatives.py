"""Fake-hyperedge generation for the prediction task (paper Appendix E).

Negative examples are built from positive ones by replacing a fraction of each
real hyperedge's nodes with nodes drawn at random from the context hypergraph,
following Yoon et al. (the paper's reference [69]). The resulting fakes have
realistic sizes but scrambled membership, which is exactly what the classifier
must learn to reject.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import PredictionTaskError
from repro.hypergraph.hypergraph import Hypergraph, Node
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_probability


def make_fake_hyperedge(
    real: Iterable[Node],
    node_pool: Sequence[Node],
    replace_fraction: float,
    rng,
) -> frozenset:
    """A fake hyperedge derived from *real* by swapping a fraction of its nodes."""
    members = list(set(real))
    if not members:
        raise PredictionTaskError("cannot build a fake from an empty hyperedge")
    num_replace = max(1, int(round(replace_fraction * len(members))))
    num_replace = min(num_replace, len(members))
    to_replace = rng.choice(len(members), size=num_replace, replace=False)
    kept = [node for index, node in enumerate(members) if index not in set(int(x) for x in to_replace)]
    fake = set(kept)
    attempts = 0
    while len(fake) < len(members) and attempts < 50 * len(members):
        candidate = node_pool[int(rng.integers(0, len(node_pool)))]
        fake.add(candidate)
        attempts += 1
    return frozenset(fake)


def generate_fake_hyperedges(
    context: Hypergraph,
    positives: Sequence[Iterable[Node]],
    replace_fraction: float = 0.5,
    seed: SeedLike = None,
) -> List[frozenset]:
    """One fake hyperedge per positive example.

    Parameters
    ----------
    context:
        The hypergraph whose node set supplies replacement nodes.
    replace_fraction:
        Fraction of each positive's nodes replaced with random nodes.
    """
    require_probability(replace_fraction, "replace_fraction")
    if replace_fraction == 0:
        raise PredictionTaskError(
            "replace_fraction must be positive, otherwise fakes equal the positives"
        )
    if context.num_nodes == 0:
        raise PredictionTaskError("context hypergraph has no nodes to draw from")
    rng = ensure_rng(seed)
    node_pool = list(context.nodes())
    existing = set(context.hyperedges())
    fakes: List[frozenset] = []
    for positive in positives:
        fake = make_fake_hyperedge(positive, node_pool, replace_fraction, rng)
        attempts = 0
        # Avoid accidentally recreating a real hyperedge.
        while (fake in existing or fake == frozenset(positive)) and attempts < 20:
            fake = make_fake_hyperedge(positive, node_pool, replace_fraction, rng)
            attempts += 1
        fakes.append(fake)
    return fakes
