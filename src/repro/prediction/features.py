"""Hyperedge feature sets for the prediction task (paper Section 4.4, Table 4).

Three feature sets are compared:

``HM26``
    For a candidate hyperedge ``e``, the number of instances of each h-motif
    that contain ``e`` when ``e`` is added to the context hypergraph
    (26 features).
``HM7``
    The seven HM26 features with the largest variance on the training set.
``HC``
    Hand-crafted baseline: mean / max / min node degree, mean / max / min node
    neighbourhood size (both measured in the context hypergraph) and the
    hyperedge's size (7 features).

The HM26 computation never materializes the augmented hypergraph: the
candidate's overlaps with context hyperedges are computed from node
memberships, and the rest of each instance lives entirely in the context, so
the context's projected graph (built once) suffices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.counting.classification import NeighborhoodProvider
from repro.exceptions import MotifError
from repro.hypergraph.hypergraph import Hypergraph, Node
from repro.motifs.classify import classify_from_cardinalities, triple_overlap_size
from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.projection.builder import project

#: Names of the seven hand-crafted HC features, in vector order.
HC_FEATURE_NAMES = (
    "mean_degree",
    "max_degree",
    "min_degree",
    "mean_neighbors",
    "max_neighbors",
    "min_neighbors",
    "size",
)


def candidate_overlaps(
    hypergraph: Hypergraph, candidate: Iterable[Node]
) -> Dict[int, int]:
    """``{j: |candidate ∩ e_j|}`` for every context hyperedge overlapping the candidate."""
    overlaps: Dict[int, int] = {}
    for node in set(candidate):
        if hypergraph.has_node(node):
            for j in hypergraph.memberships(node):
                overlaps[j] = overlaps.get(j, 0) + 1
    return overlaps


def motif_counts_for_candidate(
    hypergraph: Hypergraph,
    candidate: Iterable[Node],
    projection: Optional[NeighborhoodProvider] = None,
) -> MotifCounts:
    """Counts of h-motif instances containing *candidate* against the context.

    Instances consist of the candidate plus two distinct context hyperedges
    such that the triple is connected — the HM26 feature vector of the
    candidate.
    """
    candidate_nodes = frozenset(candidate)
    if projection is None:
        projection = project(hypergraph)
    overlaps = candidate_overlaps(hypergraph, candidate_nodes)
    counts = MotifCounts.zeros()
    overlap_set = set(overlaps)
    for j in overlaps:
        neighbors_j = projection.neighbors(j)
        partners = overlap_set.union(neighbors_j)
        partners.discard(j)
        for k in partners:
            if k not in overlap_set or j < k:
                try:
                    motif = _classify_candidate_triple(
                        hypergraph, projection, candidate_nodes, overlaps, j, k
                    )
                except MotifError:
                    # The candidate duplicates a context hyperedge (typical for
                    # training positives, which are drawn from the context);
                    # a triple containing that duplicate is not a valid instance.
                    continue
                counts.increment(motif)
    return counts


def _classify_candidate_triple(
    hypergraph: Hypergraph,
    projection: NeighborhoodProvider,
    candidate_nodes: frozenset,
    overlaps: Dict[int, int],
    j: int,
    k: int,
) -> int:
    edge_j = hypergraph.hyperedge(j)
    edge_k = hypergraph.hyperedge(k)
    overlap_cj = overlaps.get(j, 0)
    overlap_ck = overlaps.get(k, 0)
    overlap_jk = projection.overlap(j, k)
    overlap_cjk = triple_overlap_size(candidate_nodes, edge_j, edge_k)
    return classify_from_cardinalities(
        len(candidate_nodes),
        len(edge_j),
        len(edge_k),
        overlap_cj,
        overlap_jk,
        overlap_ck,
        overlap_cjk,
    )


def hm26_features(
    hypergraph: Hypergraph,
    candidates: Sequence[Iterable[Node]],
    projection: Optional[NeighborhoodProvider] = None,
) -> np.ndarray:
    """HM26 feature matrix (one row per candidate hyperedge)."""
    if projection is None:
        projection = project(hypergraph)
    rows = []
    for candidate in candidates:
        counts = motif_counts_for_candidate(hypergraph, candidate, projection)
        rows.append(counts.to_array())
    return np.array(rows, dtype=float) if rows else np.empty((0, NUM_MOTIFS))


def select_high_variance_features(
    training_features: np.ndarray, num_features: int = 7
) -> np.ndarray:
    """Indices of the *num_features* columns with the largest variance (HM7 selection)."""
    if training_features.ndim != 2:
        raise ValueError("training_features must be a 2-D array")
    variances = training_features.var(axis=0)
    order = np.argsort(-variances, kind="stable")
    return order[:num_features]


def hc_features(
    hypergraph: Hypergraph, candidates: Sequence[Iterable[Node]]
) -> np.ndarray:
    """HC baseline feature matrix (one row per candidate hyperedge)."""
    degrees = hypergraph.degrees()
    neighbor_counts: Dict[Node, int] = {}
    rows: List[List[float]] = []
    for candidate in candidates:
        members = list(set(candidate))
        member_degrees = [float(degrees.get(node, 0)) for node in members]
        member_neighbors = []
        for node in members:
            if node not in neighbor_counts:
                neighbor_counts[node] = (
                    len(hypergraph.neighbors_of_node(node)) if hypergraph.has_node(node) else 0
                )
            member_neighbors.append(float(neighbor_counts[node]))
        rows.append(
            [
                float(np.mean(member_degrees)),
                float(np.max(member_degrees)),
                float(np.min(member_degrees)),
                float(np.mean(member_neighbors)),
                float(np.max(member_neighbors)),
                float(np.min(member_neighbors)),
                float(len(members)),
            ]
        )
    return np.array(rows, dtype=float) if rows else np.empty((0, len(HC_FEATURE_NAMES)))
