"""Hyperedge prediction application (the paper's Table 4)."""

from repro.prediction.features import (
    HC_FEATURE_NAMES,
    candidate_overlaps,
    hc_features,
    hm26_features,
    motif_counts_for_candidate,
    select_high_variance_features,
)
from repro.prediction.negatives import generate_fake_hyperedges, make_fake_hyperedge
from repro.prediction.metrics import accuracy, confusion_matrix, roc_auc
from repro.prediction.task import (
    FEATURE_SETS,
    PredictionDataset,
    PredictionExperimentResult,
    PredictionScore,
    build_prediction_dataset,
    run_prediction_experiment,
)

__all__ = [
    "HC_FEATURE_NAMES",
    "candidate_overlaps",
    "hc_features",
    "hm26_features",
    "motif_counts_for_candidate",
    "select_high_variance_features",
    "generate_fake_hyperedges",
    "make_fake_hyperedge",
    "accuracy",
    "confusion_matrix",
    "roc_auc",
    "FEATURE_SETS",
    "PredictionDataset",
    "PredictionExperimentResult",
    "PredictionScore",
    "build_prediction_dataset",
    "run_prediction_experiment",
]
