"""End-to-end hyperedge prediction experiment (paper Table 4).

The paper predicts the publications of 2016 from those of 2013–2015: real
hyperedges (and fake counterparts) are classified using three feature sets
(HM26, HM7, HC) and five classifier families, and HM26 > HM7 > HC holds for
both accuracy and AUC. :func:`run_prediction_experiment` reproduces that
pipeline on a temporal hypergraph:

1. the *context* window supplies the hypergraph against which features are
   computed and the training positives;
2. the *test* window supplies the test positives;
3. fakes are generated for both sets;
4. each (feature set, classifier) pair is trained and evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import PredictionTaskError
from repro.hypergraph.builders import TemporalHypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.ml.base import BinaryClassifier
from repro.prediction.features import (
    hc_features,
    hm26_features,
    select_high_variance_features,
)
from repro.prediction.metrics import accuracy
from repro.prediction.negatives import generate_fake_hyperedges
from repro.projection.builder import project
from repro.utils.rng import SeedLike, ensure_rng

#: Names of the three feature sets compared in Table 4.
FEATURE_SETS = ("HM26", "HM7", "HC")


@dataclass(frozen=True)
class PredictionScore:
    """Accuracy and AUC of one (classifier, feature set) combination."""

    classifier: str
    feature_set: str
    accuracy: float
    auc: float


@dataclass
class PredictionExperimentResult:
    """All scores of one experiment, addressable by classifier and feature set."""

    scores: List[PredictionScore] = field(default_factory=list)

    def score(self, classifier: str, feature_set: str) -> PredictionScore:
        """Look up one cell of the Table-4 grid."""
        for entry in self.scores:
            if entry.classifier == classifier and entry.feature_set == feature_set:
                return entry
        raise PredictionTaskError(
            f"no score recorded for ({classifier!r}, {feature_set!r})"
        )

    def as_rows(self) -> List[Tuple[str, str, float, float]]:
        """Rows of (classifier, feature set, accuracy, AUC)."""
        return [
            (entry.classifier, entry.feature_set, entry.accuracy, entry.auc)
            for entry in self.scores
        ]

    def mean_metric(self, feature_set: str, metric: str = "auc") -> float:
        """Average of a metric over classifiers, for one feature set."""
        values = [
            getattr(entry, metric)
            for entry in self.scores
            if entry.feature_set == feature_set
        ]
        if not values:
            raise PredictionTaskError(f"no scores for feature set {feature_set!r}")
        return float(np.mean(values))


@dataclass(frozen=True)
class PredictionDataset:
    """Featurized train/test split for the prediction task."""

    features_train: Dict[str, np.ndarray]
    labels_train: np.ndarray
    features_test: Dict[str, np.ndarray]
    labels_test: np.ndarray
    hm7_columns: np.ndarray


def build_prediction_dataset(
    temporal: TemporalHypergraph,
    context_start: int,
    context_end: int,
    test_start: int,
    test_end: int,
    replace_fraction: float = 0.5,
    max_positives: Optional[int] = None,
    seed: SeedLike = None,
) -> PredictionDataset:
    """Build the featurized dataset from a temporal hypergraph.

    Training positives are the context window's hyperedges; test positives are
    the test window's. One fake is generated per positive. All features are
    computed against the context hypergraph only, so no information from the
    test window leaks into the features.
    """
    if context_end < context_start or test_end < test_start:
        raise PredictionTaskError("window ends must not precede their starts")
    rng = ensure_rng(seed)
    context = temporal.window(context_start, context_end)
    test_window = temporal.window(test_start, test_end)
    if context.num_hyperedges == 0 or test_window.num_hyperedges == 0:
        raise PredictionTaskError("both the context and test windows must be non-empty")

    train_positives = list(context.hyperedges())
    test_positives = [
        edge for edge in test_window.hyperedges() if _has_known_node(context, edge)
    ]
    if not test_positives:
        raise PredictionTaskError(
            "no test hyperedge shares a node with the context window"
        )
    if max_positives is not None:
        train_positives = _subsample(train_positives, max_positives, rng)
        test_positives = _subsample(test_positives, max_positives, rng)

    train_fakes = generate_fake_hyperedges(context, train_positives, replace_fraction, rng)
    test_fakes = generate_fake_hyperedges(context, test_positives, replace_fraction, rng)

    train_candidates = train_positives + train_fakes
    test_candidates = test_positives + test_fakes
    labels_train = np.array([1] * len(train_positives) + [0] * len(train_fakes))
    labels_test = np.array([1] * len(test_positives) + [0] * len(test_fakes))

    projection = project(context)
    hm26_train = hm26_features(context, train_candidates, projection)
    hm26_test = hm26_features(context, test_candidates, projection)
    hm7_columns = select_high_variance_features(hm26_train, num_features=7)
    hc_train = hc_features(context, train_candidates)
    hc_test = hc_features(context, test_candidates)

    features_train = {
        "HM26": hm26_train,
        "HM7": hm26_train[:, hm7_columns],
        "HC": hc_train,
    }
    features_test = {
        "HM26": hm26_test,
        "HM7": hm26_test[:, hm7_columns],
        "HC": hc_test,
    }
    return PredictionDataset(
        features_train=features_train,
        labels_train=labels_train,
        features_test=features_test,
        labels_test=labels_test,
        hm7_columns=hm7_columns,
    )


def run_prediction_experiment(
    temporal: TemporalHypergraph,
    context_start: int,
    context_end: int,
    test_start: int,
    test_end: int,
    classifiers: Optional[Dict[str, BinaryClassifier]] = None,
    replace_fraction: float = 0.5,
    max_positives: Optional[int] = None,
    seed: SeedLike = None,
) -> PredictionExperimentResult:
    """Run the full Table-4 experiment and return all (classifier, feature set) scores.

    .. deprecated:: thin shim over :meth:`repro.api.MotifEngine.predict`,
       which hosts the experiment loop; the signature is unchanged.

    Behavior change vs. the pre-engine implementation: each cell now trains a
    ``deepcopy`` of the supplied classifier template, so configured
    hyperparameters and seeds are honored (the old loop rebuilt every model
    with bare ``type(classifier)()``, discarding both — which also made
    seeded runs nondeterministic). Scores therefore differ from pre-engine
    runs, deliberately.
    """
    # Imported here: repro.api builds on this module (build_prediction_dataset).
    from repro.api.config import PredictSpec
    from repro.api.engine import MotifEngine

    spec = PredictSpec(
        context_start=context_start,
        context_end=context_end,
        test_start=test_start,
        test_end=test_end,
        replace_fraction=replace_fraction,
        max_positives=max_positives,
        seed=seed,
    )
    return MotifEngine(temporal).predict(spec, classifiers=classifiers).result


def _has_known_node(context: Hypergraph, edge) -> bool:
    return any(context.has_node(node) for node in edge)


def _subsample(items: Sequence, limit: int, rng) -> List:
    if limit <= 0:
        raise PredictionTaskError("max_positives must be positive")
    if len(items) <= limit:
        return list(items)
    chosen = rng.choice(len(items), size=limit, replace=False)
    return [items[int(index)] for index in chosen]
