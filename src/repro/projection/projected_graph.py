"""The projected graph ``G¯ = (E, ∧, ω)`` of a hypergraph.

Hyperedges of the original hypergraph become vertices; two are adjacent iff
they share at least one node, and the edge weight ``ω(∧_ij) = |e_i ∩ e_j|``
records the overlap size (paper, Section 2.1). All MoCHy algorithms consume
this structure: ``N_{e_i}`` is the neighborhood of vertex ``i`` and the
hyperwedge set ``∧`` is its edge set.

Storage is array-native (``repro.fastcore``): CSR adjacency with neighbor ids
sorted ascending per row, so neighborhoods are O(1) slices, single overlaps
are one binary search, and the batched kernels can consume the raw arrays
directly via :meth:`ProjectedGraph.adjacency_arrays`. The mapping-based
constructor is kept for hand-built graphs and validates exactly as before.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np

from repro.exceptions import ProjectionError
from repro.fastcore.projection import (
    WEIGHT_DTYPE,
    AdjacencyArrays,
    pairs_to_symmetric_csr,
)


class ProjectedGraph:
    """Weighted adjacency over hyperedge indices, stored as CSR arrays.

    Parameters
    ----------
    num_hyperedges:
        Number of vertices (equals ``|E|`` of the source hypergraph).
    adjacency:
        Mapping ``i -> {j: ω(∧_ij)}``. Must be symmetric; the constructor
        verifies symmetry and positive weights. Builders that already hold
        CSR arrays should use :meth:`from_csr` instead.
    """

    __slots__ = ("_num_hyperedges", "_arrays", "_num_hyperwedges")

    def __init__(
        self, num_hyperedges: int, adjacency: Mapping[int, Mapping[int, int]]
    ) -> None:
        if num_hyperedges < 0:
            raise ProjectionError("num_hyperedges must be non-negative")
        num_hyperedges = int(num_hyperedges)
        normalized: Dict[int, Dict[int, int]] = {}
        for i, neighbors in adjacency.items():
            if not 0 <= i < num_hyperedges:
                raise ProjectionError(f"vertex {i} out of range")
            normalized[int(i)] = {int(j): int(w) for j, w in neighbors.items()}
        _validate_mapping(num_hyperedges, normalized)
        self._init_from_arrays(
            num_hyperedges, *_mapping_to_csr(num_hyperedges, normalized)
        )

    def _init_from_arrays(
        self,
        num_hyperedges: int,
        ptr: np.ndarray,
        idx: np.ndarray,
        weight: np.ndarray,
    ) -> None:
        self._num_hyperedges = num_hyperedges
        self._arrays = AdjacencyArrays(num_hyperedges, ptr, idx, weight)
        self._num_hyperwedges = int(idx.size) // 2

    @classmethod
    def from_csr(
        cls,
        num_hyperedges: int,
        ptr: np.ndarray,
        idx: np.ndarray,
        weight: np.ndarray,
    ) -> "ProjectedGraph":
        """Wrap prebuilt CSR adjacency (rows sorted ascending, symmetric).

        Trusted fast path for :func:`repro.projection.project`; performs only
        cheap shape checks.
        """
        if num_hyperedges < 0:
            raise ProjectionError("num_hyperedges must be non-negative")
        if len(ptr) != num_hyperedges + 1 or len(idx) != len(weight):
            raise ProjectionError("malformed CSR adjacency arrays")
        graph = cls.__new__(cls)
        graph._init_from_arrays(int(num_hyperedges), ptr, idx, weight)
        return graph

    def adjacency_arrays(self) -> AdjacencyArrays:
        """The raw CSR arrays consumed by the fast counting kernels."""
        return self._arrays

    # ----------------------------------------------------------------- basics
    @property
    def num_hyperedges(self) -> int:
        """Number of vertices (hyperedges of the source hypergraph)."""
        return self._num_hyperedges

    @property
    def num_hyperwedges(self) -> int:
        """Number of hyperwedges ``|∧|`` (edges of the projected graph)."""
        return self._num_hyperwedges

    def neighbors(self, i: int) -> Dict[int, int]:
        """``{j: ω(∧_ij)}`` for all hyperedges adjacent to *i* (possibly empty)."""
        self._check_vertex(i)
        ids, weights = self._arrays.row(i)
        return dict(zip(ids.tolist(), weights.tolist()))

    def neighbor_indices(self, i: int) -> List[int]:
        """Indices of hyperedges adjacent to *i* — the paper's ``N_{e_i}``."""
        self._check_vertex(i)
        return self._arrays.row(i)[0].tolist()

    def degree(self, i: int) -> int:
        """``|N_{e_i}|`` — the degree of hyperedge *i* in the projected graph."""
        self._check_vertex(i)
        ptr = self._arrays.ptr
        return int(ptr[i + 1] - ptr[i])

    def degrees(self) -> List[int]:
        """Degrees of all vertices, in index order."""
        return np.diff(self._arrays.ptr).tolist()

    def are_adjacent(self, i: int, j: int) -> bool:
        """Whether hyperedges *i* and *j* overlap."""
        return self.overlap(i, j) > 0

    def overlap(self, i: int, j: int) -> int:
        """``ω(∧_ij) = |e_i ∩ e_j|`` (0 if not adjacent)."""
        self._check_vertex(i)
        self._check_vertex(j)
        ids, weights = self._arrays.row(i)
        position = int(np.searchsorted(ids, j))
        if position < ids.size and int(ids[position]) == j:
            return int(weights[position])
        return 0

    # ------------------------------------------------------------ hyperwedges
    def hyperwedges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over hyperwedges as ordered pairs ``(i, j)`` with ``i < j``.

        Pairs are produced in lexicographic order.
        """
        arrays = self._arrays
        for i in range(self._num_hyperedges):
            row = arrays.idx[arrays.ptr[i] : arrays.ptr[i + 1]]
            for j in row[np.searchsorted(row, i + 1) :].tolist():
                yield (i, j)

    def hyperwedge_list(self) -> List[Tuple[int, int]]:
        """Materialized list of hyperwedges ``(i, j)`` with ``i < j``.

        Hyperwedge-sampling algorithms (MoCHy-A+) index into this list.
        """
        arrays = self._arrays
        rows = np.repeat(
            np.arange(self._num_hyperedges, dtype=np.int64), np.diff(arrays.ptr)
        )
        upper = rows < arrays.idx
        return list(zip(rows[upper].tolist(), arrays.idx[upper].tolist()))

    # -------------------------------------------------------------- estimators
    def total_neighborhood_work(self) -> int:
        """``Σ_i |N_{e_i}|²`` — the combinatorial term of Theorem 1's complexity."""
        degrees = np.diff(self._arrays.ptr)
        return int((degrees.astype(np.int64) ** 2).sum())

    # ----------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProjectedGraph):
            return NotImplemented
        return (
            self._num_hyperedges == other._num_hyperedges
            and np.array_equal(self._arrays.ptr, other._arrays.ptr)
            and np.array_equal(self._arrays.idx, other._arrays.idx)
            and np.array_equal(self._arrays.weight, other._arrays.weight)
        )

    def __repr__(self) -> str:
        return (
            f"ProjectedGraph(num_hyperedges={self._num_hyperedges}, "
            f"num_hyperwedges={self._num_hyperwedges})"
        )

    def _check_vertex(self, i: int) -> None:
        if not 0 <= i < self._num_hyperedges:
            raise ProjectionError(
                f"vertex {i} out of range [0, {self._num_hyperedges})"
            )


def _validate_mapping(
    num_hyperedges: int, adjacency: Dict[int, Dict[int, int]]
) -> None:
    for i, neighbors in adjacency.items():
        for j, weight in neighbors.items():
            if not 0 <= j < num_hyperedges:
                raise ProjectionError(f"neighbor {j} of vertex {i} out of range")
            if i == j:
                raise ProjectionError(f"self-loop on vertex {i}")
            if weight <= 0:
                raise ProjectionError(
                    f"hyperwedge ({i}, {j}) has non-positive weight {weight}"
                )
            if weight > np.iinfo(WEIGHT_DTYPE).max:
                # The CSR layout stores weights as int32; a silent cast would
                # wrap a huge hand-supplied weight negative.
                raise ProjectionError(
                    f"hyperwedge ({i}, {j}) weight {weight} exceeds the "
                    f"supported maximum {np.iinfo(WEIGHT_DTYPE).max}"
                )
            if adjacency.get(j, {}).get(i) != weight:
                raise ProjectionError(
                    f"adjacency is not symmetric for pair ({i}, {j})"
                )


def _mapping_to_csr(
    num_hyperedges: int, adjacency: Dict[int, Dict[int, int]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    # The mapping is validated symmetric, so emitting the upper triangle as
    # (key, weight) pairs lets the fast-core assembler do the mirroring and
    # CSR pointer build — one implementation to maintain.
    scale = np.int64(max(num_hyperedges, 1))
    upper = [
        (int(i) * int(scale) + int(j), weight)
        for i, neighbors in adjacency.items()
        for j, weight in neighbors.items()
        if i < j
    ]
    keys = np.fromiter((key for key, _ in upper), dtype=np.int64, count=len(upper))
    counts = np.fromiter(
        (weight for _, weight in upper), dtype=np.int64, count=len(upper)
    )
    return pairs_to_symmetric_csr(keys, counts, num_hyperedges)
