"""The projected graph ``G¯ = (E, ∧, ω)`` of a hypergraph.

Hyperedges of the original hypergraph become vertices; two are adjacent iff
they share at least one node, and the edge weight ``ω(∧_ij) = |e_i ∩ e_j|``
records the overlap size (paper, Section 2.1). All MoCHy algorithms consume
this structure: ``N_{e_i}`` is the neighborhood of vertex ``i`` and the
hyperwedge set ``∧`` is its edge set.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from repro.exceptions import ProjectionError


class ProjectedGraph:
    """Weighted adjacency over hyperedge indices.

    Parameters
    ----------
    num_hyperedges:
        Number of vertices (equals ``|E|`` of the source hypergraph).
    adjacency:
        Mapping ``i -> {j: ω(∧_ij)}``. Must be symmetric; the constructor
        verifies symmetry and positive weights.
    """

    __slots__ = ("_num_hyperedges", "_adjacency", "_num_hyperwedges")

    def __init__(
        self, num_hyperedges: int, adjacency: Mapping[int, Mapping[int, int]]
    ) -> None:
        if num_hyperedges < 0:
            raise ProjectionError("num_hyperedges must be non-negative")
        self._num_hyperedges = int(num_hyperedges)
        normalized: Dict[int, Dict[int, int]] = {}
        for i, neighbors in adjacency.items():
            if not 0 <= i < num_hyperedges:
                raise ProjectionError(f"vertex {i} out of range")
            normalized[int(i)] = {int(j): int(w) for j, w in neighbors.items()}
        self._adjacency = normalized
        self._validate()
        self._num_hyperwedges = sum(len(n) for n in self._adjacency.values()) // 2

    def _validate(self) -> None:
        for i, neighbors in self._adjacency.items():
            for j, weight in neighbors.items():
                if not 0 <= j < self._num_hyperedges:
                    raise ProjectionError(f"neighbor {j} of vertex {i} out of range")
                if i == j:
                    raise ProjectionError(f"self-loop on vertex {i}")
                if weight <= 0:
                    raise ProjectionError(
                        f"hyperwedge ({i}, {j}) has non-positive weight {weight}"
                    )
                if self._adjacency.get(j, {}).get(i) != weight:
                    raise ProjectionError(
                        f"adjacency is not symmetric for pair ({i}, {j})"
                    )

    # ----------------------------------------------------------------- basics
    @property
    def num_hyperedges(self) -> int:
        """Number of vertices (hyperedges of the source hypergraph)."""
        return self._num_hyperedges

    @property
    def num_hyperwedges(self) -> int:
        """Number of hyperwedges ``|∧|`` (edges of the projected graph)."""
        return self._num_hyperwedges

    def neighbors(self, i: int) -> Dict[int, int]:
        """``{j: ω(∧_ij)}`` for all hyperedges adjacent to *i* (possibly empty)."""
        self._check_vertex(i)
        return dict(self._adjacency.get(i, {}))

    def neighbor_indices(self, i: int) -> List[int]:
        """Indices of hyperedges adjacent to *i* — the paper's ``N_{e_i}``."""
        self._check_vertex(i)
        return list(self._adjacency.get(i, {}))

    def degree(self, i: int) -> int:
        """``|N_{e_i}|`` — the degree of hyperedge *i* in the projected graph."""
        self._check_vertex(i)
        return len(self._adjacency.get(i, {}))

    def degrees(self) -> List[int]:
        """Degrees of all vertices, in index order."""
        return [len(self._adjacency.get(i, {})) for i in range(self._num_hyperedges)]

    def are_adjacent(self, i: int, j: int) -> bool:
        """Whether hyperedges *i* and *j* overlap."""
        self._check_vertex(i)
        self._check_vertex(j)
        return j in self._adjacency.get(i, {})

    def overlap(self, i: int, j: int) -> int:
        """``ω(∧_ij) = |e_i ∩ e_j|`` (0 if not adjacent)."""
        self._check_vertex(i)
        self._check_vertex(j)
        return self._adjacency.get(i, {}).get(j, 0)

    # ------------------------------------------------------------ hyperwedges
    def hyperwedges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over hyperwedges as ordered pairs ``(i, j)`` with ``i < j``."""
        for i in sorted(self._adjacency):
            for j in self._adjacency[i]:
                if i < j:
                    yield (i, j)

    def hyperwedge_list(self) -> List[Tuple[int, int]]:
        """Materialized list of hyperwedges ``(i, j)`` with ``i < j``.

        Hyperwedge-sampling algorithms (MoCHy-A+) index into this list.
        """
        return list(self.hyperwedges())

    # -------------------------------------------------------------- estimators
    def total_neighborhood_work(self) -> int:
        """``Σ_i |N_{e_i}|²`` — the combinatorial term of Theorem 1's complexity."""
        return sum(len(neighbors) ** 2 for neighbors in self._adjacency.values())

    # ----------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProjectedGraph):
            return NotImplemented
        return (
            self._num_hyperedges == other._num_hyperedges
            and self._adjacency == other._adjacency
        )

    def __repr__(self) -> str:
        return (
            f"ProjectedGraph(num_hyperedges={self._num_hyperedges}, "
            f"num_hyperwedges={self._num_hyperwedges})"
        )

    def _check_vertex(self, i: int) -> None:
        if not 0 <= i < self._num_hyperedges:
            raise ProjectionError(
                f"vertex {i} out of range [0, {self._num_hyperedges})"
            )
