"""On-the-fly (lazy) projection with a memoization budget (paper Section 3.4).

When the hypergraph is large, materializing the whole projected graph costs
``O(|E| + |∧|)`` memory. Instead, :class:`LazyProjection` computes the
neighborhood of a hyperedge only when an algorithm asks for it, and memoizes
at most a configurable number of neighborhoods. The paper reports that
prioritizing hyperedges with high projected-graph degree outperforms random
or LRU retention (Figure 11); all three policies are implemented so the
ablation can be reproduced.

The cache is array-native: each memoized neighborhood is a pair of sorted
``(neighbor ids, weights)`` arrays computed by one vectorized histogram over
the CSR membership rows (:func:`repro.fastcore.projection.neighborhood_arrays`).
On top of :meth:`row`, the class serves the same block interface the batched
counting kernels consume from :class:`~repro.fastcore.projection.AdjacencyArrays`
(``gather_rows`` / ``row_lengths`` / ``pair_weights``), so ``--projection
lazy`` runs through the exact same vectorized kernels as the full projection
— only row *fetches* honor the budget. Dict-shaped accessors
(:meth:`neighbors`, :meth:`overlap`) remain for the per-triple reference
counters and provider-agnostic callers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.fastcore.projection import neighborhood_arrays, sorted_member_positions
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_non_negative_int

#: Retention policies for memoized neighborhoods.
POLICY_DEGREE = "degree"
POLICY_LRU = "lru"
POLICY_RANDOM = "random"
_POLICIES = (POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM)


class LazyProjection:
    """Neighborhood provider with a bounded memoization cache.

    Parameters
    ----------
    hypergraph:
        Source hypergraph.
    budget:
        Maximum number of hyperedge neighborhoods kept in memory. ``0``
        disables memoization entirely (every request recomputes); ``None``
        means unlimited (equivalent to full projection, built incrementally).
    policy:
        ``"degree"`` keeps the neighborhoods of highest projected-graph degree
        (the paper's best-performing scheme), ``"lru"`` keeps the most recently
        used, ``"random"`` evicts uniformly at random.
    seed:
        Randomness for the ``"random"`` policy.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        budget: Optional[int] = None,
        policy: str = POLICY_DEGREE,
        seed: SeedLike = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        if budget is not None:
            budget = require_non_negative_int(budget, "budget")
        self._hypergraph = hypergraph
        self._csr = hypergraph.csr()
        self._budget = budget
        self._policy = policy
        self._rng = ensure_rng(seed)
        self._cache: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._computations = 0
        self._hits = 0

    # ----------------------------------------------------------------- stats
    @property
    def num_hyperedges(self) -> int:
        """Number of hyperedges in the underlying hypergraph."""
        return self._hypergraph.num_hyperedges

    @property
    def computations(self) -> int:
        """How many neighborhoods have been computed from scratch."""
        return self._computations

    @property
    def cache_hits(self) -> int:
        """How many neighborhood requests were served from the cache."""
        return self._hits

    @property
    def cache_size(self) -> int:
        """Number of neighborhoods currently memoized."""
        return len(self._cache)

    @property
    def policy(self) -> str:
        """The configured retention policy."""
        return self._policy

    @property
    def budget(self) -> Optional[int]:
        """The configured memoization budget (``None`` = unlimited)."""
        return self._budget

    # ------------------------------------------------------------ neighborhoods
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbor ids, weights)`` of hyperedge *i*, sorted ascending.

        Whether computed on the fly or read from the cache, the neighborhood
        is always exact, so algorithms built on top are unaffected by the
        budget (only their running time is).
        """
        cached = self._cache.get(i)
        if cached is not None:
            self._hits += 1
            if self._policy == POLICY_LRU:
                self._cache.move_to_end(i)
            return cached
        self._hypergraph._check_edge_index(i)
        csr = self._csr
        neighborhood = neighborhood_arrays(
            csr.node_ptr, csr.node_edges, csr.edge_row(i), i
        )
        self._computations += 1
        self._maybe_store(i, neighborhood)
        return neighborhood

    def neighbors(self, i: int) -> Dict[int, int]:
        """``{j: ω(∧_ij)}`` for hyperedge *i*, memoizing within the budget."""
        ids, weights = self.row(i)
        return {
            int(j): int(w) for j, w in zip(ids.tolist(), weights.tolist())
        }

    def neighbor_indices(self, i: int) -> List[int]:
        """Indices of hyperedges adjacent to *i*."""
        return self.row(i)[0].tolist()

    def overlap(self, i: int, j: int) -> int:
        """``|e_i ∩ e_j|`` computed via the (possibly cached) neighborhood of *i*."""
        ids, weights = self.row(i)
        position = int(np.searchsorted(ids, j))
        if position < ids.size and int(ids[position]) == j:
            return int(weights[position])
        return 0

    def hyperwedge_list(self) -> List[Tuple[int, int]]:
        """All hyperwedges ``(i, j)`` with ``i < j``.

        Enumerating hyperwedges requires touching every neighborhood once; the
        scan honours the memoization budget, so memory stays bounded.
        """
        wedges: List[Tuple[int, int]] = []
        for i in range(self.num_hyperedges):
            ids, _ = self.row(i)
            for j in ids[ids > i].tolist():
                wedges.append((i, int(j)))
        return wedges

    def prewarm(self, indices: Iterable[int]) -> None:
        """Eagerly compute (and memoize, budget permitting) the given neighborhoods."""
        for i in indices:
            self.row(i)

    # ------------------------------------------------------- kernel interface
    # The batched counting kernels drive any source exposing gather_rows /
    # row_lengths / pair_weights (see AdjacencyArrays); serving them here
    # means the lazy projection runs the same vectorized block sweeps, with
    # only the row fetches subject to the memoization budget.

    def row_lengths(self, rows: np.ndarray) -> np.ndarray:
        """Projected degrees of the given hyperedges (fetches their rows)."""
        return np.fromiter(
            (self.row(int(r))[0].size for r in rows),
            dtype=np.int64,
            count=len(rows),
        )

    def gather_rows(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated ``(neighbor ids, weights, lengths)`` of the given rows."""
        id_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        lengths = np.empty(len(rows), dtype=np.int64)
        for position, r in enumerate(rows):
            ids, weights = self.row(int(r))
            id_parts.append(ids)
            weight_parts.append(weights)
            lengths[position] = ids.size
        if not id_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, lengths
        return (
            np.concatenate(id_parts),
            np.concatenate(weight_parts),
            lengths,
        )

    def pair_weights(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized ``ω(∧_{rows[t], cols[t]})`` lookups (0 where absent).

        Queries are grouped by row so each distinct row is fetched once and
        searched with one vectorized ``searchsorted``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        out = np.zeros(rows.size, dtype=np.int64)
        if rows.size == 0:
            return out
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        boundaries = np.nonzero(
            np.concatenate(([True], sorted_rows[1:] != sorted_rows[:-1]))
        )[0]
        ends = np.concatenate((boundaries[1:], [sorted_rows.size]))
        for start, end in zip(boundaries.tolist(), ends.tolist()):
            ids, weights = self.row(int(sorted_rows[start]))
            positions = order[start:end]
            hit, where = sorted_member_positions(ids, cols[positions])
            out[positions[hit]] = weights[where[hit]]
        return out

    # --------------------------------------------------------------- internal
    def _maybe_store(
        self, i: int, neighborhood: Tuple[np.ndarray, np.ndarray]
    ) -> None:
        if self._budget is not None and self._budget == 0:
            return
        self._cache[i] = neighborhood
        if self._budget is None:
            return
        while len(self._cache) > self._budget:
            self._evict()

    def _evict(self) -> None:
        if self._policy == POLICY_LRU:
            # Evict the least recently used entry (front of the OrderedDict).
            self._cache.popitem(last=False)
            return
        if self._policy == POLICY_RANDOM:
            keys = list(self._cache)
            victim = keys[int(self._rng.integers(0, len(keys)))]
            del self._cache[victim]
            return
        # Degree policy: drop the cached neighborhood with the smallest
        # degree, preferring to keep high-degree hyperedges resident. The
        # victim may be the entry just inserted (always so at budget=1 when
        # it has the minimum degree): low-degree neighborhoods are cheap to
        # recompute, which is exactly the point.
        victim = min(self._cache, key=lambda key: self._cache[key][0].size)
        del self._cache[victim]

    def __repr__(self) -> str:
        return (
            f"LazyProjection(num_hyperedges={self.num_hyperedges}, "
            f"budget={self._budget}, policy={self._policy!r}, "
            f"cache_size={self.cache_size})"
        )
