"""On-the-fly (lazy) projection with a memoization budget (paper Section 3.4).

When the hypergraph is large, materializing the whole projected graph costs
``O(|E| + |∧|)`` memory. Instead, :class:`LazyProjection` computes the
neighborhood ``{j: ω(∧_ij)}`` of a hyperedge only when an algorithm asks for
it, and memoizes at most a configurable number of neighborhoods. The paper
reports that prioritizing hyperedges with high projected-graph degree
outperforms random or LRU retention (Figure 11); all three policies are
implemented so the ablation can be reproduced.

Each on-demand neighborhood is computed by the array-backed
:func:`repro.projection.builder.neighborhood_of` (a histogram over the CSR
membership rows); the memoization cache itself stays a dict of dicts, since
its contents are consumed incrementally by the per-triple counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.projection.builder import neighborhood_of
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_non_negative_int

#: Retention policies for memoized neighborhoods.
POLICY_DEGREE = "degree"
POLICY_LRU = "lru"
POLICY_RANDOM = "random"
_POLICIES = (POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM)


class LazyProjection:
    """Neighborhood provider with a bounded memoization cache.

    Parameters
    ----------
    hypergraph:
        Source hypergraph.
    budget:
        Maximum number of hyperedge neighborhoods kept in memory. ``0``
        disables memoization entirely (every request recomputes); ``None``
        means unlimited (equivalent to full projection, built incrementally).
    policy:
        ``"degree"`` keeps the neighborhoods of highest projected-graph degree
        (the paper's best-performing scheme), ``"lru"`` keeps the most recently
        used, ``"random"`` evicts uniformly at random.
    seed:
        Randomness for the ``"random"`` policy.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        budget: Optional[int] = None,
        policy: str = POLICY_DEGREE,
        seed: SeedLike = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        if budget is not None:
            budget = require_non_negative_int(budget, "budget")
        self._hypergraph = hypergraph
        self._budget = budget
        self._policy = policy
        self._rng = ensure_rng(seed)
        self._cache: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self._computations = 0
        self._hits = 0

    # ----------------------------------------------------------------- stats
    @property
    def num_hyperedges(self) -> int:
        """Number of hyperedges in the underlying hypergraph."""
        return self._hypergraph.num_hyperedges

    @property
    def computations(self) -> int:
        """How many neighborhoods have been computed from scratch."""
        return self._computations

    @property
    def cache_hits(self) -> int:
        """How many neighborhood requests were served from the cache."""
        return self._hits

    @property
    def cache_size(self) -> int:
        """Number of neighborhoods currently memoized."""
        return len(self._cache)

    @property
    def policy(self) -> str:
        """The configured retention policy."""
        return self._policy

    @property
    def budget(self) -> Optional[int]:
        """The configured memoization budget (``None`` = unlimited)."""
        return self._budget

    # ------------------------------------------------------------ neighborhoods
    def neighbors(self, i: int) -> Dict[int, int]:
        """``{j: ω(∧_ij)}`` for hyperedge *i*, memoizing within the budget.

        Whether computed on the fly or read from the cache, the neighborhood is
        always exact, so algorithms built on top are unaffected by the budget
        (only their running time is).
        """
        cached = self._cache.get(i)
        if cached is not None:
            self._hits += 1
            if self._policy == POLICY_LRU:
                self._cache.move_to_end(i)
            return cached
        neighborhood = neighborhood_of(self._hypergraph, i)
        self._computations += 1
        self._maybe_store(i, neighborhood)
        return neighborhood

    def neighbor_indices(self, i: int) -> List[int]:
        """Indices of hyperedges adjacent to *i*."""
        return list(self.neighbors(i))

    def overlap(self, i: int, j: int) -> int:
        """``|e_i ∩ e_j|`` computed via the (possibly cached) neighborhood of *i*."""
        return self.neighbors(i).get(j, 0)

    def hyperwedge_list(self) -> List[Tuple[int, int]]:
        """All hyperwedges ``(i, j)`` with ``i < j``.

        Enumerating hyperwedges requires touching every neighborhood once; the
        scan honours the memoization budget, so memory stays bounded.
        """
        wedges: List[Tuple[int, int]] = []
        for i in range(self.num_hyperedges):
            for j in self.neighbors(i):
                if i < j:
                    wedges.append((i, j))
        return wedges

    def prewarm(self, indices: Iterable[int]) -> None:
        """Eagerly compute (and memoize, budget permitting) the given neighborhoods."""
        for i in indices:
            self.neighbors(i)

    # --------------------------------------------------------------- internal
    def _maybe_store(self, i: int, neighborhood: Dict[int, int]) -> None:
        if self._budget is not None and self._budget == 0:
            return
        self._cache[i] = neighborhood
        if self._budget is None:
            return
        while len(self._cache) > self._budget:
            self._evict(i)

    def _evict(self, just_inserted: int) -> None:
        if self._policy == POLICY_LRU:
            # Evict the least recently used entry (front of the OrderedDict).
            self._cache.popitem(last=False)
            return
        if self._policy == POLICY_RANDOM:
            keys = list(self._cache)
            victim = keys[int(self._rng.integers(0, len(keys)))]
            del self._cache[victim]
            return
        # Degree policy: drop the cached neighborhood with the smallest degree,
        # preferring to keep high-degree hyperedges resident.
        victim = min(self._cache, key=lambda key: len(self._cache[key]))
        # If the victim is the entry we just inserted that is fine: low-degree
        # neighborhoods are cheap to recompute, which is exactly the point.
        del self._cache[victim]
        if victim == just_inserted:
            return

    def __repr__(self) -> str:
        return (
            f"LazyProjection(num_hyperedges={self.num_hyperedges}, "
            f"budget={self._budget}, policy={self._policy!r}, "
            f"cache_size={self.cache_size})"
        )
