"""Hypergraph projection (paper Algorithm 1).

``project`` builds the full projected graph ``G¯ = (E, ∧, ω)`` by scanning,
for each hyperedge ``e_i`` and each node ``v ∈ e_i``, the hyperedges ``e_j``
with ``j > i`` that also contain ``v``; every such co-occurrence increments
``ω(∧_ij)``. Complexity is ``O(Σ_{∧_ij ∈ ∧} |e_i ∩ e_j|)`` (Lemma 1).

``project_parallel`` splits the hyperedge range across processes and merges
the partial weight maps; it exists to reproduce the parallelization discussion
in Section 3.4 (Figure 10).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.projection.projected_graph import ProjectedGraph
from repro.utils.validation import require_positive_int


def project(hypergraph: Hypergraph) -> ProjectedGraph:
    """Build the projected graph of *hypergraph* (Algorithm 1)."""
    weights = _project_range(hypergraph, 0, hypergraph.num_hyperedges)
    return _weights_to_graph(hypergraph.num_hyperedges, weights)


def project_parallel(hypergraph: Hypergraph, num_workers: int = 2) -> ProjectedGraph:
    """Build the projected graph using *num_workers* processes.

    Each worker handles a contiguous slice of hyperedge indices; the partial
    ``ω`` maps are disjoint by construction (pair ``(i, j)`` with ``i < j`` is
    produced only by the worker owning ``i``), so merging is a plain union.
    """
    require_positive_int(num_workers, "num_workers")
    total = hypergraph.num_hyperedges
    if num_workers == 1 or total < 2 * num_workers:
        return project(hypergraph)
    boundaries = _split_range(total, num_workers)
    partials: List[Dict[Tuple[int, int], int]] = []
    with ProcessPoolExecutor(max_workers=num_workers) as executor:
        futures = [
            executor.submit(_project_range, hypergraph, start, end)
            for start, end in boundaries
        ]
        for future in futures:
            partials.append(future.result())
    merged: Dict[Tuple[int, int], int] = {}
    for partial in partials:
        merged.update(partial)
    return _weights_to_graph(total, merged)


def _split_range(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most *parts* contiguous non-empty slices."""
    parts = min(parts, total) if total > 0 else 1
    base, remainder = divmod(total, parts)
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        length = base + (1 if index < remainder else 0)
        boundaries.append((start, start + length))
        start += length
    return boundaries


def _project_range(
    hypergraph: Hypergraph, start: int, end: int
) -> Dict[Tuple[int, int], int]:
    """Overlap weights for hyperwedges ``(i, j)`` with ``start <= i < end`` and ``j > i``."""
    weights: Dict[Tuple[int, int], int] = {}
    for i in range(start, end):
        edge = hypergraph.hyperedge(i)
        for node in edge:
            for j in hypergraph.memberships(node):
                if j > i:
                    key = (i, j)
                    weights[key] = weights.get(key, 0) + 1
    return weights


def _weights_to_graph(
    num_hyperedges: int, weights: Dict[Tuple[int, int], int]
) -> ProjectedGraph:
    adjacency: Dict[int, Dict[int, int]] = {}
    for (i, j), weight in weights.items():
        adjacency.setdefault(i, {})[j] = weight
        adjacency.setdefault(j, {})[i] = weight
    return ProjectedGraph(num_hyperedges, adjacency)


def neighborhood_of(hypergraph: Hypergraph, i: int) -> Dict[int, int]:
    """Compute ``{j: ω(∧_ij)}`` for a single hyperedge *i* without full projection.

    This is the unit of work that the lazy / memoized projection of Section 3.4
    computes on demand.
    """
    weights: Dict[int, int] = {}
    for node in hypergraph.hyperedge(i):
        for j in hypergraph.memberships(node):
            if j != i:
                weights[j] = weights.get(j, 0) + 1
    return weights
