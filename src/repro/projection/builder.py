"""Hypergraph projection (paper Algorithm 1), array-native.

``project`` builds the full projected graph ``G¯ = (E, ∧, ω)`` from the
hypergraph's CSR view: every node's sorted membership row ``E_v`` contributes
all of its hyperedge pairs, and the multiplicity of a pair across rows *is*
its overlap weight ``ω(∧_ij)``. The pair stream is aggregated with NumPy
sorts instead of a tuple-keyed Python dict (see
:mod:`repro.fastcore.projection`); complexity stays
``O(Σ_{∧_ij ∈ ∧} |e_i ∩ e_j|)`` pairs (Lemma 1), now at array speed.

``project_parallel`` splits the *node* rows across processes; per-worker
partial aggregates are combined with the CSR partial-merge
(:func:`repro.fastcore.projection.merge_partial_pairs`) — a sort +
``reduceat`` that sums weights for pairs produced in several node ranges —
reproducing the parallelization discussion in Section 3.4 (Figure 10)
without dict-union costs. Workers receive plain membership arrays, never a
pickled frozenset graph.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Tuple

import numpy as np

from repro.fastcore.projection import (
    aggregate_cooccurrence,
    build_projection_arrays,
    merge_partial_pairs,
    neighborhood_counts,
    pairs_to_symmetric_csr,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.projection.projected_graph import ProjectedGraph
from repro.utils.validation import require_positive_int


def project(hypergraph: Hypergraph) -> ProjectedGraph:
    """Build the projected graph of *hypergraph* (Algorithm 1)."""
    csr = hypergraph.csr()
    ptr, idx, weight = build_projection_arrays(
        csr.node_ptr, csr.node_edges, csr.num_edges
    )
    return ProjectedGraph.from_csr(csr.num_edges, ptr, idx, weight)


def project_parallel(hypergraph: Hypergraph, num_workers: int = 2) -> ProjectedGraph:
    """Build the projected graph using *num_workers* processes.

    Each worker aggregates the co-occurrence pairs of a contiguous slice of
    *node* membership rows. A hyperedge pair may surface in several slices
    (its weight is a sum over shared nodes), so the partial ``(key, count)``
    arrays are combined with one sorted merge that sums counts per key.
    """
    require_positive_int(num_workers, "num_workers")
    csr = hypergraph.csr()
    total_nodes = csr.num_nodes
    if num_workers == 1 or total_nodes < 2 * num_workers:
        return project(hypergraph)
    boundaries = _split_range(total_nodes, num_workers)
    partials: List[Tuple[np.ndarray, np.ndarray]] = []
    with ProcessPoolExecutor(max_workers=num_workers) as executor:
        futures = [
            executor.submit(
                _project_node_range_worker,
                csr.node_ptr[start : end + 1] - csr.node_ptr[start],
                csr.node_edges[csr.node_ptr[start] : csr.node_ptr[end]],
                csr.num_edges,
            )
            for start, end in boundaries
        ]
        for future in futures:
            partials.append(future.result())
    keys, counts = merge_partial_pairs(tuple(partials))
    ptr, idx, weight = pairs_to_symmetric_csr(keys, counts, csr.num_edges)
    return ProjectedGraph.from_csr(csr.num_edges, ptr, idx, weight)


def _split_range(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most *parts* contiguous non-empty slices."""
    parts = min(parts, total) if total > 0 else 1
    base, remainder = divmod(total, parts)
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        length = base + (1 if index < remainder else 0)
        boundaries.append((start, start + length))
        start += length
    return boundaries


def _project_node_range_worker(
    node_ptr: np.ndarray, node_edges: np.ndarray, num_edges: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregated ``(pair keys, multiplicities)`` for one slice of node rows."""
    return aggregate_cooccurrence(node_ptr, node_edges, num_edges)


def neighborhood_of(hypergraph: Hypergraph, i: int) -> Dict[int, int]:
    """Compute ``{j: ω(∧_ij)}`` for a single hyperedge *i* without full projection.

    This is the unit of work that the lazy / memoized projection of Section 3.4
    computes on demand; it histograms the membership rows of ``e_i``'s nodes
    instead of incrementing a Python dict per co-occurrence.
    """
    hypergraph._check_edge_index(i)
    csr = hypergraph.csr()
    return neighborhood_counts(csr.node_ptr, csr.node_edges, csr.edge_row(i), i)
