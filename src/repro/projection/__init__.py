"""Hypergraph projection: the projected graph, its builders and lazy variants."""

from repro.projection.projected_graph import ProjectedGraph
from repro.projection.builder import neighborhood_of, project, project_parallel
from repro.projection.lazy import (
    LazyProjection,
    POLICY_DEGREE,
    POLICY_LRU,
    POLICY_RANDOM,
)

__all__ = [
    "ProjectedGraph",
    "project",
    "project_parallel",
    "neighborhood_of",
    "LazyProjection",
    "POLICY_DEGREE",
    "POLICY_LRU",
    "POLICY_RANDOM",
]
