"""Domain-level CP analysis (paper Figures 1, 5 and 6).

Given characteristic profiles of several hypergraphs with known domains, this
module quantifies how well CPs separate the domains (within- vs. across-domain
similarity, the Figure 6 "gap") and provides a simple nearest-profile domain
classifier demonstrating the paper's Q3 ("how can we identify domains which
hypergraphs are from?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.profile.characteristic_profile import (
    CharacteristicProfile,
    DomainSeparation,
    domain_separation,
    profile_correlation,
    similarity_matrix,
)


@dataclass(frozen=True)
class DomainAnalysis:
    """CP similarity structure over a labelled corpus of hypergraphs."""

    names: Tuple[str, ...]
    domains: Tuple[str, ...]
    matrix: np.ndarray
    separation: DomainSeparation

    def similarity(self, first: str, second: str) -> float:
        """Similarity between two named datasets."""
        row = self.names.index(first)
        column = self.names.index(second)
        return float(self.matrix[row, column])


def analyze_domains(
    profiles: Sequence[CharacteristicProfile], domains: Sequence[str]
) -> DomainAnalysis:
    """Similarity matrix plus within/across-domain separation of the corpus."""
    if len(profiles) != len(domains):
        raise ValueError("profiles and domains must have the same length")
    matrix = similarity_matrix(profiles)
    separation = domain_separation(profiles, domains)
    return DomainAnalysis(
        names=tuple(profile.name for profile in profiles),
        domains=tuple(domains),
        matrix=matrix,
        separation=separation,
    )


def classify_domain(
    query: CharacteristicProfile,
    references: Sequence[CharacteristicProfile],
    reference_domains: Sequence[str],
) -> str:
    """Predict the domain of *query* as that of its most-correlated reference CP."""
    if not references:
        raise ValueError("at least one reference profile is required")
    if len(references) != len(reference_domains):
        raise ValueError("references and reference_domains must have the same length")
    best_index = max(
        range(len(references)),
        key=lambda index: profile_correlation(query.values, references[index].values),
    )
    return reference_domains[best_index]


def leave_one_out_domain_accuracy(
    profiles: Sequence[CharacteristicProfile], domains: Sequence[str]
) -> float:
    """Leave-one-out accuracy of nearest-CP domain classification.

    A quantitative version of "CPs identify the domain a hypergraph comes
    from": each dataset's domain is predicted from the remaining datasets'
    CPs. Datasets whose domain has no other member are skipped.
    """
    if len(profiles) != len(domains):
        raise ValueError("profiles and domains must have the same length")
    correct = 0
    evaluated = 0
    for index, (profile, domain) in enumerate(zip(profiles, domains)):
        others = [p for position, p in enumerate(profiles) if position != index]
        other_domains = [d for position, d in enumerate(domains) if position != index]
        if domain not in other_domains:
            continue
        evaluated += 1
        if classify_domain(profile, others, other_domains) == domain:
            correct += 1
    if evaluated == 0:
        return 0.0
    return correct / evaluated


def per_motif_domain_importance(
    profiles: Sequence[CharacteristicProfile], domains: Sequence[str]
) -> Dict[int, float]:
    """How much each motif's significance varies across domains vs. within them.

    For each motif, the between-domain variance of its CP entry divided by the
    (between + within) variance — a crude ANOVA-style importance score mirroring
    the paper's appendix analysis of which motifs distinguish domains.
    """
    if len(profiles) != len(domains):
        raise ValueError("profiles and domains must have the same length")
    values = np.stack([profile.values for profile in profiles])
    unique_domains = sorted(set(domains))
    importances: Dict[int, float] = {}
    for motif_index in range(values.shape[1]):
        column = values[:, motif_index]
        overall_mean = column.mean()
        between = 0.0
        within = 0.0
        for domain in unique_domains:
            mask = np.array([d == domain for d in domains])
            group = column[mask]
            between += mask.sum() * (group.mean() - overall_mean) ** 2
            within += ((group - group.mean()) ** 2).sum()
        total = between + within
        importances[motif_index + 1] = float(between / total) if total > 0 else 0.0
    return importances
