"""Evolution of h-motif fractions over time (paper Figure 7).

The paper tracks, for yearly snapshots of the co-authorship data, the fraction
of instances belonging to each h-motif and to the open/closed groups, finding
that the open-motif fraction rises steadily and motifs 2 and 22 come to
dominate. This module computes the same time series for any temporal
hypergraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.counting.runner import ALGORITHM_EXACT
from repro.hypergraph.builders import TemporalHypergraph
from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class EvolutionPoint:
    """Motif statistics of one temporal snapshot."""

    timestamp: int
    counts: MotifCounts
    fractions: Dict[int, float]
    open_fraction: float


@dataclass(frozen=True)
class EvolutionSeries:
    """The full time series over all snapshots."""

    name: str
    points: List[EvolutionPoint]

    def timestamps(self) -> List[int]:
        """Snapshot timestamps in order."""
        return [point.timestamp for point in self.points]

    def open_fractions(self) -> List[float]:
        """Open-motif fraction per snapshot (the Figure 7(b) series)."""
        return [point.open_fraction for point in self.points]

    def motif_fraction_series(self, motif: int) -> List[float]:
        """Fraction of instances of one motif per snapshot (a Figure 7(a) line)."""
        if not 1 <= motif <= NUM_MOTIFS:
            raise ValueError(f"motif must be in [1, {NUM_MOTIFS}], got {motif}")
        return [point.fractions[motif] for point in self.points]

    def dominant_motifs(self, top: int = 2) -> List[int]:
        """Motifs with the largest average fraction across snapshots."""
        averages = {
            motif: sum(point.fractions[motif] for point in self.points) / len(self.points)
            for motif in range(1, NUM_MOTIFS + 1)
        }
        ordered = sorted(averages, key=lambda motif: -averages[motif])
        return ordered[:top]

    def open_fraction_trend(self) -> float:
        """Least-squares slope of the open-motif fraction over snapshot index.

        A positive value reproduces the paper's finding that collaborations
        become less clustered over time.
        """
        values = self.open_fractions()
        count = len(values)
        if count < 2:
            return 0.0
        xs = list(range(count))
        mean_x = sum(xs) / count
        mean_y = sum(values) / count
        numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, values))
        denominator = sum((x - mean_x) ** 2 for x in xs)
        return numerator / denominator if denominator else 0.0


def motif_fraction_evolution(
    temporal: TemporalHypergraph,
    algorithm: str = ALGORITHM_EXACT,
    sampling_ratio: Optional[float] = None,
    seed: SeedLike = None,
    min_hyperedges: int = 3,
) -> EvolutionSeries:
    """Per-snapshot motif fractions of a temporal hypergraph.

    Snapshots with fewer than *min_hyperedges* hyperedges (which cannot contain
    any instance) are skipped.

    This is a thin shim over :meth:`repro.api.MotifEngine.evolve` with
    ``mode="snapshot"`` (each timestamp counted in isolation, as in the
    paper's figure) and the artifact store disabled, so results are
    bit-identical to the historic per-snapshot loop.
    """
    from repro.api import EvolveSpec, MotifEngine

    engine = MotifEngine(temporal, store=None)
    result = engine.evolve(
        EvolveSpec(
            mode="snapshot",
            algorithm=algorithm,
            sampling_ratio=sampling_ratio,
            seed=seed,
            min_hyperedges=min_hyperedges,
        )
    )
    return result.series()
