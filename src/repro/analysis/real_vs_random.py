"""Real-vs-random count comparison (paper Table 3).

For each h-motif the paper reports, per dataset: the count of its instances in
the real hypergraph, the average count in randomized hypergraphs, the motif's
rank by count in each, the rank difference (RD) and the relative count
(RC = (M - M_rand) / (M + M_rand)). This module computes the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.counting.runner import ALGORITHM_EXACT
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.profile.significance import relative_count
from repro.randomization.null_model import NULL_MODEL_CHUNG_LU
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class MotifComparisonRow:
    """One row of the Table-3 style comparison for a single h-motif."""

    motif: int
    real_count: float
    random_count: float
    real_rank: int
    random_rank: int
    relative_count: float

    @property
    def rank_difference(self) -> int:
        """Absolute difference between the real and random ranks (Table 3's RD)."""
        return abs(self.real_rank - self.random_rank)


@dataclass(frozen=True)
class RealVsRandomReport:
    """The full 26-row comparison of one dataset."""

    dataset: str
    rows: List[MotifComparisonRow]

    def row(self, motif: int) -> MotifComparisonRow:
        """The comparison row of a specific motif."""
        for entry in self.rows:
            if entry.motif == motif:
                return entry
        raise KeyError(f"motif {motif} not present in the report")

    def mean_rank_difference(self) -> float:
        """Mean rank difference over all motifs — a scalar summary of divergence."""
        return sum(entry.rank_difference for entry in self.rows) / len(self.rows)

    def most_overrepresented(self, top: int = 3) -> List[int]:
        """Motifs with the largest relative counts (most over-represented in real data)."""
        ordered = sorted(self.rows, key=lambda entry: -entry.relative_count)
        return [entry.motif for entry in ordered[:top]]

    def most_underrepresented(self, top: int = 3) -> List[int]:
        """Motifs with the smallest relative counts (over-represented in random data)."""
        ordered = sorted(self.rows, key=lambda entry: entry.relative_count)
        return [entry.motif for entry in ordered[:top]]


def compare_counts(
    real_counts: MotifCounts, random_counts: MotifCounts, dataset: str = "hypergraph"
) -> RealVsRandomReport:
    """Build the Table-3 style report from precomputed real and random counts."""
    real_ranks = real_counts.ranks()
    random_ranks = random_counts.ranks()
    rows = [
        MotifComparisonRow(
            motif=motif,
            real_count=real_counts[motif],
            random_count=random_counts[motif],
            real_rank=real_ranks[motif],
            random_rank=random_ranks[motif],
            relative_count=relative_count(real_counts[motif], random_counts[motif]),
        )
        for motif in range(1, NUM_MOTIFS + 1)
    ]
    return RealVsRandomReport(dataset=dataset, rows=rows)


def real_vs_random(
    hypergraph: Hypergraph,
    num_random: int = 5,
    algorithm: str = ALGORITHM_EXACT,
    sampling_ratio: Optional[float] = None,
    null_model: str = NULL_MODEL_CHUNG_LU,
    seed: SeedLike = None,
) -> RealVsRandomReport:
    """Count the real hypergraph and its randomizations, then compare them.

    .. deprecated:: thin shim over :meth:`repro.api.MotifEngine.compare`,
       which caches the projection across workflows on the same hypergraph.
    """
    # Imported here: repro.api builds on this module (compare_counts).
    from repro.api.config import CompareSpec
    from repro.api.engine import MotifEngine

    spec = CompareSpec(
        num_random=num_random,
        algorithm=algorithm,
        sampling_ratio=sampling_ratio,
        null_model=null_model,
        seed=seed,
    )
    return MotifEngine(hypergraph).compare(spec).report


def format_report(report: RealVsRandomReport) -> str:
    """Plain-text rendering of a report, one line per motif (for the CLI and benches)."""
    lines = [
        f"dataset: {report.dataset}",
        f"{'motif':>5} {'real':>14} {'rank':>4} {'random':>14} {'rank':>4} {'RD':>3} {'RC':>6}",
    ]
    for row in report.rows:
        lines.append(
            f"{row.motif:>5} {row.real_count:>14.4g} {row.real_rank:>4} "
            f"{row.random_count:>14.4g} {row.random_rank:>4} "
            f"{row.rank_difference:>3} {row.relative_count:>6.2f}"
        )
    return "\n".join(lines)
