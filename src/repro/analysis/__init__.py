"""Discovery-level analyses: real-vs-random tables, domain comparison, evolution."""

from repro.analysis.real_vs_random import (
    MotifComparisonRow,
    RealVsRandomReport,
    compare_counts,
    format_report,
    real_vs_random,
)
from repro.analysis.domains import (
    DomainAnalysis,
    analyze_domains,
    classify_domain,
    leave_one_out_domain_accuracy,
    per_motif_domain_importance,
)
from repro.analysis.evolution import (
    EvolutionPoint,
    EvolutionSeries,
    motif_fraction_evolution,
)

__all__ = [
    "MotifComparisonRow",
    "RealVsRandomReport",
    "compare_counts",
    "format_report",
    "real_vs_random",
    "DomainAnalysis",
    "analyze_domains",
    "classify_domain",
    "leave_one_out_domain_accuracy",
    "per_motif_domain_importance",
    "EvolutionPoint",
    "EvolutionSeries",
    "motif_fraction_evolution",
]
