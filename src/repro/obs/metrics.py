"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Stdlib-only, thread-safe, deterministic. Metric families are registered once
(by name) and live for the life of the process; per-label-set children are
created on first touch. Histograms use *fixed* bucket boundaries so two runs
over the same workload render byte-identical exposition (no adaptive
bucketing, no timestamps).

Hot-path cost: every mutating call checks ``registry.enabled`` first and
returns immediately when instrumentation is off, so the disabled overhead is
one attribute load + branch per call site (gated by
``benchmarks/bench_obs.py``).

Rendering follows the Prometheus text exposition format 0.0.4:
``# HELP``/``# TYPE`` headers, ``_total`` counter samples,
``_bucket{le=...}``/``_sum``/``_count`` histogram samples, escaped label
values, samples sorted for determinism.
"""

from __future__ import annotations

import math
import os
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "render",
    "summaries",
    "reset_metrics",
    "set_enabled",
    "metrics_enabled",
]

ENV_METRICS = "REPRO_METRICS"

# Spans micro-second cache hits up to minute-long cold builds. Fixed so that
# exposition output is structurally identical across runs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in zip(labelnames, labelvalues)
    )
    return "{%s}" % pairs


class _Family:
    """Base class for one named metric family with zero or more label dims."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = threading.Lock()

    def _labelvalues(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        # Hot path: build the key straight from the expected names; a length
        # check plus KeyError covers every mismatch without allocating sets.
        names = self.labelnames
        if len(labels) != len(names):
            self._label_error(labels)
        try:
            return tuple(str(labels[name]) for name in names)
        except KeyError:
            self._label_error(labels)

    def _label_error(self, labels: Dict[str, object]) -> None:
        raise ValueError(
            "metric %r expects labels %r, got %r"
            % (self.name, self.labelnames, tuple(sorted(labels)))
        )

    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        return (self.kind, self.labelnames)

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """Monotonically increasing counter (rendered with a ``_total`` suffix)."""

    kind = "counter"

    def __init__(self, registry, name, help_text, labelnames):
        super().__init__(registry, name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        key = self._labelvalues(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._labelvalues(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def render(self) -> List[str]:
        if self.name.endswith("_total"):
            sample_name = self.name
        else:
            sample_name = self.name + "_total"
        with self._lock:
            items = sorted(self._values.items())
        lines = [
            "# HELP %s %s" % (sample_name, _escape_help(self.help)),
            "# TYPE %s counter" % sample_name,
        ]
        for key, value in items:
            lines.append(
                "%s%s %s"
                % (sample_name, _label_suffix(self.labelnames, key), _format_value(value))
            )
        return lines


class Gauge(_Family):
    """A value that can go up and down (occupancy, in-flight, bytes)."""

    kind = "gauge"

    def __init__(self, registry, name, help_text, labelnames):
        super().__init__(registry, name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._labelvalues(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._labelvalues(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._labelvalues(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = [
            "# HELP %s %s" % (self.name, _escape_help(self.help)),
            "# TYPE %s gauge" % self.name,
        ]
        for key, value in items:
            lines.append(
                "%s%s %s"
                % (self.name, _label_suffix(self.labelnames, key), _format_value(value))
            )
        return lines


class _HistogramChild:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-finite-bucket, non-cumulative
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    """Fixed-bucket histogram; cumulative ``le`` buckets are derived on render."""

    kind = "histogram"

    def __init__(self, registry, name, help_text, labelnames, buckets):
        super().__init__(registry, name, help_text, labelnames)
        edges = tuple(sorted(float(edge) for edge in buckets))
        if not edges:
            raise ValueError("histogram %r needs at least one bucket" % name)
        if len(set(edges)) != len(edges):
            raise ValueError("histogram %r has duplicate bucket edges" % name)
        self.buckets = edges
        self._children: Dict[Tuple[str, ...], _HistogramChild] = {}

    def signature(self) -> Tuple[str, Tuple[str, ...], Tuple[float, ...]]:
        return (self.kind, self.labelnames, self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._labelvalues(labels)
        value = float(value)
        # index of the first bucket with edge >= value; len(edges) => +Inf only
        lo = bisect_left(self.buckets, value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.buckets) + 1)
            child.counts[lo] += 1
            child.total += value
            child.count += 1

    def child_count(self, **labels: object) -> int:
        key = self._labelvalues(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child else 0

    def reset(self) -> None:
        with self._lock:
            self._children.clear()

    def _aggregate(self) -> Tuple[List[int], float, int]:
        """Sum all children into (per-bucket counts, sum, count)."""
        counts = [0] * (len(self.buckets) + 1)
        total = 0.0
        count = 0
        with self._lock:
            for child in self._children.values():
                for i, c in enumerate(child.counts):
                    counts[i] += c
                total += child.total
                count += child.count
        return counts, total, count

    def summary(self) -> Dict[str, float]:
        """Deterministic {count, sum, p50, p95, p99} across all label sets."""
        counts, total, count = self._aggregate()
        result: Dict[str, float] = {"count": count, "sum": round(total, 9)}
        for q, key in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            result[key] = self._quantile(counts, count, q)
        return result

    def _quantile(self, counts: List[int], count: int, q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if i >= len(self.buckets):
                    # Landed in +Inf: clamp to the largest finite edge.
                    return self.buckets[-1]
                upper = self.buckets[i]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                if bucket_count == 0:
                    return upper
                fraction = (rank - previous) / bucket_count
                return round(lower + (upper - lower) * fraction, 9)
        return self.buckets[-1]

    def render(self) -> List[str]:
        lines = [
            "# HELP %s %s" % (self.name, _escape_help(self.help)),
            "# TYPE %s histogram" % self.name,
        ]
        with self._lock:
            items = sorted(
                (key, list(child.counts), child.total, child.count)
                for key, child in self._children.items()
            )
        for key, counts, total, count in items:
            cumulative = 0
            for i, edge in enumerate(self.buckets):
                cumulative += counts[i]
                labelnames = self.labelnames + ("le",)
                labelvalues = key + (_format_value(edge),)
                lines.append(
                    "%s_bucket%s %d"
                    % (self.name, _label_suffix(labelnames, labelvalues), cumulative)
                )
            cumulative += counts[len(self.buckets)]
            labelnames = self.labelnames + ("le",)
            labelvalues = key + ("+Inf",)
            lines.append(
                "%s_bucket%s %d"
                % (self.name, _label_suffix(labelnames, labelvalues), cumulative)
            )
            lines.append(
                "%s_sum%s %s"
                % (self.name, _label_suffix(self.labelnames, key), _format_value(total))
            )
            lines.append(
                "%s_count%s %d" % (self.name, _label_suffix(self.labelnames, key), count)
            )
        return lines


class MetricsRegistry:
    """Thread-safe, idempotent registry of metric families.

    Registering the same name twice returns the existing family when the
    declaration matches (kind, labelnames, buckets) and raises otherwise, so
    modules can declare their metrics at import time without coordination.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        if enabled is None:
            enabled = os.environ.get(ENV_METRICS, "1").lower() not in (
                "0",
                "false",
                "off",
                "no",
            )
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- registration ----------------------------------------------------

    def _register(self, cls, name, help_text, labelnames, **kwargs) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % name)
        labelnames = tuple(labelnames or ())
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError("invalid label name %r on metric %r" % (label, name))
        candidate = cls(self, name, help_text, labelnames, **kwargs)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.signature() != candidate.signature():
                    raise ValueError(
                        "metric %r re-registered with a different declaration" % name
                    )
                return existing
            self._families[name] = candidate
            return candidate

    def counter(
        self, name: str, help_text: str, labelnames: Iterable[str] = ()
    ) -> Counter:
        family = self._register(Counter, name, help_text, labelnames)
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help_text: str, labelnames: Iterable[str] = ()) -> Gauge:
        family = self._register(Gauge, name, help_text, labelnames)
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        family = self._register(
            Histogram, name, help_text, labelnames, buckets=tuple(buckets)
        )
        assert isinstance(family, Histogram)
        return family

    # -- output ----------------------------------------------------------

    def render(self) -> str:
        """Full Prometheus text exposition (format 0.0.4)."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-histogram {count, sum, p50, p95, p99}, aggregated over labels."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        return {
            family.name: family.summary()
            for family in families
            if isinstance(family, Histogram)
        }

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Zero all sample values. Family objects stay registered, so
        module-level handles held by instrumented code remain live."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.reset()

    def clear(self) -> None:
        """Drop every family. Only for tests that exercise registration."""
        with self._lock:
            self._families.clear()

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, help_text: str, labelnames: Iterable[str] = ()) -> Counter:
    return _REGISTRY.counter(name, help_text, labelnames)


def gauge(name: str, help_text: str, labelnames: Iterable[str] = ()) -> Gauge:
    return _REGISTRY.gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str,
    labelnames: Iterable[str] = (),
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> Histogram:
    return _REGISTRY.histogram(name, help_text, labelnames, buckets=buckets)


def render() -> str:
    return _REGISTRY.render()


def summaries() -> Dict[str, Dict[str, float]]:
    return _REGISTRY.summaries()


def reset_metrics() -> None:
    _REGISTRY.reset()


def set_enabled(enabled: bool) -> None:
    _REGISTRY.enabled = bool(enabled)


def metrics_enabled() -> bool:
    return _REGISTRY.enabled
