"""Request-id propagation and structured JSON event logging.

The request id is held in a :class:`contextvars.ContextVar`. The HTTP handler
opens ``trace(request_id)`` around each request; everything that runs in that
context (parsing, admission, ``submit_stream``, store lookups on the handler
thread) sees the id via :func:`current_request_id`.

contextvars do **not** flow into pool workers, so the two executor paths bind
the id explicitly: thread-backend units capture it into their closures at
build time (``EngineServer._make_unit``) and process-backend units carry it in
``WorkerPayload.request_id`` across the pickle boundary, where
``execute_payload`` re-enters ``trace``.

Structured events are single JSON lines (sorted keys, ``event`` plus
``request_id`` when one is set) emitted through the ``repro`` logger
namespace; :func:`log_event` early-outs on ``logger.isEnabledFor`` so
disabled levels cost one check.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import time
import uuid
from typing import Dict, Iterator, Optional

__all__ = [
    "REQUEST_ID_HEADER",
    "new_request_id",
    "current_request_id",
    "trace",
    "span",
    "log_event",
]

REQUEST_ID_HEADER = "X-Request-Id"

_REQUEST_ID: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> Optional[str]:
    """The request id bound to the current context, if any."""
    return _REQUEST_ID.get()


@contextlib.contextmanager
def trace(request_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``request_id`` for the duration of the block (None clears it)."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.DEBUG,
    **fields: object,
) -> None:
    """Emit one structured JSON line: {"event": ..., "request_id": ..., ...}."""
    if not logger.isEnabledFor(level):
        return
    payload: Dict[str, object] = {"event": event}
    request_id = _REQUEST_ID.get()
    if request_id is not None:
        payload["request_id"] = request_id
    payload.update(fields)
    logger.log(level, "%s", json.dumps(payload, sort_keys=True, default=str))


@contextlib.contextmanager
def span(
    logger: logging.Logger,
    name: str,
    level: int = logging.DEBUG,
    **fields: object,
) -> Iterator[Dict[str, object]]:
    """Time a block and log one ``name`` event with ``seconds`` on exit.

    Yields a mutable dict; keys added inside the block land on the event.
    """
    extra: Dict[str, object] = dict(fields)
    started = time.perf_counter()
    try:
        yield extra
    finally:
        extra["seconds"] = round(time.perf_counter() - started, 6)
        log_event(logger, name, level=level, **extra)
