"""``repro.obs`` — stdlib-only observability spine for the serving stack.

Two small, dependency-free facilities that every layer of the system reports
through:

:mod:`repro.obs.metrics`
    A process-wide :class:`~repro.obs.metrics.MetricsRegistry` of thread-safe
    counters, gauges and fixed-bucket latency histograms, rendered as
    Prometheus text exposition (``GET /v1/metrics``) and folded into
    ``describe()``/``/v1/stats`` as deterministic p50/p95/p99 summaries.

:mod:`repro.obs.trace`
    A contextvar-propagated request id plus structured JSON event logging on
    the ``repro`` logger namespace: :class:`~repro.store.client.ServiceClient`
    injects an ``X-Request-Id`` header, the HTTP handler opens a
    :func:`~repro.obs.trace.trace` context, and the id rides serving units —
    across thread pools explicitly and across the process-worker pickle
    boundary via :class:`~repro.store.executors.WorkerPayload` — so one
    request can be followed from the client through the executors into the
    store tiers.

Instrumentation is gated on :func:`~repro.obs.metrics.set_enabled`; the
disabled fast path is one attribute check per call site, benchmarked by
``benchmarks/bench_obs.py`` to keep warm-path overhead within 5%.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    metrics_enabled,
    render,
    reset_metrics,
    set_enabled,
    summaries,
)
from repro.obs.trace import (
    REQUEST_ID_HEADER,
    current_request_id,
    log_event,
    new_request_id,
    span,
    trace,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "render",
    "summaries",
    "reset_metrics",
    "set_enabled",
    "metrics_enabled",
    "REQUEST_ID_HEADER",
    "new_request_id",
    "current_request_id",
    "trace",
    "span",
    "log_event",
]
