"""H-motif patterns: the 26 connectivity classes of three connected hyperedges.

A set of three hyperedges ``{e_i, e_j, e_k}`` partitions its union into seven
Venn regions (paper Section 2.2)::

    A   = e_i \\ e_j \\ e_k          AB  = e_i ∩ e_j \\ e_k
    B   = e_j \\ e_k \\ e_i          BC  = e_j ∩ e_k \\ e_i
    C   = e_k \\ e_i \\ e_j          CA  = e_k ∩ e_i \\ e_j
    ABC = e_i ∩ e_j ∩ e_k

An *emptiness pattern* is the 7-bit vector saying which regions are non-empty,
stored here as a tuple of bools in the order ``(A, B, C, AB, BC, CA, ABC)``.
Patterns that differ only by re-labelling the three hyperedges describe the
same local structure, so each pattern is mapped to a canonical representative;
after discarding patterns with an empty hyperedge, duplicated hyperedges, or a
disconnected triple, exactly 26 canonical classes remain: the h-motifs.

Index convention
----------------
The paper's Figure 3 fixes a drawing order we cannot fully recover from the
text; we therefore assign indices deterministically under the constraints the
text does pin down (see DESIGN.md §4):

* indices 17–22 are the six *open* motifs, all others are *closed*;
* index 16 is the closed motif with all seven regions non-empty;
* indices 17 and 18 are the two open motifs consisting of a hyperedge and two
  disjoint subsets of it;
* index 22 is the open motif with every allowed region non-empty.

Remaining indices are filled in order of (number of non-empty regions,
canonical bit value), which is stable across runs and platforms.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.exceptions import MotifError

#: Number of h-motifs for three hyperedges.
NUM_MOTIFS = 26

#: Names of the seven Venn regions, in pattern order.
REGION_NAMES: Tuple[str, ...] = ("A", "B", "C", "AB", "BC", "CA", "ABC")

#: A 7-bool emptiness pattern in region order (True = region non-empty).
Pattern = Tuple[bool, bool, bool, bool, bool, bool, bool]

# Index positions of the regions within a pattern tuple.
_A, _B, _C, _AB, _BC, _CA, _ABC = range(7)

# For each hyperedge position (0, 1, 2), the regions it participates in.
_EDGE_REGIONS: Tuple[Tuple[int, ...], ...] = (
    (_A, _AB, _CA, _ABC),
    (_B, _AB, _BC, _ABC),
    (_C, _BC, _CA, _ABC),
)

# For each unordered pair of hyperedge positions, its exclusive pair region.
_PAIR_REGION: Dict[FrozenSet[int], int] = {
    frozenset((0, 1)): _AB,
    frozenset((1, 2)): _BC,
    frozenset((2, 0)): _CA,
}


def pattern_from_bits(bits: Sequence[int]) -> Pattern:
    """Build a pattern from any length-7 sequence of truthy/falsy values."""
    if len(bits) != 7:
        raise MotifError(f"a pattern needs exactly 7 entries, got {len(bits)}")
    return tuple(bool(bit) for bit in bits)  # type: ignore[return-value]


def pattern_to_int(pattern: Pattern) -> int:
    """Encode a pattern as an integer in ``[0, 127]`` (bit ``r`` = region ``r``)."""
    return sum(1 << position for position, filled in enumerate(pattern) if filled)


def pattern_from_int(code: int) -> Pattern:
    """Inverse of :func:`pattern_to_int`."""
    if not 0 <= code < 128:
        raise MotifError(f"pattern code must be in [0, 128), got {code}")
    return tuple(bool((code >> position) & 1) for position in range(7))  # type: ignore[return-value]


def permute_pattern(pattern: Pattern, perm: Sequence[int]) -> Pattern:
    """Re-label the hyperedges of *pattern* according to *perm*.

    ``perm[i]`` gives the old position of the hyperedge placed at new
    position ``i``; single regions follow their hyperedge and pair regions
    follow their pair, while the triple region is fixed.
    """
    if sorted(perm) != [0, 1, 2]:
        raise MotifError(f"perm must be a permutation of (0, 1, 2), got {perm!r}")
    singles = (pattern[_A], pattern[_B], pattern[_C])
    pairs = {
        frozenset((0, 1)): pattern[_AB],
        frozenset((1, 2)): pattern[_BC],
        frozenset((2, 0)): pattern[_CA],
    }
    new_singles = tuple(singles[perm[i]] for i in range(3))
    new_pairs = {
        frozenset((i, j)): pairs[frozenset((perm[i], perm[j]))]
        for i, j in ((0, 1), (1, 2), (2, 0))
    }
    return (
        new_singles[0],
        new_singles[1],
        new_singles[2],
        new_pairs[frozenset((0, 1))],
        new_pairs[frozenset((1, 2))],
        new_pairs[frozenset((2, 0))],
        pattern[_ABC],
    )


def canonicalize(pattern: Pattern) -> Pattern:
    """The canonical representative of *pattern* under hyperedge re-labelling.

    Defined as the permuted pattern with the largest integer encoding; any
    fixed tie-break works because the orbit of a pattern under the six
    permutations always contains a unique maximum.
    """
    return max(
        (permute_pattern(pattern, perm) for perm in permutations(range(3))),
        key=pattern_to_int,
    )


# --------------------------------------------------------------------- checks
def edge_is_empty(pattern: Pattern, position: int) -> bool:
    """Whether hyperedge *position* (0, 1 or 2) has no nodes under *pattern*."""
    return not any(pattern[region] for region in _EDGE_REGIONS[position])


def edges_are_duplicated(pattern: Pattern, first: int, second: int) -> bool:
    """Whether hyperedges *first* and *second* are forced equal by *pattern*.

    Two hyperedges are equal as sets iff every region belonging to exactly one
    of them is empty.
    """
    third = ({0, 1, 2} - {first, second}).pop()
    exclusive = (
        _EDGE_REGIONS[first][0],  # single region of `first`
        _EDGE_REGIONS[second][0],  # single region of `second`
        _PAIR_REGION[frozenset((first, third))],
        _PAIR_REGION[frozenset((second, third))],
    )
    return not any(pattern[region] for region in exclusive)


def edges_are_adjacent(pattern: Pattern, first: int, second: int) -> bool:
    """Whether hyperedges *first* and *second* overlap under *pattern*."""
    return pattern[_PAIR_REGION[frozenset((first, second))]] or pattern[_ABC]


def is_connected(pattern: Pattern) -> bool:
    """Whether the three hyperedges form a connected triple under *pattern*."""
    adjacency = [
        (i, j)
        for i, j in ((0, 1), (1, 2), (0, 2))
        if edges_are_adjacent(pattern, i, j)
    ]
    if len(adjacency) < 2:
        return False
    touched = {position for pair in adjacency for position in pair}
    return len(touched) == 3


def is_closed(pattern: Pattern) -> bool:
    """Whether all three pairs of hyperedges overlap (a *closed* pattern)."""
    return all(
        edges_are_adjacent(pattern, i, j) for i, j in ((0, 1), (1, 2), (0, 2))
    )


def is_valid(pattern: Pattern) -> bool:
    """Whether *pattern* can arise from three distinct, connected hyperedges."""
    if any(edge_is_empty(pattern, position) for position in range(3)):
        return False
    if any(
        edges_are_duplicated(pattern, i, j) for i, j in ((0, 1), (1, 2), (0, 2))
    ):
        return False
    return is_connected(pattern)


# ---------------------------------------------------------------- enumeration
def _subset_pattern(include_outer_only: bool) -> Pattern:
    """Open pattern of a hyperedge containing two disjoint subsets (motifs 17/18)."""
    bits = [False] * 7
    bits[_AB] = True
    bits[_CA] = True
    bits[_A] = include_outer_only
    return canonicalize(pattern_from_bits(bits))


def _open_full_pattern() -> Pattern:
    """Open pattern with every allowed region non-empty (motif 22)."""
    bits = [True] * 7
    bits[_BC] = False
    bits[_ABC] = False
    return canonicalize(pattern_from_bits(bits))


def _closed_full_pattern() -> Pattern:
    """Closed pattern with all seven regions non-empty (motif 16)."""
    return canonicalize(pattern_from_bits([True] * 7))


@lru_cache(maxsize=1)
def _build_tables() -> Tuple[Tuple[Pattern, ...], Dict[Pattern, int]]:
    """Enumerate canonical patterns and fix the motif index assignment."""
    canonical: List[Pattern] = []
    seen = set()
    for code in range(128):
        pattern = pattern_from_int(code)
        if not is_valid(pattern):
            continue
        representative = canonicalize(pattern)
        if representative not in seen:
            seen.add(representative)
            canonical.append(representative)
    if len(canonical) != NUM_MOTIFS:
        raise MotifError(
            f"internal error: expected {NUM_MOTIFS} canonical patterns, "
            f"found {len(canonical)}"
        )

    def sort_key(pattern: Pattern) -> Tuple[int, int]:
        return (sum(pattern), pattern_to_int(pattern))

    closed = sorted((p for p in canonical if is_closed(p)), key=sort_key)
    open_ = sorted((p for p in canonical if not is_closed(p)), key=sort_key)

    # Anchored patterns (see module docstring).
    anchor_16 = _closed_full_pattern()
    anchor_17 = _subset_pattern(include_outer_only=False)
    anchor_18 = _subset_pattern(include_outer_only=True)
    anchor_22 = _open_full_pattern()

    closed_rest = [p for p in closed if p != anchor_16]
    open_rest = [p for p in open_ if p not in (anchor_17, anchor_18, anchor_22)]
    if len(closed_rest) != 19 or len(open_rest) != 3:
        raise MotifError("internal error: anchored patterns not found among classes")

    by_index: List[Pattern] = [None] * NUM_MOTIFS  # type: ignore[list-item]
    # Closed motifs occupy 1-15, 16 (anchored), and 23-26.
    closed_slots = list(range(1, 16)) + list(range(23, 27))
    for slot, pattern in zip(closed_slots, closed_rest):
        by_index[slot - 1] = pattern
    by_index[16 - 1] = anchor_16
    # Open motifs occupy 17-22 with 17, 18 and 22 anchored.
    by_index[17 - 1] = anchor_17
    by_index[18 - 1] = anchor_18
    by_index[22 - 1] = anchor_22
    for slot, pattern in zip((19, 20, 21), open_rest):
        by_index[slot - 1] = pattern

    ordered = tuple(by_index)
    index_of = {pattern: position + 1 for position, pattern in enumerate(ordered)}
    return ordered, index_of


def all_motif_patterns() -> Tuple[Pattern, ...]:
    """Canonical patterns of motifs 1..26 (position 0 holds motif 1)."""
    return _build_tables()[0]


def motif_pattern(index: int) -> Pattern:
    """Canonical pattern of the h-motif with the given 1-based *index*."""
    if not 1 <= index <= NUM_MOTIFS:
        raise MotifError(f"motif index must be in [1, {NUM_MOTIFS}], got {index}")
    return _build_tables()[0][index - 1]


def motif_index(pattern: Pattern) -> int:
    """1-based motif index of *pattern* (which may be non-canonical)."""
    representative = canonicalize(pattern)
    index = _build_tables()[1].get(representative)
    if index is None:
        raise MotifError(
            f"pattern {pattern!r} is not a valid h-motif pattern "
            "(empty, duplicated or disconnected hyperedges)"
        )
    return index


def open_motif_indices() -> Tuple[int, ...]:
    """Indices of the six open motifs (17..22 by construction)."""
    patterns = all_motif_patterns()
    return tuple(
        index for index, pattern in enumerate(patterns, start=1) if not is_closed(pattern)
    )


def closed_motif_indices() -> Tuple[int, ...]:
    """Indices of the twenty closed motifs."""
    patterns = all_motif_patterns()
    return tuple(
        index for index, pattern in enumerate(patterns, start=1) if is_closed(pattern)
    )


def motif_is_open(index: int) -> bool:
    """Whether motif *index* is open (contains a disjoint hyperedge pair)."""
    return not is_closed(motif_pattern(index))


def motif_is_closed(index: int) -> bool:
    """Whether motif *index* is closed (all three pairs overlap)."""
    return is_closed(motif_pattern(index))


def describe_motif(index: int) -> str:
    """Human-readable description of motif *index* (regions present, open/closed)."""
    pattern = motif_pattern(index)
    present = [name for name, filled in zip(REGION_NAMES, pattern) if filled]
    kind = "closed" if is_closed(pattern) else "open"
    return f"h-motif {index} ({kind}): non-empty regions {{{', '.join(present)}}}"
