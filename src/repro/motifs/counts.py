"""Containers for h-motif instance counts.

:class:`MotifCounts` wraps a length-26 vector indexed by motif id (1..26). It
is the common currency of the library: exact counters, samplers, null models,
significance and CP computations all exchange ``MotifCounts`` objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import MotifError
from repro.motifs.patterns import NUM_MOTIFS, closed_motif_indices, open_motif_indices


class MotifCounts:
    """A vector of counts (or estimates) for the 26 h-motifs.

    Values are stored as floats so the same container holds exact counts and
    rescaled unbiased estimates from the sampling algorithms.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Sequence[float] | None = None) -> None:
        if values is None:
            self._values = np.zeros(NUM_MOTIFS, dtype=float)
        else:
            array = np.asarray(list(values), dtype=float)
            if array.shape != (NUM_MOTIFS,):
                raise MotifError(
                    f"MotifCounts needs exactly {NUM_MOTIFS} values, got shape {array.shape}"
                )
            self._values = array.copy()

    # ----------------------------------------------------------- constructors
    @classmethod
    def zeros(cls) -> "MotifCounts":
        """A count vector of all zeros."""
        return cls()

    @classmethod
    def from_dict(cls, mapping: Mapping[int, float]) -> "MotifCounts":
        """Build from a ``{motif index: count}`` mapping; missing motifs are 0."""
        counts = cls()
        for index, value in mapping.items():
            counts[index] = value
        return counts

    @classmethod
    def mean(cls, many: Sequence["MotifCounts"]) -> "MotifCounts":
        """Element-wise mean of several count vectors (used for random averages)."""
        if not many:
            raise MotifError("cannot average an empty collection of MotifCounts")
        stacked = np.stack([counts.to_array() for counts in many])
        return cls(stacked.mean(axis=0))

    # ----------------------------------------------------------------- access
    def __getitem__(self, index: int) -> float:
        self._check_index(index)
        return float(self._values[index - 1])

    def __setitem__(self, index: int, value: float) -> None:
        self._check_index(index)
        self._values[index - 1] = float(value)

    def increment(self, index: int, amount: float = 1.0) -> None:
        """Add *amount* to the count of motif *index*."""
        self._check_index(index)
        self._values[index - 1] += amount

    def to_array(self) -> np.ndarray:
        """Copy of the underlying length-26 array (motif 1 at position 0)."""
        return self._values.copy()

    def to_dict(self) -> Dict[int, float]:
        """``{motif index: count}`` for all 26 motifs."""
        return {index: float(self._values[index - 1]) for index in range(1, NUM_MOTIFS + 1)}

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(motif index, count)`` pairs in index order."""
        for index in range(1, NUM_MOTIFS + 1):
            yield index, float(self._values[index - 1])

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: "MotifCounts") -> "MotifCounts":
        if not isinstance(other, MotifCounts):
            return NotImplemented
        return MotifCounts(self._values + other._values)

    def __sub__(self, other: "MotifCounts") -> "MotifCounts":
        if not isinstance(other, MotifCounts):
            return NotImplemented
        return MotifCounts(self._values - other._values)

    def scaled(self, factor: float) -> "MotifCounts":
        """A new vector with every count multiplied by *factor*."""
        return MotifCounts(self._values * float(factor))

    def scaled_per_motif(self, factors: Mapping[int, float]) -> "MotifCounts":
        """A new vector where motif *t* is multiplied by ``factors[t]`` (default 1)."""
        result = self._values.copy()
        for index, factor in factors.items():
            self._check_index(index)
            result[index - 1] *= float(factor)
        return MotifCounts(result)

    def rounded(self) -> "MotifCounts":
        """Counts rounded to the nearest integer (useful for exact counters)."""
        return MotifCounts(np.rint(self._values))

    # -------------------------------------------------------------- summaries
    def total(self) -> float:
        """Sum over all 26 motifs."""
        return float(self._values.sum())

    def fractions(self) -> Dict[int, float]:
        """``count / total`` per motif (all zeros if the total is zero)."""
        total = self.total()
        if total == 0:
            return {index: 0.0 for index in range(1, NUM_MOTIFS + 1)}
        return {
            index: float(self._values[index - 1] / total)
            for index in range(1, NUM_MOTIFS + 1)
        }

    def open_total(self) -> float:
        """Total count over the six open motifs."""
        return float(sum(self._values[index - 1] for index in open_motif_indices()))

    def closed_total(self) -> float:
        """Total count over the twenty closed motifs."""
        return float(sum(self._values[index - 1] for index in closed_motif_indices()))

    def open_fraction(self) -> float:
        """Fraction of instances whose motif is open (0.0 when empty)."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.open_total() / total

    def ranks(self) -> Dict[int, int]:
        """Rank of each motif by count (1 = most frequent; ties broken by index)."""
        order = sorted(
            range(1, NUM_MOTIFS + 1), key=lambda index: (-self._values[index - 1], index)
        )
        return {index: rank for rank, index in enumerate(order, start=1)}

    def relative_error(self, reference: "MotifCounts") -> float:
        """The paper's relative error ``Σ|M[t] - M̂[t]| / ΣM[t]`` w.r.t. *reference*."""
        reference_total = reference.to_array().sum()
        if reference_total == 0:
            raise MotifError("reference counts sum to zero; relative error undefined")
        return float(np.abs(reference.to_array() - self._values).sum() / reference_total)

    # ----------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MotifCounts):
            return NotImplemented
        return bool(np.array_equal(self._values, other._values))

    def __len__(self) -> int:
        return NUM_MOTIFS

    def __iter__(self) -> Iterator[float]:
        return iter(self._values.tolist())

    def __repr__(self) -> str:
        nonzero = {index: value for index, value in self.items() if value}
        return f"MotifCounts(total={self.total():g}, nonzero={len(nonzero)})"

    @staticmethod
    def _check_index(index: int) -> None:
        if not isinstance(index, (int, np.integer)) or isinstance(index, bool):
            raise TypeError(f"motif index must be an int, got {type(index).__name__}")
        if not 1 <= int(index) <= NUM_MOTIFS:
            raise MotifError(f"motif index must be in [1, {NUM_MOTIFS}], got {index}")


def aggregate_counts(batches: Iterable[MotifCounts]) -> MotifCounts:
    """Sum a collection of count vectors (used when merging worker results)."""
    result = MotifCounts.zeros()
    for batch in batches:
        result = result + batch
    return result
