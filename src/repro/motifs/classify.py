"""Classifying an h-motif instance — the paper's ``h({e_i, e_j, e_k})``.

Given three connected hyperedges, the classifier determines which of the 26
h-motifs describes their connectivity pattern. Following Lemma 2, the seven
region cardinalities are derived from the three hyperedge sizes, the three
pairwise intersection sizes and the triple intersection size using
inclusion–exclusion, so the only set scan needed is over the *smallest*
hyperedge (to compute the triple intersection), giving
``O(min(|e_i|, |e_j|, |e_k|))`` time when pairwise overlaps are available from
the projected graph.
"""

from __future__ import annotations

from functools import lru_cache
from typing import AbstractSet, Optional, Tuple

import numpy as np

from repro.exceptions import DuplicateHyperedgeError, MotifError, NotConnectedError
from repro.motifs.patterns import Pattern, motif_index, pattern_from_bits

SetLike = AbstractSet

#: Sentinels used in :func:`motif_lookup_table` for invalid emptiness patterns,
#: mirroring the check order of :func:`_classify_pattern`.
LOOKUP_EMPTY_EDGE = -1
LOOKUP_DUPLICATE = -2
LOOKUP_DISCONNECTED = -3


@lru_cache(maxsize=1)
def motif_lookup_table() -> np.ndarray:
    """Pattern-code → motif-index lookup table for batched classification.

    Entry ``c`` (for ``c`` in ``[0, 128)``) holds the 1-based motif index of
    the emptiness pattern whose :func:`repro.motifs.patterns.pattern_to_int`
    encoding is ``c``, or a negative sentinel (:data:`LOOKUP_EMPTY_EDGE`,
    :data:`LOOKUP_DUPLICATE`, :data:`LOOKUP_DISCONNECTED`) matching the first
    check :func:`_classify_pattern` would fail. The table folds the whole
    canonicalization + validation pipeline into one int8 array so the fast
    kernels classify entire batches with a single fancy index.
    """
    from repro.motifs import patterns as pattern_module

    table = np.empty(128, dtype=np.int8)
    for code in range(128):
        pattern = pattern_module.pattern_from_int(code)
        if any(
            pattern_module.edge_is_empty(pattern, position) for position in range(3)
        ):
            table[code] = LOOKUP_EMPTY_EDGE
        elif any(
            pattern_module.edges_are_duplicated(pattern, first, second)
            for first, second in ((0, 1), (1, 2), (0, 2))
        ):
            table[code] = LOOKUP_DUPLICATE
        elif not pattern_module.is_connected(pattern):
            table[code] = LOOKUP_DISCONNECTED
        else:
            table[code] = motif_index(pattern)
    table.setflags(write=False)
    return table


def region_cardinalities_from_sizes(
    size_i: int,
    size_j: int,
    size_k: int,
    overlap_ij: int,
    overlap_jk: int,
    overlap_ki: int,
    overlap_ijk: int,
) -> Tuple[int, int, int, int, int, int, int]:
    """Cardinalities of the seven Venn regions from set and intersection sizes.

    Uses the inclusion–exclusion identities listed in the proof of Lemma 2.
    Raises :class:`MotifError` if the inputs are inconsistent (some region
    would have negative size).
    """
    only_i = size_i - overlap_ij - overlap_ki + overlap_ijk
    only_j = size_j - overlap_ij - overlap_jk + overlap_ijk
    only_k = size_k - overlap_ki - overlap_jk + overlap_ijk
    pair_ij = overlap_ij - overlap_ijk
    pair_jk = overlap_jk - overlap_ijk
    pair_ki = overlap_ki - overlap_ijk
    regions = (only_i, only_j, only_k, pair_ij, pair_jk, pair_ki, overlap_ijk)
    if any(value < 0 for value in regions):
        raise MotifError(
            "inconsistent cardinalities: "
            f"sizes=({size_i}, {size_j}, {size_k}), "
            f"pairwise=({overlap_ij}, {overlap_jk}, {overlap_ki}), "
            f"triple={overlap_ijk} produce negative region sizes {regions}"
        )
    return regions


def pattern_from_cardinalities(
    size_i: int,
    size_j: int,
    size_k: int,
    overlap_ij: int,
    overlap_jk: int,
    overlap_ki: int,
    overlap_ijk: int,
) -> Pattern:
    """Emptiness pattern of the seven regions given set and intersection sizes."""
    regions = region_cardinalities_from_sizes(
        size_i, size_j, size_k, overlap_ij, overlap_jk, overlap_ki, overlap_ijk
    )
    return pattern_from_bits([value > 0 for value in regions])


def classify_from_cardinalities(
    size_i: int,
    size_j: int,
    size_k: int,
    overlap_ij: int,
    overlap_jk: int,
    overlap_ki: int,
    overlap_ijk: int,
) -> int:
    """Motif index (1..26) from set and intersection sizes.

    Raises
    ------
    NotConnectedError
        If the three hyperedges are not connected.
    DuplicateHyperedgeError
        If two of the hyperedges are identical.
    """
    pattern = pattern_from_cardinalities(
        size_i, size_j, size_k, overlap_ij, overlap_jk, overlap_ki, overlap_ijk
    )
    return _classify_pattern(pattern)


def triple_overlap_size(
    edge_i: SetLike, edge_j: SetLike, edge_k: SetLike
) -> int:
    """``|e_i ∩ e_j ∩ e_k|`` computed by scanning the smallest hyperedge."""
    smallest, second, third = sorted((edge_i, edge_j, edge_k), key=len)
    return sum(1 for node in smallest if node in second and node in third)


def classify_instance(
    edge_i: SetLike,
    edge_j: SetLike,
    edge_k: SetLike,
    overlap_ij: Optional[int] = None,
    overlap_jk: Optional[int] = None,
    overlap_ki: Optional[int] = None,
) -> int:
    """Motif index (1..26) of the instance ``{edge_i, edge_j, edge_k}``.

    Pairwise overlap sizes may be supplied (they are stored on the projected
    graph as hyperwedge weights ``ω``); any that are omitted are computed from
    the sets directly.

    Raises
    ------
    NotConnectedError
        If the three hyperedges are not connected.
    DuplicateHyperedgeError
        If two of the hyperedges are equal as sets.
    """
    if overlap_ij is None:
        overlap_ij = len(edge_i & edge_j) if isinstance(edge_i, (set, frozenset)) else len(set(edge_i) & set(edge_j))
    if overlap_jk is None:
        overlap_jk = len(edge_j & edge_k) if isinstance(edge_j, (set, frozenset)) else len(set(edge_j) & set(edge_k))
    if overlap_ki is None:
        overlap_ki = len(edge_k & edge_i) if isinstance(edge_k, (set, frozenset)) else len(set(edge_k) & set(edge_i))
    overlap_ijk = triple_overlap_size(edge_i, edge_j, edge_k)
    pattern = pattern_from_cardinalities(
        len(edge_i),
        len(edge_j),
        len(edge_k),
        overlap_ij,
        overlap_jk,
        overlap_ki,
        overlap_ijk,
    )
    return _classify_pattern(pattern)


def _classify_pattern(pattern: Pattern) -> int:
    from repro.motifs import patterns as pattern_module

    if any(pattern_module.edge_is_empty(pattern, position) for position in range(3)):
        raise MotifError("an h-motif instance cannot contain an empty hyperedge")
    for first, second in ((0, 1), (1, 2), (0, 2)):
        if pattern_module.edges_are_duplicated(pattern, first, second):
            raise DuplicateHyperedgeError(
                "h-motif instances must consist of three distinct hyperedges"
            )
    if not pattern_module.is_connected(pattern):
        raise NotConnectedError(
            "the three hyperedges are not connected and do not form an h-motif instance"
        )
    return motif_index(pattern)
