"""repro — a reproduction of "Hypergraph Motifs: Concepts, Algorithms, and Discoveries".

The package implements hypergraph motifs (h-motifs), the MoCHy family of
counting algorithms (exact, hyperedge-sampling, hyperwedge-sampling, parallel
and memory-budgeted variants), the Chung–Lu null model, significance /
characteristic profiles, and the paper's downstream analyses (real-vs-random
comparison, domain fingerprinting, evolution study, hyperedge prediction) —
together with the substrates they need: a hypergraph container with I/O, a
projected-graph builder, synthetic dataset generators and from-scratch
classifiers.

Quickstart
----------
The unified API (:mod:`repro.api`) binds a :class:`MotifEngine` to one
hypergraph; the engine caches the projection and memoized results across
workflows:

>>> from repro import CountSpec, MotifEngine, ProfileSpec, generate_coauthorship
>>> hypergraph = generate_coauthorship(num_authors=120, num_papers=80, seed=0)
>>> engine = MotifEngine(hypergraph)
>>> counts = engine.count(CountSpec(algorithm="mochy-e")).counts
>>> profile = engine.profile(ProfileSpec(num_random=3, seed=0)).profile

The pre-engine free functions (``count_motifs``, ``characteristic_profile``,
...) remain as thin shims over the engine.
"""

from repro.exceptions import ReproError
from repro.hypergraph import (
    BipartiteIncidenceGraph,
    Hypergraph,
    TemporalHypergraph,
    summarize,
)
from repro.projection import LazyProjection, ProjectedGraph, project
from repro.motifs import (
    NUM_MOTIFS,
    MotifCounts,
    classify_instance,
    motif_is_closed,
    motif_is_open,
    motif_pattern,
)
from repro.counting import (
    count_approx_edge_sampling,
    count_approx_wedge_sampling,
    count_exact,
    count_motifs,
    enumerate_instances,
    run_counting,
)
from repro.randomization import chung_lu_hypergraph, random_motif_counts, randomize
from repro.profile import (
    CharacteristicProfile,
    characteristic_profile,
    profile_correlation,
    similarity_matrix,
)
from repro.generators import (
    build_corpus,
    generate_coauthorship,
    generate_contact,
    generate_email,
    generate_tags,
    generate_temporal_coauthorship,
    generate_threads,
    generate_uniform_random,
)
from repro.analysis import (
    analyze_domains,
    motif_fraction_evolution,
    real_vs_random,
)
from repro.prediction import run_prediction_experiment
from repro.api import (
    CompareResult,
    CompareSpec,
    CountResult,
    CountSpec,
    DatasetRegistry,
    MotifEngine,
    PredictResult,
    PredictSpec,
    ProfileResult,
    ProfileSpec,
    load,
    register_dataset,
)
from repro.store import ArtifactStore, default_store
from repro.store.serve import EngineServer, ServeRequest

__version__ = "1.2.0"

__all__ = [
    "ReproError",
    "Hypergraph",
    "TemporalHypergraph",
    "BipartiteIncidenceGraph",
    "summarize",
    "ProjectedGraph",
    "LazyProjection",
    "project",
    "NUM_MOTIFS",
    "MotifCounts",
    "classify_instance",
    "motif_pattern",
    "motif_is_open",
    "motif_is_closed",
    "count_exact",
    "count_approx_edge_sampling",
    "count_approx_wedge_sampling",
    "count_motifs",
    "run_counting",
    "enumerate_instances",
    "chung_lu_hypergraph",
    "randomize",
    "random_motif_counts",
    "CharacteristicProfile",
    "characteristic_profile",
    "profile_correlation",
    "similarity_matrix",
    "generate_coauthorship",
    "generate_contact",
    "generate_email",
    "generate_tags",
    "generate_threads",
    "generate_uniform_random",
    "generate_temporal_coauthorship",
    "build_corpus",
    "analyze_domains",
    "real_vs_random",
    "motif_fraction_evolution",
    "run_prediction_experiment",
    "MotifEngine",
    "CountSpec",
    "ProfileSpec",
    "CompareSpec",
    "PredictSpec",
    "CountResult",
    "ProfileResult",
    "CompareResult",
    "PredictResult",
    "DatasetRegistry",
    "load",
    "register_dataset",
    "ArtifactStore",
    "default_store",
    "EngineServer",
    "ServeRequest",
    "__version__",
]
