"""Named-dataset registry: one ``load()`` for files and synthetic corpora.

Previously every entrypoint chose between :mod:`repro.hypergraph.io` readers
and the :mod:`repro.generators.corpus` factories with its own conventions.
The registry unifies them: :func:`load` accepts either the name of a
registered dataset (the 11 synthetic Table-2 stand-ins are pre-registered) or
a path to a hypergraph file (``.json`` documents or the plain
one-hyperedge-per-line format). New datasets can be registered at runtime,
which is how site-specific corpora plug into the engine and CLI.
"""

from __future__ import annotations

import difflib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.exceptions import DatasetError
from repro.generators.corpus import dataset_specs, generate_dataset
from repro.hypergraph import io as hio
from repro.hypergraph.builders import TemporalHypergraph
from repro.hypergraph.hypergraph import Hypergraph

Source = Union[str, Path]
LoadedDataset = Union[Hypergraph, TemporalHypergraph]
DatasetFactory = Callable[[float], LoadedDataset]

#: The registered synthetic temporal dataset (an evolving co-authorship
#: hypergraph), so evolution chains can be requested by name — over the
#: wire (``POST /v1/evolve``), from the CLI (``repro-mochy evolve``) and in
#: tests — exactly like the static Table-2 stand-ins.
TEMPORAL_DATASET_NAME = "coauth-temporal-like"


class DatasetRegistry:
    """A name → factory mapping with file-loading fallback."""

    def __init__(self) -> None:
        self._factories: Dict[str, DatasetFactory] = {}
        self._domains: Dict[str, Optional[str]] = {}

    def register(
        self,
        name: str,
        factory: DatasetFactory,
        domain: Optional[str] = None,
        overwrite: bool = False,
    ) -> None:
        """Register *factory* (called as ``factory(scale)``) under *name*."""
        if not overwrite and name in self._factories:
            raise DatasetError(f"dataset {name!r} is already registered")
        self._factories[name] = factory
        self._domains[name] = domain

    def names(self) -> List[str]:
        """Registered dataset names, sorted."""
        return sorted(self._factories)

    def domain(self, name: str) -> Optional[str]:
        """Domain label of a registered dataset (``None`` when unknown)."""
        if name not in self._factories:
            raise DatasetError(self._unknown_name_message(name, kind="dataset"))
        return self._domains[name]

    def _unknown_name_message(self, name: str, kind: str) -> str:
        """A helpful unknown-name error: nearest match plus the full roster."""
        names = self.names()
        message = f"unknown {kind} {name!r}"
        suggestions = difflib.get_close_matches(name, names, n=1, cutoff=0.5)
        if suggestions:
            message += f"; did you mean {suggestions[0]!r}?"
        if names:
            message += f" (registered datasets: {', '.join(names)})"
        else:
            message += " (no datasets are registered)"
        return message

    def load(self, source: Source, scale: float = 1.0) -> LoadedDataset:
        """Load a hypergraph from a registered name or a file path.

        Registered names win over paths; otherwise ``.json`` files go through
        :func:`repro.hypergraph.io.read_json` and anything else through
        :func:`repro.hypergraph.io.read_plain` — unless a ``<stem>-times.txt``
        timestamp sidecar sits next to the file, in which case the pair loads
        as a :class:`~repro.hypergraph.TemporalHypergraph` (via
        :func:`repro.hypergraph.io.read_plain_temporal`), so temporal sources
        travel by path exactly like static ones.
        """
        key = str(source)
        if key in self._factories:
            return self._factories[key](scale)
        path = Path(source)
        if path.is_file():
            if scale != 1.0:
                raise DatasetError(
                    f"scale is only supported for registered datasets; "
                    f"{key!r} is a file"
                )
            if path.suffix == ".json":
                return hio.read_json(path)
            times_path = path.with_name(f"{path.stem}-times.txt")
            if times_path.is_file():
                return hio.read_plain_temporal(path, times_path)
            return hio.read_plain(path)
        raise DatasetError(
            self._unknown_name_message(key, kind="file or registered dataset")
        )

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


def _corpus_factory(name: str) -> DatasetFactory:
    def factory(scale: float = 1.0) -> Hypergraph:
        return generate_dataset(name, scale=scale)

    return factory


def _temporal_coauthorship_factory(scale: float = 1.0) -> TemporalHypergraph:
    # Deterministic (fixed seed) so the content fingerprints — and with them
    # warm lineage chains in a shared artifact store — agree across processes.
    from repro.generators.temporal import generate_temporal_coauthorship

    return generate_temporal_coauthorship(
        num_years=max(2, round(6 * scale)),
        initial_authors=max(20, round(80 * scale)),
        initial_papers=max(10, round(45 * scale)),
        seed=0,
        name=TEMPORAL_DATASET_NAME,
    )


def _build_default_registry() -> DatasetRegistry:
    registry = DatasetRegistry()
    for spec in dataset_specs():
        registry.register(spec.name, _corpus_factory(spec.name), domain=spec.domain)
    registry.register(
        TEMPORAL_DATASET_NAME, _temporal_coauthorship_factory, domain="coauthorship"
    )
    return registry


#: The process-wide default registry, pre-populated with the synthetic corpus.
DEFAULT_REGISTRY = _build_default_registry()


def load(source: Source, scale: float = 1.0) -> Hypergraph:
    """Load from the default registry (see :meth:`DatasetRegistry.load`)."""
    return DEFAULT_REGISTRY.load(source, scale=scale)


def register_dataset(
    name: str,
    factory: DatasetFactory,
    domain: Optional[str] = None,
    overwrite: bool = False,
) -> None:
    """Register a dataset factory in the default registry."""
    DEFAULT_REGISTRY.register(name, factory, domain=domain, overwrite=overwrite)


def dataset_names() -> List[str]:
    """Names registered in the default registry."""
    return DEFAULT_REGISTRY.names()
