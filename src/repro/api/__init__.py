"""repro.api — the unified public API of the reproduction.

:class:`MotifEngine` is the front door: bind it to one hypergraph (by object,
registered dataset name or file path) and run the paper's workflows —
``count()``, ``profile()``, ``compare()``, ``predict()``, ``evolve()``,
``variance()`` — with typed spec objects. The engine builds the projection
once, caches it together with the hyperwedge population, and memoizes
deterministic results, so workflows on the same dataset share work instead of
recomputing it.

>>> from repro.api import CountSpec, MotifEngine, ProfileSpec
>>> engine = MotifEngine.load("email-enron-like")
>>> exact = engine.count()                                     # builds the projection
>>> estimate = engine.count(CountSpec(algorithm="mochy-a+", sampling_ratio=0.2, seed=0))
>>> profile = engine.profile(ProfileSpec(num_random=3, seed=0))  # projection reused
>>> print(profile.to_json())  # doctest: +SKIP

Temporal chains are one spec too: ``engine.evolve(EvolveSpec())`` counts
every snapshot of the bound temporal hypergraph, incrementally when exact.
"""

from repro.api.config import (
    EVOLVE_CUMULATIVE,
    EVOLVE_MODES,
    EVOLVE_SNAPSHOT,
    PROJECTION_FULL,
    PROJECTION_LAZY,
    PROJECTIONS,
    SPEC_TYPES,
    SPEC_VERSION,
    CompareSpec,
    CountSpec,
    EvolveSpec,
    KernelConfig,
    PredictSpec,
    ProfileSpec,
    VarianceSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.api.engine import MotifEngine
from repro.api.registry import (
    DEFAULT_REGISTRY,
    DatasetRegistry,
    dataset_names,
    load,
    register_dataset,
)
from repro.api.results import (
    SNAPSHOT_MODE_CACHED,
    SNAPSHOT_MODE_FULL,
    SNAPSHOT_MODE_INCREMENTAL,
    CompareResult,
    CountResult,
    EngineResult,
    EvolutionResult,
    EvolutionSnapshot,
    PredictResult,
    ProfileResult,
    VarianceResult,
)

__all__ = [
    "MotifEngine",
    "CountSpec",
    "ProfileSpec",
    "CompareSpec",
    "PredictSpec",
    "EvolveSpec",
    "VarianceSpec",
    "KernelConfig",
    "PROJECTION_FULL",
    "PROJECTION_LAZY",
    "PROJECTIONS",
    "SPEC_TYPES",
    "SPEC_VERSION",
    "EVOLVE_CUMULATIVE",
    "EVOLVE_SNAPSHOT",
    "EVOLVE_MODES",
    "spec_to_dict",
    "spec_from_dict",
    "EngineResult",
    "CountResult",
    "ProfileResult",
    "CompareResult",
    "PredictResult",
    "EvolutionResult",
    "EvolutionSnapshot",
    "VarianceResult",
    "SNAPSHOT_MODE_FULL",
    "SNAPSHOT_MODE_INCREMENTAL",
    "SNAPSHOT_MODE_CACHED",
    "DatasetRegistry",
    "DEFAULT_REGISTRY",
    "load",
    "register_dataset",
    "dataset_names",
]
