"""repro.api — the unified public API of the reproduction.

:class:`MotifEngine` is the front door: bind it to one hypergraph (by object,
registered dataset name or file path) and run the paper's workflows —
``count()``, ``profile()``, ``compare()``, ``predict()`` — with typed spec
objects. The engine builds the projection once, caches it together with the
hyperwedge population, and memoizes deterministic results, so workflows on the
same dataset share work instead of recomputing it.

>>> from repro.api import CountSpec, MotifEngine, ProfileSpec
>>> engine = MotifEngine.load("email-enron-like")
>>> exact = engine.count()                                     # builds the projection
>>> estimate = engine.count(CountSpec(algorithm="mochy-a+", sampling_ratio=0.2, seed=0))
>>> profile = engine.profile(ProfileSpec(num_random=3, seed=0))  # projection reused
>>> print(profile.to_json())  # doctest: +SKIP
"""

from repro.api.config import (
    PROJECTION_FULL,
    PROJECTION_LAZY,
    PROJECTIONS,
    SPEC_TYPES,
    CompareSpec,
    CountSpec,
    KernelConfig,
    PredictSpec,
    ProfileSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.api.engine import MotifEngine
from repro.api.registry import (
    DEFAULT_REGISTRY,
    DatasetRegistry,
    dataset_names,
    load,
    register_dataset,
)
from repro.api.results import (
    CompareResult,
    CountResult,
    EngineResult,
    PredictResult,
    ProfileResult,
)

__all__ = [
    "MotifEngine",
    "CountSpec",
    "ProfileSpec",
    "CompareSpec",
    "PredictSpec",
    "KernelConfig",
    "PROJECTION_FULL",
    "PROJECTION_LAZY",
    "PROJECTIONS",
    "SPEC_TYPES",
    "spec_to_dict",
    "spec_from_dict",
    "EngineResult",
    "CountResult",
    "ProfileResult",
    "CompareResult",
    "PredictResult",
    "DatasetRegistry",
    "DEFAULT_REGISTRY",
    "load",
    "register_dataset",
    "dataset_names",
]
