"""Typed, machine-readable results returned by the :class:`~repro.api.MotifEngine`.

Each workflow returns one result object carrying the payload (counts, profile,
comparison rows, prediction scores) together with the run's metadata: the
resolved algorithm, sample sizes, wall-clock timings and whether the engine's
cached projection was reused. ``to_dict()`` gives a plain-JSON-types mapping
and ``to_json()`` its serialization, which is what the CLI's ``--json`` flag
emits for scripting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.analysis.real_vs_random import RealVsRandomReport
from repro.motifs.counts import MotifCounts
from repro.prediction.task import PredictionExperimentResult
from repro.profile.characteristic_profile import CharacteristicProfile

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.analysis.evolution import EvolutionSeries
    from repro.counting.exact import MotifInstance

#: Cache-hit provenance values carried by results: ``"engine"`` is the
#: engine's own per-spec memo, ``"memory"``/``"disk"`` are the artifact
#: store's tiers (:mod:`repro.store`), ``None`` means freshly computed.
CACHE_TIER_ENGINE = "engine"
CACHE_TIER_MEMORY = "memory"
CACHE_TIER_DISK = "disk"


class EngineResult:
    """Base class for engine results: dict/JSON serialization.

    ``kind`` is the result's wire-format tag — the ``"kind"`` field of
    :meth:`to_dict` — so dispatching on a result's type never requires
    serializing it first.
    """

    kind: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready mapping of the result."""
        raise NotImplementedError

    def to_json(self, indent: Optional[int] = None) -> str:
        """The result serialized as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)


@dataclass(frozen=True)
class CountResult(EngineResult):
    """Outcome of :meth:`~repro.api.MotifEngine.count`.

    ``projection_seconds`` is the time spent building the projection *during
    this call* — zero when the engine served it from its cache
    (``projection_cached`` is then true) or when counting over a lazy
    projection (whose neighborhoods are built inside the counting phase).
    A cached result (``from_cache`` true) ran no counting at all, so both
    timings are zero; ``cache_tier`` then records where the hit came from —
    ``"engine"`` (the engine's in-process memo), ``"memory"`` or ``"disk"``
    (the artifact store's tiers).
    """

    kind = "count"

    dataset: str
    algorithm: str
    counts: MotifCounts
    num_samples: Optional[int]
    projection_seconds: float
    counting_seconds: float
    projection_cached: bool = False
    projection_mode: str = "full"
    from_cache: bool = False
    cache_tier: Optional[str] = None
    instances: Optional[Tuple["MotifInstance", ...]] = None

    @property
    def total_seconds(self) -> float:
        """Projection plus counting time of this call."""
        return self.projection_seconds + self.counting_seconds

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "kind": self.kind,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "num_samples": self.num_samples,
            "projection": self.projection_mode,
            "projection_cached": self.projection_cached,
            "projection_seconds": self.projection_seconds,
            "counting_seconds": self.counting_seconds,
            "from_cache": self.from_cache,
            "cache_tier": self.cache_tier,
            "counts": {str(motif): value for motif, value in self.counts.items()},
            "total": self.counts.total(),
        }
        if self.instances is not None:
            payload["instances"] = [
                {"hyperedges": list(instance.hyperedges), "motif": instance.motif}
                for instance in self.instances
            ]
        return payload


@dataclass(frozen=True)
class ProfileResult(EngineResult):
    """Outcome of :meth:`~repro.api.MotifEngine.profile`.

    ``from_cache`` is true when the whole profile artifact was served from
    the artifact store (``cache_tier`` names the tier); a profile merely
    *assembled* from cached counts reports false, since the significance
    computation still ran.
    """

    kind = "profile"

    dataset: str
    profile: CharacteristicProfile
    algorithm: str
    num_random: int
    null_model: str
    seconds: float
    from_cache: bool = False
    cache_tier: Optional[str] = None

    @property
    def values(self):
        """The L2-normalized CP vector (length 26)."""
        return self.profile.values

    @property
    def significances(self):
        """The raw significance vector (length 26)."""
        return self.profile.significances

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "num_random": self.num_random,
            "null_model": self.null_model,
            "seconds": self.seconds,
            "from_cache": self.from_cache,
            "cache_tier": self.cache_tier,
            "significances": [float(value) for value in self.profile.significances],
            "values": [float(value) for value in self.profile.values],
            "real_counts": {
                str(motif): value for motif, value in self.profile.real_counts.items()
            },
            "random_counts": {
                str(motif): value for motif, value in self.profile.random_counts.items()
            },
        }


@dataclass(frozen=True)
class CompareResult(EngineResult):
    """Outcome of :meth:`~repro.api.MotifEngine.compare` (Table-3 style rows).

    The comparison rows themselves are always computed in-call (they are
    cheap); ``from_cache`` is true when *both* heavy ingredients — the real
    counts and the averaged null-model counts — were served from a cache,
    with ``cache_tier`` naming where the null counts came from.
    """

    kind = "compare"

    dataset: str
    report: RealVsRandomReport
    algorithm: str
    num_random: int
    null_model: str
    seconds: float
    from_cache: bool = False
    cache_tier: Optional[str] = None

    @property
    def rows(self):
        """The 26 per-motif comparison rows."""
        return self.report.rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "num_random": self.num_random,
            "null_model": self.null_model,
            "seconds": self.seconds,
            "from_cache": self.from_cache,
            "cache_tier": self.cache_tier,
            "mean_rank_difference": self.report.mean_rank_difference(),
            "rows": [
                {
                    "motif": row.motif,
                    "real_count": row.real_count,
                    "random_count": row.random_count,
                    "real_rank": row.real_rank,
                    "random_rank": row.random_rank,
                    "rank_difference": row.rank_difference,
                    "relative_count": row.relative_count,
                }
                for row in self.report.rows
            ],
        }


@dataclass(frozen=True)
class PredictResult(EngineResult):
    """Outcome of :meth:`~repro.api.MotifEngine.predict` (Table-4 style grid).

    ``from_cache`` is true when the whole score grid was served from the
    artifact store — possible only for integer-seeded runs with the default
    classifier bank, which replay deterministically; ``cache_tier`` then
    names the tier the hit came from.
    """

    kind = "predict"

    dataset: str
    result: PredictionExperimentResult
    context_window: Tuple[int, int]
    test_window: Tuple[int, int]
    seconds: float
    from_cache: bool = False
    cache_tier: Optional[str] = None

    def as_rows(self) -> List[Tuple[str, str, float, float]]:
        """Rows of (classifier, feature set, accuracy, AUC)."""
        return self.result.as_rows()

    def mean_metric(self, feature_set: str, metric: str = "auc") -> float:
        """Average of a metric over classifiers, for one feature set."""
        return self.result.mean_metric(feature_set, metric)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "context_window": list(self.context_window),
            "test_window": list(self.test_window),
            "seconds": self.seconds,
            "from_cache": self.from_cache,
            "cache_tier": self.cache_tier,
            "scores": [
                {
                    "classifier": classifier,
                    "feature_set": feature_set,
                    "accuracy": accuracy,
                    "auc": auc,
                }
                for classifier, feature_set, accuracy, auc in self.result.as_rows()
            ],
        }


#: How one snapshot of an evolution chain was served.
SNAPSHOT_MODE_FULL = "full"
SNAPSHOT_MODE_INCREMENTAL = "incremental"
SNAPSHOT_MODE_CACHED = "cached"


@dataclass(frozen=True)
class EvolutionSnapshot:
    """One snapshot of an evolution chain, as streamed by ``/v1/evolve``.

    ``mode`` records how the counts were produced: ``"cached"`` (served
    from a lineage-keyed store artifact, ``cache_tier`` names the tier),
    ``"incremental"`` (delta engine over the previous snapshot) or
    ``"full"`` (from-scratch count). ``fingerprint`` is the snapshot's
    serving key — the lineage fingerprint along a cumulative chain, the
    content fingerprint otherwise. ``delta`` carries the delta engine's
    work stats (added edges/nodes, invalidated anchors) when incremental.
    """

    index: int
    label: str
    fingerprint: str
    num_hyperedges: int
    counts: MotifCounts
    mode: str
    seconds: float
    timestamp: Optional[int] = None
    cache_tier: Optional[str] = None
    delta: Optional[Dict[str, int]] = None
    profile_values: Optional[Tuple[float, ...]] = None

    def open_fraction(self) -> float:
        """Fraction of this snapshot's instances whose motif is open."""
        return self.counts.open_fraction()

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "index": self.index,
            "label": self.label,
            "timestamp": self.timestamp,
            "fingerprint": self.fingerprint,
            "num_hyperedges": self.num_hyperedges,
            "mode": self.mode,
            "cache_tier": self.cache_tier,
            "seconds": self.seconds,
            "counts": {str(motif): value for motif, value in self.counts.items()},
            "fractions": {
                str(motif): value
                for motif, value in self.counts.fractions().items()
            },
            "open_fraction": self.counts.open_fraction(),
            "total": self.counts.total(),
        }
        if self.delta is not None:
            payload["delta"] = dict(self.delta)
        if self.profile_values is not None:
            payload["profile_values"] = [float(v) for v in self.profile_values]
        return payload


@dataclass(frozen=True)
class EvolutionResult(EngineResult):
    """Outcome of :meth:`~repro.api.MotifEngine.evolve`: the whole chain.

    ``snapshots`` are in chain order; per-snapshot provenance lives on each
    :class:`EvolutionSnapshot`. ``seconds`` is the wall-clock of the whole
    chain (cached snapshots included).
    """

    kind = "evolve"

    dataset: str
    mode: str
    algorithm: str
    snapshots: Tuple[EvolutionSnapshot, ...]
    seconds: float
    incremental: bool = True
    num_samples: Optional[int] = None

    def snapshot_modes(self) -> Dict[str, int]:
        """How many snapshots were served per mode (cached/incremental/full)."""
        tally: Dict[str, int] = {}
        for snapshot in self.snapshots:
            tally[snapshot.mode] = tally.get(snapshot.mode, 0) + 1
        return tally

    def series(self) -> "EvolutionSeries":
        """The chain as a legacy :class:`~repro.analysis.EvolutionSeries`.

        Timestamps fall back to the snapshot index along explicit-delta
        chains (which have no timeline of their own).
        """
        from repro.analysis.evolution import EvolutionPoint, EvolutionSeries

        points = [
            EvolutionPoint(
                timestamp=(
                    snapshot.timestamp
                    if snapshot.timestamp is not None
                    else snapshot.index
                ),
                counts=snapshot.counts,
                fractions=snapshot.counts.fractions(),
                open_fraction=snapshot.counts.open_fraction(),
            )
            for snapshot in self.snapshots
        ]
        return EvolutionSeries(name=self.dataset, points=points)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "mode": self.mode,
            "algorithm": self.algorithm,
            "num_samples": self.num_samples,
            "incremental": self.incremental,
            "seconds": self.seconds,
            "num_snapshots": len(self.snapshots),
            "snapshot_modes": self.snapshot_modes(),
            "snapshots": [snapshot.to_dict() for snapshot in self.snapshots],
        }


@dataclass(frozen=True)
class VarianceResult(EngineResult):
    """Outcome of :meth:`~repro.api.MotifEngine.variance` (Theorems 3-5).

    ``rows`` hold, per motif, the exact estimator variances of MoCHy-A
    (edge sampling) and MoCHy-A+ (wedge sampling) at the spec's common
    sampling ratio of their respective population sizes.
    """

    kind = "variance"

    dataset: str
    sampling_ratio: float
    num_hyperedges: int
    num_hyperwedges: int
    rows: Tuple[Tuple[int, float, float], ...] = field(default_factory=tuple)
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "sampling_ratio": self.sampling_ratio,
            "num_hyperedges": self.num_hyperedges,
            "num_hyperwedges": self.num_hyperwedges,
            "seconds": self.seconds,
            "rows": [
                {
                    "motif": motif,
                    "edge_sampling_variance": edge_variance,
                    "wedge_sampling_variance": wedge_variance,
                }
                for motif, edge_variance, wedge_variance in self.rows
            ],
        }
