"""The :class:`MotifEngine` — one front door to the paper's workflows.

An engine is bound to one hypergraph and lazily builds and **caches** the
artifacts every workflow needs: the projected graph (Algorithm 1), the CSR
views (cached on the hypergraph itself), and the hyperwedge population used
by MoCHy-A+. Running ``count()`` then ``profile()`` then ``compare()`` on the
same engine therefore projects exactly once, where the legacy free functions
re-projected per call. Deterministic results (exact counts, seeded sampling
runs) are additionally memoized per spec, so a profile reuses the counts of a
previous ``count()`` with the same configuration.

The engine is the single place where backend selection lives: a
:class:`~repro.api.CountSpec` chooses the algorithm, serial or parallel
drivers, and a ``"full"`` (materialized, cached) or ``"lazy"``
(memory-budgeted, Section 3.4) projection. The legacy entrypoints
(:func:`repro.counting.count_motifs`, :func:`repro.profile.characteristic_profile`,
:func:`repro.analysis.real_vs_random`,
:func:`repro.prediction.run_prediction_experiment`) are thin shims over an
engine and return bit-identical results.

Beyond its private memo, an engine can be handed an
:class:`~repro.store.ArtifactStore` (``MotifEngine(hypergraph, store=...)``,
or the ``REPRO_STORE_DIR``-backed process default): deterministic artifacts —
the full projection, exact/seeded counts, null-model averages and profiles —
are then looked up in the store before computing and persisted after, keyed
by the hypergraph's content fingerprint. Engines sharing a store share work
across instances, and a persistent store directory makes cold runs in new
processes warm-start with bit-identical results.
"""

from __future__ import annotations

import bisect
import copy
from dataclasses import dataclass, replace
from numbers import Integral
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.api.config import (
    EVOLVE_CUMULATIVE,
    EVOLVE_SNAPSHOT,
    PROJECTION_LAZY,
    CompareSpec,
    CountSpec,
    EvolveSpec,
    KernelConfig,
    PredictSpec,
    ProfileSpec,
    VarianceSpec,
)
from repro.api.registry import DEFAULT_REGISTRY, DatasetRegistry, Source
from repro.api.results import (
    CACHE_TIER_ENGINE,
    SNAPSHOT_MODE_CACHED,
    SNAPSHOT_MODE_FULL,
    SNAPSHOT_MODE_INCREMENTAL,
    CompareResult,
    CountResult,
    EvolutionResult,
    EvolutionSnapshot,
    PredictResult,
    ProfileResult,
    VarianceResult,
)
from repro.analysis.real_vs_random import compare_counts
from repro.counting.edge_sampling import count_approx_edge_sampling
from repro.counting.exact import count_exact, enumerate_instances
from repro.counting.parallel import (
    count_approx_edge_sampling_parallel,
    count_approx_wedge_sampling_parallel,
    count_exact_parallel,
)
from repro.counting.runner import (
    ALGORITHM_EDGE_SAMPLING,
    ALGORITHM_WEDGE_SAMPLING,
)
from repro.counting.variance import compute_overlap_statistics, variance_comparison
from repro.counting.wedge_sampling import count_approx_wedge_sampling
from repro.exceptions import SpecError
from repro.fastcore.backend import use_backend
from repro.fastcore.delta import DeltaState, apply_delta, initial_state
from repro.hypergraph.builders import TemporalHypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.ml import default_classifiers
from repro.ml.base import BinaryClassifier
from repro.motifs.counts import MotifCounts
from repro.obs import metrics as obs_metrics
from repro.prediction.metrics import accuracy, roc_auc
from repro.prediction.task import (
    FEATURE_SETS,
    PredictionExperimentResult,
    PredictionScore,
    build_prediction_dataset,
)
from repro.profile.characteristic_profile import profile_from_counts
from repro.projection.builder import project
from repro.projection.lazy import LazyProjection
from repro.projection.projected_graph import ProjectedGraph
from repro.randomization.null_model import NullModelCounts, random_motif_counts
from repro.store import codecs
from repro.store.artifacts import ArtifactStore, resolve_store
from repro.store.fingerprint import delta_digest, lineage_fingerprint
from repro.utils.timer import Timer

EngineSource = Union[Hypergraph, TemporalHypergraph]

EVOLVE_SNAPSHOTS_TOTAL = obs_metrics.counter(
    "repro_evolve_snapshots_total",
    "Evolution-chain snapshots emitted, by serving mode "
    '("cached"/"incremental"/"full").',
    ("mode",),
)
EVOLVE_ADDED_EDGES_TOTAL = obs_metrics.counter(
    "repro_evolve_added_edges_total",
    "Hyperedges applied by the incremental delta engine.",
)
EVOLVE_INVALIDATED_ANCHORS_TOTAL = obs_metrics.counter(
    "repro_evolve_invalidated_anchors_total",
    "Previously-counted anchors invalidated (recounted and subtracted) by "
    "the incremental delta engine.",
)
EVOLVE_AFFECTED_ANCHORS_TOTAL = obs_metrics.counter(
    "repro_evolve_affected_anchors_total",
    "Anchors re-run through the exact kernel per applied delta "
    "(invalidated old anchors plus added edges).",
)
EVOLVE_SNAPSHOT_SECONDS = obs_metrics.histogram(
    "repro_evolve_snapshot_seconds",
    "Wall-clock seconds spent producing one evolution snapshot, by mode.",
    ("mode",),
)


@dataclass(frozen=True)
class _EvolveStep:
    """One resolved chain boundary: its label, timestamp and hyperedges.

    Along cumulative chains ``edges`` is the *delta* (first-seen hyperedges
    assigned to this boundary); in snapshot mode it is the boundary's whole
    deduplicated edge list.
    """

    label: str
    timestamp: Optional[int]
    edges: Tuple[FrozenSet[Hashable], ...]


def _is_deterministic_seed(seed) -> bool:
    """Whether *seed* replays identically (ints do; a stateful Generator doesn't)."""
    return isinstance(seed, Integral)


def _copy_counts(counts: MotifCounts) -> MotifCounts:
    return MotifCounts(counts.to_array())


class MotifEngine:
    """Facade over counting, profiling, comparison and prediction.

    Parameters
    ----------
    hypergraph:
        The bound :class:`~repro.hypergraph.Hypergraph` — or a
        :class:`~repro.hypergraph.TemporalHypergraph`, which additionally
        enables :meth:`predict`; the static workflows then operate on the
        deduplicated union of all timestamps.
    projection:
        Optionally seed the projection cache with a pre-built projected graph
        (it must belong to *hypergraph*; this is not checked).
    store:
        Cross-engine artifact cache. ``True`` (the default) uses the
        process-wide default store — persistent only when ``REPRO_STORE_DIR``
        is set, disabled otherwise; ``None``/``False`` disables store
        consultation entirely; an explicit
        :class:`~repro.store.ArtifactStore` is used as given. Only
        deterministic artifacts (the full projection, exact or integer-seeded
        results) are stored, so cached and cold paths stay bit-identical.
    kernel:
        Optional :class:`~repro.api.KernelConfig` (or backend name string)
        pinning the counting-kernel backend for every run of this engine.
        ``None`` follows the ambient selection (``set_backend`` /
        ``REPRO_KERNEL_BACKEND``). Counts are bit-identical across backends,
        so the choice is deliberately not part of any cache key.
    """

    def __init__(
        self,
        hypergraph: EngineSource,
        projection: Optional[ProjectedGraph] = None,
        store: Union[ArtifactStore, bool, None] = True,
        kernel: Union[KernelConfig, str, None] = None,
    ) -> None:
        if isinstance(hypergraph, TemporalHypergraph):
            self._temporal: Optional[TemporalHypergraph] = hypergraph
            self._hypergraph: Optional[Hypergraph] = None
        elif isinstance(hypergraph, Hypergraph):
            self._temporal = None
            self._hypergraph = hypergraph
        else:
            raise SpecError(
                "MotifEngine requires a Hypergraph or TemporalHypergraph, "
                f"got {type(hypergraph).__name__}"
            )
        if isinstance(kernel, str):
            kernel = KernelConfig(kernel)
        self._kernel = kernel
        self._projection = projection
        self._projection_builds = 0
        self._hyperwedges: Optional[List[Tuple[int, int]]] = None
        self._lazy_hyperwedges: Optional[List[Tuple[int, int]]] = None
        self._count_cache: Dict[CountSpec, CountResult] = {}
        self._null_cache: Dict[Tuple, NullModelCounts] = {}
        self._store = resolve_store(store)

    # ------------------------------------------------------------ constructors
    @classmethod
    def load(
        cls,
        source: Source,
        scale: float = 1.0,
        registry: Optional[DatasetRegistry] = None,
        store: Union[ArtifactStore, bool, None] = True,
        kernel: Union[KernelConfig, str, None] = None,
    ) -> "MotifEngine":
        """Build an engine from a registered dataset name or a hypergraph file."""
        registry = DEFAULT_REGISTRY if registry is None else registry
        return cls(registry.load(source, scale=scale), store=store, kernel=kernel)

    # -------------------------------------------------------------- properties
    @property
    def hypergraph(self) -> Hypergraph:
        """The bound (static) hypergraph."""
        return self._static()

    @property
    def temporal(self) -> Optional[TemporalHypergraph]:
        """The bound temporal hypergraph, when the engine was built from one."""
        return self._temporal

    @property
    def name(self) -> str:
        """Name of the bound hypergraph."""
        if self._temporal is not None:
            return self._temporal.name
        return self._static().name

    @property
    def store(self) -> Optional[ArtifactStore]:
        """The artifact store this engine consults (``None`` when disabled)."""
        return self._store

    @property
    def kernel(self) -> Optional[KernelConfig]:
        """The pinned kernel configuration (``None`` = ambient selection)."""
        return self._kernel

    def _kernel_backend(self) -> Optional[str]:
        return None if self._kernel is None else self._kernel.backend

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the bound (static) hypergraph."""
        return self._static().fingerprint()

    @property
    def projection(self) -> ProjectedGraph:
        """The cached projected graph, built on first access."""
        return self._ensure_projection()[0]

    @property
    def num_projection_builds(self) -> int:
        """How many times this engine has built a full projection."""
        return self._projection_builds

    def hyperwedges(self) -> List[Tuple[int, int]]:
        """The cached hyperwedge list ``∧`` (lexicographic order).

        Returns a copy; the engine's internal list also serves as the
        sampling population for MoCHy-A+, so handing it out by reference
        would let callers corrupt subsequent counts.
        """
        return list(self._hyperwedge_cache())

    def _hyperwedge_cache(self) -> List[Tuple[int, int]]:
        if self._hyperwedges is None:
            stored = self._stored_hyperwedges()
            if stored is not None:
                # Served whole from the store: the projection itself may
                # never need to be built for a wedge-sampling run.
                self._hyperwedges = stored
            else:
                self._hyperwedges = self.projection.hyperwedge_list()
                self._persist_hyperwedges(self._hyperwedges)
        return self._hyperwedges

    def clear_cache(self) -> None:
        """Drop the cached projection, hyperwedge lists and memoized results.

        Only this engine's private caches are cleared; an attached artifact
        store keeps its entries (use :meth:`ArtifactStore.gc` to compact it).
        """
        self._projection = None
        self._hyperwedges = None
        self._lazy_hyperwedges = None
        self._count_cache.clear()
        self._null_cache.clear()

    # ------------------------------------------------------------------- count
    def count(self, spec: Optional[CountSpec] = None) -> CountResult:
        """Count (or estimate) every h-motif's instances per *spec*.

        Exact and integer-seeded sampling runs are memoized per spec (callers
        get a defensive copy of the counts, so mutating a returned vector
        cannot poison the cache). Runs without a replayable seed — ``None``
        or a stateful ``Generator`` — are recomputed so repeated calls stay
        independent estimates.
        """
        spec = CountSpec() if spec is None else spec
        # Instance enumerations are exact but carry a payload the store (and
        # the memo's defensive-copy contract) never persists — bypass both.
        cacheable = (
            spec.is_exact or _is_deterministic_seed(spec.seed)
        ) and not spec.include_instances
        if cacheable:
            cached = self._count_cache.get(spec)
            if cached is not None:
                # Nothing ran during this call: report zero timings and mark
                # the hit instead of replaying the original run's metadata.
                return replace(
                    cached,
                    counts=_copy_counts(cached.counts),
                    projection_seconds=0.0,
                    counting_seconds=0.0,
                    projection_cached=True,
                    from_cache=True,
                    cache_tier=CACHE_TIER_ENGINE,
                )
            stored = self._stored_count(spec)
            if stored is not None:
                result, tier = stored
                # Seed the in-process memo so later calls skip the store.
                self._count_cache[spec] = replace(
                    result, counts=_copy_counts(result.counts)
                )
                return replace(result, from_cache=True, cache_tier=tier)
        hypergraph = self._static()
        provider, projection_seconds, projection_cached = self._counting_projection(spec)
        wedges: Optional[List[Tuple[int, int]]] = None
        if spec.algorithm == ALGORITHM_WEDGE_SAMPLING and spec.num_workers == 1:
            if provider is self._projection:
                wedges = self._hyperwedge_cache()
            else:
                # Lazy providers are per-call, but the hyperwedge set they
                # enumerate depends only on the hypergraph — cache it so
                # repeated lazy runs don't re-pay the full enumeration.
                if self._lazy_hyperwedges is None:
                    self._lazy_hyperwedges = provider.hyperwedge_list()
                wedges = self._lazy_hyperwedges
        resolved_samples = self._resolve_samples(spec, hypergraph, provider, wedges)
        instances = None
        with Timer() as counting_timer:
            with use_backend(self._kernel_backend()):
                if spec.include_instances:
                    # MoCHy-E-ENUM: the reference per-triple walk. Counts
                    # tallied from it match the batched kernel exactly (both
                    # are integer-valued), pinned by the counting test suite.
                    instances = tuple(enumerate_instances(hypergraph, provider))
                    counts = MotifCounts.zeros()
                    for instance in instances:
                        counts.increment(instance.motif)
                else:
                    counts = self._dispatch(
                        spec, hypergraph, provider, resolved_samples, wedges
                    )
        result = CountResult(
            dataset=hypergraph.name,
            algorithm=spec.algorithm,
            counts=counts,
            num_samples=resolved_samples,
            projection_seconds=projection_seconds,
            counting_seconds=counting_timer.elapsed,
            projection_cached=projection_cached,
            projection_mode=spec.projection,
            instances=instances,
        )
        if cacheable:
            # Memoize a private copy; the caller's result stays mutable
            # without aliasing the cache.
            self._count_cache[spec] = replace(result, counts=_copy_counts(counts))
            self._persist_count(spec, result)
        return result

    # ----------------------------------------------------------------- profile
    def profile(
        self,
        spec: Optional[ProfileSpec] = None,
        real_counts: Optional[MotifCounts] = None,
    ) -> ProfileResult:
        """Characteristic profile of the bound hypergraph (paper Eq. 2).

        The real counts come from :meth:`count` (hitting its memo when a
        matching count ran before); *real_counts* overrides them entirely.
        Integer-seeded profiles are persisted to (and served whole from) the
        artifact store when one is attached.
        """
        spec = ProfileSpec() if spec is None else spec
        hypergraph = self._static()
        storable = real_counts is None and _is_deterministic_seed(spec.seed)
        if storable:
            stored = self._stored_profile(spec)
            if stored is not None:
                return stored
        with Timer() as timer:
            if real_counts is None:
                real_counts = self.count(spec.count_spec()).counts
            null_mean, _ = self._null_counts(spec)
            profile = profile_from_counts(
                real_counts,
                null_mean,
                name=hypergraph.name,
                epsilon=spec.epsilon,
            )
        result = ProfileResult(
            dataset=hypergraph.name,
            profile=profile,
            algorithm=spec.algorithm,
            num_random=spec.num_random,
            null_model=spec.null_model,
            seconds=timer.elapsed,
        )
        if storable:
            self._persist_profile(spec, profile)
        return result

    # ----------------------------------------------------------------- compare
    def compare(
        self,
        spec: Optional[CompareSpec] = None,
        real_counts: Optional[MotifCounts] = None,
    ) -> CompareResult:
        """Real-vs-random comparison table (paper Table 3).

        The rows are recomputed each call (they are cheap); the heavy
        ingredients — real counts and null-model averages — come from the
        engine memo or the artifact store when available, which is what
        ``from_cache``/``cache_tier`` report.
        """
        spec = CompareSpec() if spec is None else spec
        hypergraph = self._static()
        real_cached = False
        with Timer() as timer:
            if real_counts is None:
                count_result = self.count(spec.count_spec())
                real_counts = count_result.counts
                real_cached = count_result.from_cache
            null_mean, null_tier = self._null_counts(spec)
            report = compare_counts(real_counts, null_mean, dataset=hypergraph.name)
        from_cache = real_cached and null_tier is not None
        return CompareResult(
            dataset=hypergraph.name,
            report=report,
            algorithm=spec.algorithm,
            num_random=spec.num_random,
            null_model=spec.null_model,
            seconds=timer.elapsed,
            from_cache=from_cache,
            cache_tier=null_tier if from_cache else None,
        )

    # ----------------------------------------------------------------- predict
    def predict(
        self,
        spec: Optional[PredictSpec] = None,
        classifiers: Optional[Dict[str, BinaryClassifier]] = None,
    ) -> PredictResult:
        """Hyperedge-prediction experiment (paper Table 4).

        Requires the engine to be bound to a
        :class:`~repro.hypergraph.TemporalHypergraph`. Every (feature set,
        classifier) pair is trained on the context window and evaluated on
        the test window.
        """
        spec = PredictSpec() if spec is None else spec
        if self._temporal is None:
            raise SpecError(
                "predict() requires the engine to be bound to a "
                "TemporalHypergraph (timestamped hyperedges)"
            )
        context_window, test_window = self._predict_windows(spec)
        # Only runs with the default classifier bank and a replayable seed
        # are deterministic end to end — custom classifier templates carry
        # arbitrary state the store cannot key.
        storable = classifiers is None and _is_deterministic_seed(spec.seed)
        if storable:
            stored = self._stored_predict(spec, context_window, test_window)
            if stored is not None:
                return stored
        with Timer() as timer:
            dataset = build_prediction_dataset(
                self._temporal,
                context_window[0],
                context_window[1],
                test_window[0],
                test_window[1],
                replace_fraction=spec.replace_fraction,
                max_positives=spec.max_positives,
                seed=spec.seed,
            )
            if classifiers is None:
                classifiers = default_classifiers(seed=0)
            result = PredictionExperimentResult()
            for feature_set in FEATURE_SETS:
                train = dataset.features_train[feature_set]
                test = dataset.features_test[feature_set]
                for name, classifier in classifiers.items():
                    # Each cell trains its own copy of the supplied template,
                    # keeping the caller's hyperparameters and seed while
                    # preventing fitted state from leaking across feature
                    # sets. (The legacy loop rebuilt with type(classifier)(),
                    # silently discarding the configuration.)
                    model = copy.deepcopy(classifier)
                    model.fit(train, dataset.labels_train)
                    probabilities = model.predict_proba(test)
                    predictions = (probabilities >= 0.5).astype(int)
                    result.scores.append(
                        PredictionScore(
                            classifier=name,
                            feature_set=feature_set,
                            accuracy=accuracy(dataset.labels_test, predictions),
                            auc=roc_auc(dataset.labels_test, probabilities),
                        )
                    )
        predict_result = PredictResult(
            dataset=self._temporal.name,
            result=result,
            context_window=context_window,
            test_window=test_window,
            seconds=timer.elapsed,
        )
        if storable:
            self._persist_predict(spec, context_window, test_window, result)
        return predict_result

    # ------------------------------------------------------------------ evolve
    def evolve(self, spec: Optional[EvolveSpec] = None) -> EvolutionResult:
        """Count every snapshot of a temporal chain (paper Figure 7, served).

        Exact cumulative chains run through the incremental delta engine by
        default: each boundary re-counts only the anchors its delta touched,
        merging into the previous snapshot's counts — bit-identical to
        recounting from scratch. With an artifact store attached, snapshots
        already computed (in any process) are served warm from their
        lineage fingerprints without rebuilding the graphs at all.
        """
        spec = EvolveSpec() if spec is None else spec
        with Timer() as timer:
            snapshots = tuple(self.evolve_iter(spec))
        return EvolutionResult(
            dataset=self.name,
            mode=spec.mode,
            algorithm=spec.algorithm,
            snapshots=snapshots,
            seconds=timer.elapsed,
            incremental=spec.serves_incrementally,
            num_samples=spec.num_samples,
        )

    def evolve_iter(
        self, spec: Optional[EvolveSpec] = None
    ) -> Iterator[EvolutionSnapshot]:
        """Stream :meth:`evolve` snapshots one at a time (chain order).

        The spec is validated and the chain resolved *before* the first
        snapshot is yielded, so callers (the HTTP streaming route) can
        surface bad specs as errors rather than torn streams.
        """
        spec = EvolveSpec() if spec is None else spec
        steps = self._evolve_steps(spec)
        if spec.serves_incrementally and spec.num_random is None:
            return self._evolve_incremental(spec, steps)
        return self._evolve_rebuild(spec, steps)

    def _evolve_steps(self, spec: EvolveSpec) -> List[_EvolveStep]:
        """Resolve the chain boundaries into ordered :class:`_EvolveStep`\\ s.

        Cumulative deltas replay :meth:`TemporalHypergraph.cumulative`
        exactly: the temporal pairs are walked in their canonical order and
        each hyperedge is assigned to the boundary of its first occurrence,
        so the accumulated edge list at boundary *k* is identical — element
        for element — to ``cumulative(t_k)``'s, and the content fingerprints
        agree with graphs built any other way.
        """
        if spec.deltas is not None:
            base = tuple(frozenset(edge) for edge in self._static().hyperedges())
            seen = set(base)
            steps = [_EvolveStep(label="base", timestamp=None, edges=base)]
            for index, delta in enumerate(spec.deltas, start=1):
                edges = []
                for raw in delta:
                    edge = frozenset(raw)
                    if edge in seen:
                        continue
                    seen.add(edge)
                    edges.append(edge)
                steps.append(
                    _EvolveStep(
                        label=f"delta-{index}", timestamp=None, edges=tuple(edges)
                    )
                )
            return steps
        if self._temporal is None:
            raise SpecError(
                "evolve() over snapshot boundaries requires the engine to be "
                "bound to a TemporalHypergraph; pass explicit deltas instead"
            )
        stamps = (
            spec.timestamps
            if spec.timestamps is not None
            else self._temporal.timestamps()
        )
        stamps = tuple(stamps)
        if not stamps:
            raise SpecError("the bound temporal hypergraph is empty")
        buckets: List[List[FrozenSet[Hashable]]] = [[] for _ in stamps]
        if spec.mode == EVOLVE_SNAPSHOT:
            positions = {stamp: index for index, stamp in enumerate(stamps)}
            seen_at: List[set] = [set() for _ in stamps]
            for stamp, edge in self._temporal:
                position = positions.get(stamp)
                if position is None or edge in seen_at[position]:
                    continue
                seen_at[position].add(edge)
                buckets[position].append(edge)
            return [
                _EvolveStep(label=f"t={stamp}", timestamp=stamp, edges=tuple(bucket))
                for stamp, bucket in zip(stamps, buckets)
            ]
        seen = set()
        for stamp, edge in self._temporal:
            if stamp > stamps[-1]:
                break  # pairs are sorted by timestamp first
            if edge in seen:
                continue
            seen.add(edge)
            buckets[bisect.bisect_left(stamps, stamp)].append(edge)
        return [
            _EvolveStep(label=f"<={stamp}", timestamp=stamp, edges=tuple(bucket))
            for stamp, bucket in zip(stamps, buckets)
        ]

    def _evolve_incremental(
        self, spec: EvolveSpec, steps: List[_EvolveStep]
    ) -> Iterator[EvolutionSnapshot]:
        """Serve an exact cumulative chain through the delta engine.

        Per boundary, in order of preference: a store hit on the snapshot's
        lineage fingerprint (requires both the count artifact *and* — beyond
        the root — the lineage sidecar, so a torn chain degrades to a
        recount, never a wrong count); an incremental
        :func:`~repro.fastcore.delta.apply_delta` when the previous
        snapshot was computed in-process; a from-scratch count otherwise.
        """
        count_params = codecs.count_params(spec.count_spec())
        state: Optional[DeltaState] = None
        fingerprint: Optional[str] = None
        accumulated: List[FrozenSet[Hashable]] = []
        for index, step in enumerate(steps):
            with Timer() as timer:
                accumulated.extend(step.edges)
                digest: Optional[str] = None
                if index == 0:
                    if spec.deltas is not None:
                        fingerprint = self._static().fingerprint()
                    else:
                        fingerprint = Hypergraph(
                            list(accumulated), name=f"{self.name}@{step.label}"
                        ).fingerprint()
                else:
                    digest = delta_digest(step.edges)
                    fingerprint = lineage_fingerprint(fingerprint, digest)
                emit = len(accumulated) >= spec.min_hyperedges
                counts: Optional[MotifCounts] = None
                mode = SNAPSHOT_MODE_CACHED
                tier: Optional[str] = None
                delta_info: Optional[Dict[str, int]] = None
                if emit and state is None:
                    counts, tier = self._stored_chain_counts(
                        fingerprint, count_params, root=index == 0
                    )
                if counts is None and (emit or state is not None):
                    if state is None:
                        state = initial_state(
                            accumulated, backend=self._kernel_backend()
                        )
                        mode = SNAPSHOT_MODE_FULL
                    else:
                        stats = apply_delta(state, list(step.edges))
                        mode = SNAPSHOT_MODE_INCREMENTAL
                        delta_info = stats.to_dict()
                    if emit:
                        counts = MotifCounts(state.counts.copy())
                        self._persist_chain_snapshot(
                            fingerprint,
                            count_params,
                            counts,
                            step,
                            parent=None if index == 0 else parent_fingerprint,
                            digest=digest,
                            depth=index,
                            total_edges=len(accumulated),
                        )
            parent_fingerprint = fingerprint
            if not emit or counts is None:
                continue
            snapshot = EvolutionSnapshot(
                index=index,
                label=step.label,
                fingerprint=fingerprint,
                num_hyperedges=len(accumulated),
                counts=counts,
                mode=mode,
                seconds=timer.elapsed,
                timestamp=step.timestamp,
                cache_tier=tier,
                delta=delta_info,
            )
            self._observe_snapshot(snapshot)
            yield snapshot

    def _evolve_rebuild(
        self, spec: EvolveSpec, steps: List[_EvolveStep]
    ) -> Iterator[EvolutionSnapshot]:
        """Count each snapshot via a per-snapshot child engine.

        This is the from-scratch path: sampling chains, snapshot mode,
        profile-bearing chains and ``incremental=False``. Child engines
        share this engine's store (content-fingerprint keys) and pinned
        kernel backend; the same integer seed replays for every snapshot.
        """
        count_spec = spec.count_spec()
        accumulated: List[FrozenSet[Hashable]] = []
        for index, step in enumerate(steps):
            if spec.mode == EVOLVE_CUMULATIVE:
                accumulated.extend(step.edges)
                edges = list(accumulated)
            else:
                edges = list(step.edges)
            if len(edges) < spec.min_hyperedges:
                continue
            with Timer() as timer:
                if index == 0 and spec.deltas is not None:
                    graph = self._static()
                else:
                    graph = Hypergraph(edges, name=f"{self.name}@{step.label}")
                child = MotifEngine(
                    graph, store=self._store, kernel=self._kernel
                )
                result = child.count(count_spec)
                profile_values: Optional[Tuple[float, ...]] = None
                if spec.num_random is not None:
                    profile = child.profile(
                        ProfileSpec(
                            num_random=spec.num_random,
                            algorithm=spec.algorithm,
                            sampling_ratio=spec.sampling_ratio,
                            null_model=spec.null_model,
                            seed=spec.seed,
                        ),
                        real_counts=result.counts,
                    )
                    profile_values = tuple(float(v) for v in profile.values)
            snapshot = EvolutionSnapshot(
                index=index,
                label=step.label,
                fingerprint=graph.fingerprint(),
                num_hyperedges=graph.num_hyperedges,
                counts=result.counts,
                mode=SNAPSHOT_MODE_CACHED if result.from_cache else SNAPSHOT_MODE_FULL,
                seconds=timer.elapsed,
                timestamp=step.timestamp,
                cache_tier=result.cache_tier,
                profile_values=profile_values,
            )
            self._observe_snapshot(snapshot)
            yield snapshot

    @staticmethod
    def _observe_snapshot(snapshot: EvolutionSnapshot) -> None:
        EVOLVE_SNAPSHOTS_TOTAL.inc(mode=snapshot.mode)
        EVOLVE_SNAPSHOT_SECONDS.observe(snapshot.seconds, mode=snapshot.mode)
        if snapshot.delta is not None:
            EVOLVE_ADDED_EDGES_TOTAL.inc(snapshot.delta["added_edges"])
            EVOLVE_INVALIDATED_ANCHORS_TOTAL.inc(
                snapshot.delta["invalidated_anchors"]
            )
            EVOLVE_AFFECTED_ANCHORS_TOTAL.inc(snapshot.delta["affected_anchors"])

    def _stored_chain_counts(
        self, fingerprint: str, count_params: Dict[str, Any], root: bool
    ) -> Tuple[Optional[MotifCounts], Optional[str]]:
        """Chain-snapshot counts served from the store, or ``(None, None)``.

        Beyond the root (whose key is a plain content fingerprint,
        interoperable with :meth:`count` artifacts), a hit requires the
        lineage sidecar too: counts are persisted *before* the sidecar, so
        a crash between the two leaves a torn chain that recounts rather
        than serving counts with unverifiable provenance.
        """
        if self._store is None:
            return None, None
        hit = self._store.get(codecs.KIND_COUNT, fingerprint, count_params)
        if hit is None:
            return None, None
        arrays, _, tier = hit
        counts = codecs.decode_counts(arrays)
        if counts is None:
            return None, None
        if not root:
            lineage = self._store.get(
                codecs.KIND_LINEAGE, fingerprint, codecs.lineage_params()
            )
            if lineage is None or codecs.decode_lineage(lineage[0], lineage[1]) is None:
                return None, None
        return counts, tier

    def _persist_chain_snapshot(
        self,
        fingerprint: str,
        count_params: Dict[str, Any],
        counts: MotifCounts,
        step: _EvolveStep,
        parent: Optional[str],
        digest: Optional[str],
        depth: int,
        total_edges: int,
    ) -> None:
        if self._store is None:
            return
        dataset = f"{self.name}@{step.label}"
        arrays, meta = codecs.encode_counts(counts, {"num_samples": None})
        # Counts first, sidecar second: a crash in between leaves the count
        # unservable (no lineage proof) instead of the chain lying.
        self._store.put(
            codecs.KIND_COUNT, fingerprint, count_params, arrays, meta, dataset=dataset
        )
        if parent is None:
            return
        arrays, meta = codecs.encode_lineage(
            parent, digest, depth, step.label, len(step.edges), total_edges
        )
        self._store.put(
            codecs.KIND_LINEAGE,
            fingerprint,
            codecs.lineage_params(),
            arrays,
            meta,
            dataset=dataset,
        )

    # ---------------------------------------------------------------- variance
    def variance(self, spec: Optional[VarianceSpec] = None) -> VarianceResult:
        """Exact estimator variances of MoCHy-A vs MoCHy-A+ (Theorems 3-5).

        Enumerates every instance once to collect the overlap statistics,
        then evaluates both closed-form variances at the spec's common
        sampling ratio. Reuses the engine's cached projection.
        """
        spec = VarianceSpec() if spec is None else spec
        hypergraph = self._static()
        with Timer() as timer:
            statistics = compute_overlap_statistics(hypergraph, self.projection)
            rows = variance_comparison(statistics, spec.sampling_ratio)
        return VarianceResult(
            dataset=hypergraph.name,
            sampling_ratio=spec.sampling_ratio,
            num_hyperedges=statistics.num_hyperedges,
            num_hyperwedges=statistics.num_hyperwedges,
            rows=tuple(
                (int(motif), float(edge_var), float(wedge_var))
                for motif, edge_var, wedge_var in rows
            ),
            seconds=timer.elapsed,
        )

    # ---------------------------------------------------------------- internal
    def _null_counts(self, spec) -> Tuple[MotifCounts, Optional[str]]:
        """Mean null-model counts for a Profile/Compare spec, memoized.

        ``profile()`` and ``compare()`` with the same randomization
        parameters share the generated-and-counted null models — the
        dominant cost of both workflows. Only integer-seeded (replayable)
        runs are cached (in the engine memo and, when attached, the artifact
        store); returns ``(defensive copy, cache tier or None)``.
        """
        key = (
            spec.num_random,
            spec.null_model,
            spec.algorithm,
            spec.sampling_ratio,
            spec.seed,
        )
        cacheable = _is_deterministic_seed(spec.seed)
        if cacheable:
            cached = self._null_cache.get(key)
            if cached is not None:
                return _copy_counts(cached.mean_counts), CACHE_TIER_ENGINE
            stored = self._stored_null(spec)
            if stored is not None:
                null, tier = stored
                self._null_cache[key] = null
                return _copy_counts(null.mean_counts), tier
        with use_backend(self._kernel_backend()):
            null = random_motif_counts(
                self._static(),
                num_random=spec.num_random,
                null_model=spec.null_model,
                algorithm=spec.algorithm,
                sampling_ratio=spec.sampling_ratio,
                seed=spec.seed,
            )
        if cacheable:
            self._null_cache[key] = null
            if self._store is not None:
                arrays, meta = codecs.encode_null_counts(null)
                self._store.put(
                    codecs.KIND_NULL,
                    self.fingerprint,
                    codecs.null_params(spec),
                    arrays,
                    meta,
                    dataset=self._static().name,
                )
        return _copy_counts(null.mean_counts), None

    # ------------------------------------------------------------- store layer
    def _stored_count(self, spec: CountSpec) -> Optional[Tuple[CountResult, str]]:
        """A memoizable count result served from the artifact store, if any."""
        if self._store is None:
            return None
        hit = self._store.get(
            codecs.KIND_COUNT, self.fingerprint, codecs.count_params(spec)
        )
        if hit is None:
            return None
        arrays, meta, tier = hit
        counts = codecs.decode_counts(arrays)
        if counts is None:
            return None
        num_samples = meta.get("num_samples")
        result = CountResult(
            dataset=self._static().name,
            algorithm=spec.algorithm,
            counts=counts,
            num_samples=None if num_samples is None else int(num_samples),
            projection_seconds=0.0,
            counting_seconds=0.0,
            projection_cached=True,
            projection_mode=spec.projection,
        )
        return result, tier

    def _persist_count(self, spec: CountSpec, result: CountResult) -> None:
        if self._store is None:
            return
        arrays, meta = codecs.encode_counts(
            result.counts, {"num_samples": result.num_samples}
        )
        self._store.put(
            codecs.KIND_COUNT,
            self.fingerprint,
            codecs.count_params(spec),
            arrays,
            meta,
            dataset=result.dataset,
        )

    def _stored_null(self, spec) -> Optional[Tuple[NullModelCounts, str]]:
        if self._store is None:
            return None
        hit = self._store.get(
            codecs.KIND_NULL, self.fingerprint, codecs.null_params(spec)
        )
        if hit is None:
            return None
        arrays, meta, tier = hit
        null = codecs.decode_null_counts(arrays, meta)
        if null is None:
            return None
        return null, tier

    def _stored_profile(self, spec: ProfileSpec) -> Optional[ProfileResult]:
        if self._store is None:
            return None
        with Timer() as timer:
            hit = self._store.get(
                codecs.KIND_PROFILE, self.fingerprint, codecs.profile_params(spec)
            )
            if hit is None:
                return None
            arrays, _, tier = hit
            profile = codecs.decode_profile(arrays, name=self._static().name)
        if profile is None:
            return None
        return ProfileResult(
            dataset=self._static().name,
            profile=profile,
            algorithm=spec.algorithm,
            num_random=spec.num_random,
            null_model=spec.null_model,
            seconds=timer.elapsed,
            from_cache=True,
            cache_tier=tier,
        )

    def _persist_profile(self, spec: ProfileSpec, profile) -> None:
        if self._store is None:
            return
        arrays, meta = codecs.encode_profile(profile)
        self._store.put(
            codecs.KIND_PROFILE,
            self.fingerprint,
            codecs.profile_params(spec),
            arrays,
            meta,
            dataset=self._static().name,
        )

    def _stored_hyperwedges(self) -> Optional[List[Tuple[int, int]]]:
        """The hyperwedge list served from the artifact store, if any."""
        if self._store is None:
            return None
        hit = self._store.get(
            codecs.KIND_HYPERWEDGES, self.fingerprint, codecs.hyperwedge_params()
        )
        if hit is None:
            return None
        arrays, _, _ = hit
        return codecs.decode_hyperwedges(arrays, self._static().num_hyperedges)

    def _persist_hyperwedges(self, wedges: List[Tuple[int, int]]) -> None:
        if self._store is None:
            return
        arrays, meta = codecs.encode_hyperwedges(wedges)
        self._store.put(
            codecs.KIND_HYPERWEDGES,
            self.fingerprint,
            codecs.hyperwedge_params(),
            arrays,
            meta,
            dataset=self._static().name,
        )

    def _stored_predict(
        self,
        spec: PredictSpec,
        context_window: Tuple[int, int],
        test_window: Tuple[int, int],
    ) -> Optional[PredictResult]:
        """A whole predict score grid served from the artifact store, if any.

        Keyed by the *temporal* fingerprint — prediction slices by timestamp
        and keeps duplicates, which the static (windowed, deduplicated)
        fingerprint cannot distinguish.
        """
        if self._store is None:
            return None
        with Timer() as timer:
            hit = self._store.get(
                codecs.KIND_PREDICT,
                self._temporal.fingerprint(),
                codecs.predict_params(spec, context_window, test_window),
            )
            if hit is None:
                return None
            arrays, meta, tier = hit
            result = codecs.decode_predict(arrays, meta)
        if result is None:
            return None
        return PredictResult(
            dataset=self._temporal.name,
            result=result,
            context_window=context_window,
            test_window=test_window,
            seconds=timer.elapsed,
            from_cache=True,
            cache_tier=tier,
        )

    def _persist_predict(
        self,
        spec: PredictSpec,
        context_window: Tuple[int, int],
        test_window: Tuple[int, int],
        result: PredictionExperimentResult,
    ) -> None:
        if self._store is None:
            return
        arrays, meta = codecs.encode_predict(result)
        self._store.put(
            codecs.KIND_PREDICT,
            self._temporal.fingerprint(),
            codecs.predict_params(spec, context_window, test_window),
            arrays,
            meta,
            dataset=self._temporal.name,
        )

    def _predict_windows(
        self, spec: PredictSpec
    ) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Resolve the (context, test) windows, defaulting to the paper's split."""
        if spec.has_explicit_windows:
            return (
                (spec.context_start, spec.context_end),
                (spec.test_start, spec.test_end),
            )
        stamps = self._temporal.timestamps()
        if len(stamps) < 2:
            raise SpecError(
                "the default prediction split needs at least two distinct "
                "timestamps; pass explicit windows instead"
            )
        return (stamps[0], stamps[-2]), (stamps[-1], stamps[-1])

    def _static(self) -> Hypergraph:
        if self._hypergraph is None:
            stamps = self._temporal.timestamps()
            if not stamps:
                raise SpecError("the bound temporal hypergraph is empty")
            self._hypergraph = self._temporal.window(stamps[0], stamps[-1])
        return self._hypergraph

    def _ensure_projection(self) -> Tuple[ProjectedGraph, float, bool]:
        """(projection, seconds spent building it now, served-from-cache)."""
        if self._projection is not None:
            return self._projection, 0.0, True
        if self._store is not None:
            hit = self._store.get(
                codecs.KIND_PROJECTION, self.fingerprint, codecs.projection_params()
            )
            if hit is not None:
                arrays, meta, _ = hit
                loaded = codecs.decode_projection(
                    arrays, meta, self._static().num_hyperedges
                )
                if loaded is not None:
                    # Served, not built: no build counted, load time rounds
                    # to the cache-hit contract (projection_seconds == 0).
                    self._projection = loaded
                    return self._projection, 0.0, True
        with Timer() as timer:
            self._projection = project(self._static())
        self._projection_builds += 1
        if self._store is not None:
            arrays, meta = codecs.encode_projection(self._projection)
            self._store.put(
                codecs.KIND_PROJECTION,
                self.fingerprint,
                codecs.projection_params(),
                arrays,
                meta,
                dataset=self._static().name,
            )
        return self._projection, timer.elapsed, False

    def _counting_projection(self, spec: CountSpec):
        if spec.projection == PROJECTION_LAZY:
            provider = LazyProjection(
                self._static(), budget=spec.budget, policy=spec.policy, seed=spec.seed
            )
            return provider, 0.0, False
        return self._ensure_projection()

    @staticmethod
    def _resolve_samples(
        spec: CountSpec,
        hypergraph: Hypergraph,
        provider,
        wedges: Optional[List[Tuple[int, int]]],
    ) -> Optional[int]:
        if spec.is_exact:
            return None
        if spec.num_samples is not None:
            return spec.num_samples
        ratio = 0.1 if spec.sampling_ratio is None else spec.sampling_ratio
        if spec.algorithm == ALGORITHM_EDGE_SAMPLING:
            population = hypergraph.num_hyperedges
        elif wedges is not None:
            population = len(wedges)
        else:
            population = getattr(provider, "num_hyperwedges", None)
            if population is None:
                population = len(provider.hyperwedge_list())
        return max(1, int(round(ratio * population)))

    def _dispatch(
        self,
        spec: CountSpec,
        hypergraph: Hypergraph,
        provider,
        resolved_samples: Optional[int],
        wedges: Optional[List[Tuple[int, int]]],
    ) -> MotifCounts:
        if spec.is_exact:
            if spec.num_workers > 1:
                return count_exact_parallel(hypergraph, spec.num_workers, provider)
            return count_exact(hypergraph, provider)
        if spec.algorithm == ALGORITHM_EDGE_SAMPLING:
            if spec.num_workers > 1:
                return count_approx_edge_sampling_parallel(
                    hypergraph,
                    resolved_samples,
                    spec.num_workers,
                    seed=spec.seed,
                    projection=provider,
                )
            return count_approx_edge_sampling(
                hypergraph, resolved_samples, provider, seed=spec.seed
            )
        if spec.num_workers > 1:
            return count_approx_wedge_sampling_parallel(
                hypergraph,
                resolved_samples,
                spec.num_workers,
                seed=spec.seed,
                projection=provider,
            )
        return count_approx_wedge_sampling(
            hypergraph,
            resolved_samples,
            provider,
            seed=spec.seed,
            hyperwedges=wedges,
        )

    def __repr__(self) -> str:
        return (
            f"MotifEngine(name={self.name!r}, "
            f"projection_cached={self._projection is not None}, "
            f"memoized_counts={len(self._count_cache)}, "
            f"store={'on' if self._store is not None else 'off'})"
        )
