"""Typed, frozen workload specifications for the :class:`~repro.api.MotifEngine`.

Every engine workflow is configured by one immutable spec object instead of a
sprawl of positional strings and kwargs:

* :class:`CountSpec` — one MoCHy counting run (exact or sampling-based),
* :class:`ProfileSpec` — a characteristic-profile computation,
* :class:`CompareSpec` — a real-vs-random comparison table,
* :class:`PredictSpec` — the hyperedge-prediction experiment,
* :class:`EvolveSpec` — a temporal snapshot chain (paper Figure 7),
* :class:`VarianceSpec` — the MoCHy-A vs MoCHy-A+ estimator-variance table.

Specs validate eagerly at construction (``num_samples`` xor ``sampling_ratio``,
positive sample counts, known null models, ...) and resolve the paper's
algorithm aliases (``"MoCHy-A+"`` → ``"wedge-sampling"``) in one central place,
so invalid configurations fail before any hypergraph is loaded or projected.
Being frozen dataclasses, specs are hashable and serve directly as cache keys
for the engine's result memoization.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.counting.runner import ALGORITHM_EXACT, resolve_algorithm
from repro.exceptions import CountSpecError, KernelBackendError, SpecError
from repro.fastcore.backend import BACKEND_AUTO, KERNEL_BACKEND_CHOICES
from repro.profile.significance import DEFAULT_EPSILON
from repro.projection.lazy import POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM
from repro.randomization.null_model import NULL_MODEL_CHUNG_LU, NULL_MODELS
from repro.utils.rng import SeedLike

#: Projection strategies selectable from a :class:`CountSpec`.
PROJECTION_FULL = "full"
PROJECTION_LAZY = "lazy"
PROJECTIONS = (PROJECTION_FULL, PROJECTION_LAZY)

_LAZY_POLICIES = (POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM)


def _check_positive_int(value, name: str) -> int:
    try:
        if isinstance(value, bool) or value != int(value):
            raise CountSpecError(f"{name} must be an integer, got {value!r}")
    except (TypeError, ValueError):
        raise CountSpecError(f"{name} must be an integer, got {value!r}") from None
    if value <= 0:
        raise CountSpecError(f"{name} must be positive, got {value}")
    return int(value)


@dataclass(frozen=True)
class KernelConfig:
    """Selection of the counting-kernel backend (``repro.fastcore``).

    ``backend`` is one of :data:`~repro.fastcore.KERNEL_BACKEND_CHOICES`:
    ``"numpy"`` (the always-available anchor-block kernels), ``"numba"``
    (optional JIT-compiled inner loops) or ``"auto"`` (numba when importable,
    numpy otherwise). The *name* is validated eagerly; *availability* is
    checked when the engine enters the backend scope, so a config built on a
    numba-equipped parent still constructs on a worker without numba — it
    fails loudly there only if actually used.
    """

    backend: str = BACKEND_AUTO

    def __post_init__(self) -> None:
        name = str(self.backend).strip().lower()
        if name not in KERNEL_BACKEND_CHOICES:
            raise KernelBackendError(
                f"unknown kernel backend {self.backend!r}; choose from "
                f"{KERNEL_BACKEND_CHOICES}"
            )
        object.__setattr__(self, "backend", name)


@dataclass(frozen=True)
class CountSpec:
    """Configuration of one h-motif counting run.

    Parameters
    ----------
    algorithm:
        ``"exact"`` (MoCHy-E), ``"edge-sampling"`` (MoCHy-A) or
        ``"wedge-sampling"`` (MoCHy-A+); the paper names are accepted as
        aliases and resolved at construction.
    num_samples / sampling_ratio:
        For the approximate algorithms, either an explicit sample count or a
        ratio of the population size (``s = ratio · |E|`` for MoCHy-A,
        ``r = ratio · |∧|`` for MoCHy-A+). At most one may be given; the
        engine falls back to a ratio of 0.1 when neither is.
    num_workers:
        Use the parallel drivers when greater than one.
    seed:
        Randomness for the sampling algorithms (and the lazy projection's
        ``"random"`` retention policy).
    projection:
        ``"full"`` materializes (and caches, engine-wide) the projected graph;
        ``"lazy"`` counts over a memory-budgeted on-the-fly
        :class:`~repro.projection.LazyProjection` (paper Section 3.4).
        Lazy projection is serial-only (``num_workers`` must stay 1).
    budget / policy:
        Lazy-projection memoization budget (``None`` = unlimited) and
        retention policy; only meaningful with ``projection="lazy"``.
    include_instances:
        Attach the full instance enumeration (MoCHy-E-ENUM) to the result.
        Exact and serial only; the instance list is never persisted, so
        such runs bypass the artifact store.
    """

    algorithm: str = ALGORITHM_EXACT
    num_samples: Optional[int] = None
    sampling_ratio: Optional[float] = None
    num_workers: int = 1
    seed: SeedLike = None
    projection: str = PROJECTION_FULL
    budget: Optional[int] = None
    policy: str = POLICY_DEGREE
    include_instances: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", resolve_algorithm(self.algorithm))
        if self.num_samples is not None and self.sampling_ratio is not None:
            raise CountSpecError(
                "pass either num_samples or sampling_ratio, not both"
            )
        if self.num_samples is not None:
            object.__setattr__(
                self, "num_samples", _check_positive_int(self.num_samples, "num_samples")
            )
        if self.sampling_ratio is not None:
            if self.sampling_ratio <= 0:
                raise CountSpecError(
                    f"sampling_ratio must be positive, got {self.sampling_ratio}"
                )
            object.__setattr__(self, "sampling_ratio", float(self.sampling_ratio))
        object.__setattr__(
            self, "num_workers", _check_positive_int(self.num_workers, "num_workers")
        )
        if self.projection not in PROJECTIONS:
            raise CountSpecError(
                f"projection must be one of {PROJECTIONS}, got {self.projection!r}"
            )
        if self.policy not in _LAZY_POLICIES:
            raise CountSpecError(
                f"policy must be one of {_LAZY_POLICIES}, got {self.policy!r}"
            )
        if self.projection != PROJECTION_LAZY and self.policy != POLICY_DEGREE:
            # Symmetric with budget: a retention policy is meaningless on a
            # full projection, and letting it through would fragment the
            # engine's memo cache with equivalent-but-unequal specs.
            raise CountSpecError("policy requires projection='lazy'")
        if self.budget is not None:
            if self.projection != PROJECTION_LAZY:
                raise CountSpecError("budget requires projection='lazy'")
            if isinstance(self.budget, bool) or self.budget != int(self.budget) or self.budget < 0:
                raise CountSpecError(
                    f"budget must be a non-negative integer, got {self.budget!r}"
                )
            object.__setattr__(self, "budget", int(self.budget))
        if self.projection == PROJECTION_LAZY and self.num_workers > 1:
            # The parallel drivers ship full-projection arrays to workers,
            # which would silently defeat the memory budget lazy was chosen
            # for; make the conflict explicit instead.
            raise CountSpecError(
                "projection='lazy' is serial (the parallel drivers materialize "
                "a full projection); use num_workers=1 with a lazy projection"
            )
        if not isinstance(self.include_instances, bool):
            raise CountSpecError(
                f"include_instances must be a bool, got {self.include_instances!r}"
            )
        if self.include_instances:
            if self.algorithm != ALGORITHM_EXACT:
                raise CountSpecError(
                    "include_instances requires algorithm='exact' (only "
                    "MoCHy-E enumerates instances)"
                )
            if self.num_workers > 1:
                raise CountSpecError(
                    "include_instances is serial (the enumeration is a "
                    "single ordered stream); use num_workers=1"
                )
        if self.algorithm == ALGORITHM_EXACT:
            # Exact counting ignores sampling parameters; normalizing them away
            # makes equivalent exact specs hash to the same cache slot. The
            # seed survives only when the lazy projection's "random" retention
            # policy still consumes it.
            object.__setattr__(self, "num_samples", None)
            object.__setattr__(self, "sampling_ratio", None)
            if not (self.projection == PROJECTION_LAZY and self.policy == POLICY_RANDOM):
                object.__setattr__(self, "seed", None)

    @property
    def is_exact(self) -> bool:
        """Whether this spec runs MoCHy-E (no sampling)."""
        return self.algorithm == ALGORITHM_EXACT


def _validate_profile_like(spec) -> None:
    object.__setattr__(spec, "algorithm", resolve_algorithm(spec.algorithm))
    if isinstance(spec.num_random, bool) or spec.num_random != int(spec.num_random):
        raise SpecError(f"num_random must be an integer, got {spec.num_random!r}")
    if spec.num_random <= 0:
        raise SpecError(f"num_random must be positive, got {spec.num_random}")
    object.__setattr__(spec, "num_random", int(spec.num_random))
    if spec.sampling_ratio is not None:
        if spec.sampling_ratio <= 0:
            raise SpecError(f"sampling_ratio must be positive, got {spec.sampling_ratio}")
        object.__setattr__(spec, "sampling_ratio", float(spec.sampling_ratio))
    if spec.null_model not in NULL_MODELS:
        raise SpecError(
            f"null_model must be one of {NULL_MODELS}, got {spec.null_model!r}"
        )


@dataclass(frozen=True)
class ProfileSpec:
    """Configuration of a characteristic-profile computation (paper Eq. 2).

    The real hypergraph and each of the *num_random* null-model randomizations
    are counted with *algorithm* (at *sampling_ratio* when approximate); the
    26 significances are L2-normalized into the CP.
    """

    num_random: int = 5
    algorithm: str = ALGORITHM_EXACT
    sampling_ratio: Optional[float] = None
    null_model: str = NULL_MODEL_CHUNG_LU
    seed: SeedLike = None
    epsilon: float = DEFAULT_EPSILON

    def __post_init__(self) -> None:
        _validate_profile_like(self)
        if self.epsilon < 0:
            raise SpecError(f"epsilon must be non-negative, got {self.epsilon}")

    def count_spec(self) -> CountSpec:
        """The :class:`CountSpec` used for the real hypergraph's counts."""
        return CountSpec(
            algorithm=self.algorithm,
            sampling_ratio=self.sampling_ratio,
            seed=self.seed,
        )


@dataclass(frozen=True)
class CompareSpec:
    """Configuration of a real-vs-random comparison table (paper Table 3)."""

    num_random: int = 5
    algorithm: str = ALGORITHM_EXACT
    sampling_ratio: Optional[float] = None
    null_model: str = NULL_MODEL_CHUNG_LU
    seed: SeedLike = None

    def __post_init__(self) -> None:
        _validate_profile_like(self)

    def count_spec(self) -> CountSpec:
        """The :class:`CountSpec` used for the real hypergraph's counts."""
        return CountSpec(
            algorithm=self.algorithm,
            sampling_ratio=self.sampling_ratio,
            seed=self.seed,
        )


@dataclass(frozen=True)
class PredictSpec:
    """Configuration of the hyperedge-prediction experiment (paper Table 4).

    The windows are inclusive timestamp ranges over the engine's temporal
    hypergraph. When omitted, the default split is the paper's: every year but
    the last is the context window, the last year is the test window.
    """

    context_start: Optional[int] = None
    context_end: Optional[int] = None
    test_start: Optional[int] = None
    test_end: Optional[int] = None
    replace_fraction: float = 0.5
    max_positives: Optional[int] = None
    seed: SeedLike = None

    def __post_init__(self) -> None:
        for start_name, end_name in (
            ("context_start", "context_end"),
            ("test_start", "test_end"),
        ):
            start = getattr(self, start_name)
            end = getattr(self, end_name)
            if (start is None) != (end is None):
                raise SpecError(
                    f"{start_name} and {end_name} must be given together"
                )
            if start is not None and end < start:
                raise SpecError(f"{end_name} ({end}) must be >= {start_name} ({start})")
        if (self.context_start is None) != (self.test_start is None):
            raise SpecError(
                "the context and test windows must be given together "
                "(or both omitted for the default split)"
            )
        if not 0.0 <= self.replace_fraction <= 1.0:
            raise SpecError(
                f"replace_fraction must be in [0, 1], got {self.replace_fraction}"
            )
        if self.max_positives is not None and self.max_positives <= 0:
            raise SpecError(
                f"max_positives must be positive, got {self.max_positives}"
            )

    @property
    def has_explicit_windows(self) -> bool:
        """Whether both windows were given (vs. derived from the timestamps)."""
        return self.context_start is not None and self.test_start is not None


#: Snapshot-chain modes of an :class:`EvolveSpec`.
EVOLVE_CUMULATIVE = "cumulative"
EVOLVE_SNAPSHOT = "snapshot"
EVOLVE_MODES = (EVOLVE_CUMULATIVE, EVOLVE_SNAPSHOT)


def _freeze_deltas(deltas) -> Tuple[Tuple[Tuple[Any, ...], ...], ...]:
    """Canonicalize explicit deltas into nested tuples (hashable, validated)."""
    frozen_deltas = []
    for snapshot_index, delta in enumerate(deltas):
        edges = []
        for edge_index, edge in enumerate(delta):
            if isinstance(edge, (str, bytes)) or not hasattr(edge, "__iter__"):
                raise SpecError(
                    f"deltas[{snapshot_index}][{edge_index}] must be a "
                    f"collection of nodes, got {type(edge).__name__}"
                )
            members = tuple(edge)
            if not members:
                raise SpecError(
                    f"deltas[{snapshot_index}][{edge_index}] is empty; "
                    "hyperedges must contain at least one node"
                )
            edges.append(members)
        frozen_deltas.append(tuple(edges))
    return tuple(frozen_deltas)


@dataclass(frozen=True)
class EvolveSpec:
    """Configuration of a temporal snapshot chain (paper Figure 7, served).

    The chain is defined either by *timestamps* over the engine's temporal
    hypergraph (``None`` = every distinct timestamp) or by explicit
    *deltas* — batches of hyperedges appended on top of the engine's
    static hypergraph, one snapshot per batch.

    Parameters
    ----------
    mode:
        ``"cumulative"`` grows one graph across the chain (snapshot *k* is
        everything up to boundary *k*) — the shape the incremental delta
        engine serves. ``"snapshot"`` counts each timestamp's hyperedges in
        isolation, matching the legacy evolution analysis.
    timestamps:
        Inclusive snapshot boundaries, strictly increasing. Mutually
        exclusive with *deltas*.
    deltas:
        Explicit hyperedge batches (nested sequences of nodes); implies
        ``mode="cumulative"``.
    algorithm / num_samples / sampling_ratio / seed:
        Per-snapshot counting options, as in :class:`CountSpec`; the same
        seed is replayed for every snapshot so approximate chains are
        reproducible. Only exact chains are served incrementally.
    incremental:
        Use the delta engine for exact cumulative chains (bit-identical to
        recounting); ``False`` forces a from-scratch count per snapshot.
    min_hyperedges:
        Skip snapshots with fewer hyperedges (the legacy analysis used 3;
        motif counts over 1-2 edges are degenerate).
    num_random / null_model:
        When *num_random* is set, each snapshot also gets a characteristic
        profile against that many null-model draws (never incremental).
    """

    mode: str = EVOLVE_CUMULATIVE
    timestamps: Optional[Tuple[int, ...]] = None
    deltas: Optional[Tuple[Tuple[Tuple[Any, ...], ...], ...]] = None
    algorithm: str = ALGORITHM_EXACT
    num_samples: Optional[int] = None
    sampling_ratio: Optional[float] = None
    seed: SeedLike = None
    incremental: bool = True
    min_hyperedges: int = 1
    num_random: Optional[int] = None
    null_model: str = NULL_MODEL_CHUNG_LU

    def __post_init__(self) -> None:
        if self.mode not in EVOLVE_MODES:
            raise SpecError(
                f"mode must be one of {EVOLVE_MODES}, got {self.mode!r}"
            )
        if self.timestamps is not None and self.deltas is not None:
            raise SpecError("pass either timestamps or deltas, not both")
        if self.timestamps is not None:
            try:
                stamps = tuple(int(stamp) for stamp in self.timestamps)
            except (TypeError, ValueError):
                raise SpecError(
                    f"timestamps must be integers, got {self.timestamps!r}"
                ) from None
            if not stamps:
                raise SpecError("timestamps must not be empty when given")
            if any(b <= a for a, b in zip(stamps, stamps[1:])):
                raise SpecError(
                    f"timestamps must be strictly increasing, got {stamps}"
                )
            object.__setattr__(self, "timestamps", stamps)
        if self.deltas is not None:
            if self.mode != EVOLVE_CUMULATIVE:
                raise SpecError("explicit deltas require mode='cumulative'")
            if isinstance(self.deltas, (str, bytes)) or not hasattr(
                self.deltas, "__iter__"
            ):
                raise SpecError(
                    f"deltas must be a sequence of hyperedge batches, got "
                    f"{type(self.deltas).__name__}"
                )
            frozen = _freeze_deltas(self.deltas)
            if not frozen:
                raise SpecError("deltas must not be empty when given")
            object.__setattr__(self, "deltas", frozen)
        object.__setattr__(self, "algorithm", resolve_algorithm(self.algorithm))
        if self.num_samples is not None and self.sampling_ratio is not None:
            raise SpecError("pass either num_samples or sampling_ratio, not both")
        if self.num_samples is not None:
            object.__setattr__(
                self,
                "num_samples",
                _check_positive_int(self.num_samples, "num_samples"),
            )
        if self.sampling_ratio is not None:
            if self.sampling_ratio <= 0:
                raise SpecError(
                    f"sampling_ratio must be positive, got {self.sampling_ratio}"
                )
            object.__setattr__(self, "sampling_ratio", float(self.sampling_ratio))
        if not isinstance(self.incremental, bool):
            raise SpecError(
                f"incremental must be a bool, got {self.incremental!r}"
            )
        object.__setattr__(
            self,
            "min_hyperedges",
            _check_positive_int(self.min_hyperedges, "min_hyperedges"),
        )
        if self.num_random is not None:
            object.__setattr__(
                self,
                "num_random",
                _check_positive_int(self.num_random, "num_random"),
            )
        if self.null_model not in NULL_MODELS:
            raise SpecError(
                f"null_model must be one of {NULL_MODELS}, got {self.null_model!r}"
            )
        if self.algorithm == ALGORITHM_EXACT:
            # Mirror CountSpec's normalization: equivalent exact chains must
            # key the same lineage artifacts.
            object.__setattr__(self, "num_samples", None)
            object.__setattr__(self, "sampling_ratio", None)
            if self.num_random is None:
                object.__setattr__(self, "seed", None)

    @property
    def is_exact(self) -> bool:
        """Whether snapshots are counted with MoCHy-E (no sampling)."""
        return self.algorithm == ALGORITHM_EXACT

    @property
    def serves_incrementally(self) -> bool:
        """Whether the chain is eligible for the incremental delta engine.

        Sampling estimators draw from the whole graph per snapshot, so only
        exact cumulative chains can merge per-anchor contributions.
        """
        return (
            self.incremental and self.is_exact and self.mode == EVOLVE_CUMULATIVE
        )

    def count_spec(self) -> CountSpec:
        """The per-snapshot :class:`CountSpec` of this chain."""
        return CountSpec(
            algorithm=self.algorithm,
            num_samples=self.num_samples,
            sampling_ratio=self.sampling_ratio,
            seed=self.seed,
        )


@dataclass(frozen=True)
class VarianceSpec:
    """Configuration of the estimator-variance comparison (paper Theorems 3-5).

    Computes the exact per-motif variances of the MoCHy-A (edge-sampling)
    and MoCHy-A+ (wedge-sampling) estimators from the hypergraph's overlap
    statistics, at a common *sampling_ratio* of their respective population
    sizes (``s = ratio·|E|`` draws vs ``r = ratio·|∧|`` draws).
    """

    sampling_ratio: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < float(self.sampling_ratio) <= 1.0:
            raise SpecError(
                f"sampling_ratio must be in (0, 1], got {self.sampling_ratio}"
            )
        object.__setattr__(self, "sampling_ratio", float(self.sampling_ratio))


# ---------------------------------------------------------- spec serialization
#: Registry of spec classes by their wire-format ``type`` tag. This is what
#: lets specs travel as plain dicts — to process workers of the parallel
#: serving executor and through the ``serve-batch`` CLI's JSONL request files.
SPEC_TYPES: Dict[str, type] = {
    "count": CountSpec,
    "profile": ProfileSpec,
    "compare": CompareSpec,
    "predict": PredictSpec,
    "evolve": EvolveSpec,
    "variance": VarianceSpec,
}

_SPEC_TYPE_NAMES = {cls: name for name, cls in SPEC_TYPES.items()}

#: Version stamped into every serialized spec. The major number is the
#: compatibility contract: readers reject a different major outright and
#: treat a newer minor as "same shape plus fields I don't know yet",
#: dropping the unknown fields instead of erroring — so a newer client can
#: talk to an older server as long as the major agrees.
SPEC_VERSION = "1.0"

SPEC_VERSION_MAJOR, SPEC_VERSION_MINOR = (
    int(part) for part in SPEC_VERSION.split(".")
)


def _parse_spec_version(value: Any) -> Tuple[int, int]:
    """``(major, minor)`` of a wire-format version tag; SpecError when malformed."""
    if not isinstance(value, str):
        raise SpecError(
            f"spec_version must be a 'major.minor' string, got {value!r}"
        )
    parts = value.split(".")
    try:
        if len(parts) != 2:
            raise ValueError(value)
        major, minor = (int(part) for part in parts)
        if major < 0 or minor < 0:
            raise ValueError(value)
    except ValueError:
        raise SpecError(
            f"spec_version must be a 'major.minor' string, got {value!r}"
        ) from None
    return major, minor


def spec_to_dict(spec) -> Dict[str, Any]:
    """Render a spec as a plain mapping: ``{"type": ..., <field>: ...}``.

    The inverse of :func:`spec_from_dict`; every payload is stamped with
    the current :data:`SPEC_VERSION`. Field values are kept as-is (they
    are JSON types for every replayable spec; a non-replayable ``Generator``
    seed survives pickling to process workers but not JSON).
    """
    cls = type(spec)
    try:
        name = _SPEC_TYPE_NAMES[cls]
    except KeyError:
        raise SpecError(
            f"cannot serialize {cls.__name__}; known specs: "
            f"{sorted(SPEC_TYPES)}"
        ) from None
    payload: Dict[str, Any] = {"type": name, "spec_version": SPEC_VERSION}
    for field in fields(spec):
        payload[field.name] = getattr(spec, field.name)
    return payload


def spec_from_dict(mapping: Mapping[str, Any]):
    """Rebuild a spec from its :func:`spec_to_dict` form (validating eagerly).

    ``type`` defaults to ``"count"`` so terse JSONL request files can omit
    it; unknown types and unknown fields raise :class:`SpecError` before any
    dataset is touched, mirroring the specs' own eager validation.

    ``spec_version`` governs tolerance: a payload stamped with the same
    major but a newer minor may carry fields this reader does not know —
    they are ignored, so mixed client/server fleets can roll forward one
    side at a time. A different major (or a malformed tag) is rejected;
    an absent tag gets today's strict behavior.
    """
    if not isinstance(mapping, Mapping):
        raise SpecError(
            f"a spec mapping must be a JSON object, got {type(mapping).__name__}"
        )
    payload = dict(mapping)
    version = payload.pop("spec_version", None)
    tolerate_unknown = False
    if version is not None:
        major, minor = _parse_spec_version(version)
        if major != SPEC_VERSION_MAJOR:
            raise SpecError(
                f"unsupported spec_version {version!r}: this reader speaks "
                f"major {SPEC_VERSION_MAJOR} (version {SPEC_VERSION})"
            )
        tolerate_unknown = minor > SPEC_VERSION_MINOR
    name = payload.pop("type", "count")
    try:
        cls = SPEC_TYPES[name]
    except (KeyError, TypeError):
        raise SpecError(
            f"unknown spec type {name!r}; choose from {sorted(SPEC_TYPES)}"
        ) from None
    known = {field.name for field in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        if not tolerate_unknown:
            raise SpecError(
                f"unknown field(s) {unknown} for spec type {name!r}; "
                f"known fields: {sorted(known)}"
            )
        for field_name in unknown:
            payload.pop(field_name)
    return cls(**payload)
