"""Significance, characteristic profiles and their comparison."""

from repro.profile.significance import (
    DEFAULT_EPSILON,
    motif_significance,
    relative_count,
    significance_dict,
    significance_vector,
)
from repro.profile.characteristic_profile import (
    CharacteristicProfile,
    DomainSeparation,
    characteristic_profile,
    domain_separation,
    normalize_significances,
    profile_correlation,
    profile_distance,
    profile_from_counts,
    similarity_matrix,
)

__all__ = [
    "DEFAULT_EPSILON",
    "motif_significance",
    "relative_count",
    "significance_dict",
    "significance_vector",
    "CharacteristicProfile",
    "DomainSeparation",
    "characteristic_profile",
    "domain_separation",
    "normalize_significances",
    "profile_correlation",
    "profile_distance",
    "profile_from_counts",
    "similarity_matrix",
]
