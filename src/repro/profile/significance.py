"""H-motif significance (paper Eq. 1).

The significance of h-motif ``t`` in a hypergraph compares its count ``M[t]``
against the average count ``M_rand[t]`` in randomized hypergraphs::

    Δ_t = (M[t] - M_rand[t]) / (M[t] + M_rand[t] + ε)

with ``ε = 1`` throughout the paper. This form (borrowed from the network
motif literature) is bounded in ``(-1, 1)`` and, unlike Z-scores, does not
blow up with the hypergraph size.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS

#: The paper fixes ε to 1 in Eq. (1).
DEFAULT_EPSILON = 1.0


def motif_significance(
    real_count: float, random_count: float, epsilon: float = DEFAULT_EPSILON
) -> float:
    """Significance Δ of a single motif given real and random counts."""
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    denominator = real_count + random_count + epsilon
    if denominator == 0:
        return 0.0
    return (real_count - random_count) / denominator


def significance_vector(
    real_counts: MotifCounts,
    random_counts: MotifCounts,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Length-26 array of significances Δ_t (motif 1 at position 0)."""
    real = real_counts.to_array()
    random = random_counts.to_array()
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    denominator = real + random + epsilon
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(denominator == 0, 0.0, (real - random) / denominator)
    return result


def significance_dict(
    real_counts: MotifCounts,
    random_counts: MotifCounts,
    epsilon: float = DEFAULT_EPSILON,
) -> Dict[int, float]:
    """``{motif index: Δ_t}`` for all 26 motifs."""
    vector = significance_vector(real_counts, random_counts, epsilon)
    return {index: float(vector[index - 1]) for index in range(1, NUM_MOTIFS + 1)}


def relative_count(real_count: float, random_count: float) -> float:
    """The paper's Table-3 relative count ``(M[t] - M_rand[t]) / (M[t] + M_rand[t])``.

    Returns 0.0 when both counts are zero.
    """
    denominator = real_count + random_count
    if denominator == 0:
        return 0.0
    return (real_count - random_count) / denominator
