"""Characteristic profiles (CPs) and their comparison (paper Eq. 2, Figures 1/5/6).

The CP of a hypergraph is the L2-normalized vector of its 26 h-motif
significances. CPs of hypergraphs from the same domain are similar while CPs
from different domains differ, which is the paper's main discovery; similarity
is measured with the Pearson correlation coefficient between CP vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.counting.runner import ALGORITHM_EXACT
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.profile.significance import DEFAULT_EPSILON, significance_vector
from repro.randomization.null_model import NULL_MODEL_CHUNG_LU
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class CharacteristicProfile:
    """The CP of one hypergraph, with the ingredients used to compute it."""

    name: str
    values: np.ndarray
    significances: np.ndarray
    real_counts: MotifCounts
    random_counts: MotifCounts

    def as_dict(self) -> Dict[int, float]:
        """``{motif index: CP_t}``."""
        return {index: float(self.values[index - 1]) for index in range(1, NUM_MOTIFS + 1)}

    def correlation(self, other: "CharacteristicProfile") -> float:
        """Pearson correlation between this CP and *other* (the Figure 6 measure)."""
        return profile_correlation(self.values, other.values)

    def __len__(self) -> int:
        return NUM_MOTIFS


def normalize_significances(significances: Sequence[float]) -> np.ndarray:
    """L2-normalize a significance vector (Eq. 2); an all-zero vector stays zero."""
    array = np.asarray(significances, dtype=float)
    if array.shape != (NUM_MOTIFS,):
        raise ValueError(f"expected {NUM_MOTIFS} significances, got shape {array.shape}")
    norm = np.linalg.norm(array)
    if norm == 0:
        return array.copy()
    return array / norm


def profile_from_counts(
    real_counts: MotifCounts,
    random_counts: MotifCounts,
    name: str = "hypergraph",
    epsilon: float = DEFAULT_EPSILON,
) -> CharacteristicProfile:
    """Build a CP from already-computed real and random motif counts."""
    significances = significance_vector(real_counts, random_counts, epsilon)
    values = normalize_significances(significances)
    return CharacteristicProfile(
        name=name,
        values=values,
        significances=significances,
        real_counts=real_counts,
        random_counts=random_counts,
    )


def characteristic_profile(
    hypergraph: Hypergraph,
    num_random: int = 5,
    algorithm: str = ALGORITHM_EXACT,
    sampling_ratio: Optional[float] = None,
    null_model: str = NULL_MODEL_CHUNG_LU,
    seed: SeedLike = None,
    epsilon: float = DEFAULT_EPSILON,
    real_counts: Optional[MotifCounts] = None,
) -> CharacteristicProfile:
    """Compute the CP of *hypergraph* end to end.

    .. deprecated:: thin shim over :meth:`repro.api.MotifEngine.profile`,
       which caches the projection across workflows on the same hypergraph.

    Counts the real hypergraph (unless *real_counts* is supplied), generates
    *num_random* randomized hypergraphs with the chosen null model, counts each
    with the same algorithm, and normalizes the significances.
    """
    # Imported here: repro.api builds on this module (profile_from_counts).
    from repro.api.config import ProfileSpec
    from repro.api.engine import MotifEngine

    spec = ProfileSpec(
        num_random=num_random,
        algorithm=algorithm,
        sampling_ratio=sampling_ratio,
        null_model=null_model,
        seed=seed,
        epsilon=epsilon,
    )
    return MotifEngine(hypergraph).profile(spec, real_counts=real_counts).profile


def profile_correlation(first: Sequence[float], second: Sequence[float]) -> float:
    """Pearson correlation coefficient between two CP (or significance) vectors."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise ValueError("profiles must have the same length")
    if np.std(first) == 0 or np.std(second) == 0:
        return 0.0
    return float(np.corrcoef(first, second)[0, 1])


def similarity_matrix(
    profiles: Sequence[CharacteristicProfile],
) -> np.ndarray:
    """Pairwise correlation matrix of CPs (Figure 6a)."""
    size = len(profiles)
    matrix = np.ones((size, size), dtype=float)
    for row in range(size):
        for column in range(row + 1, size):
            value = profile_correlation(profiles[row].values, profiles[column].values)
            matrix[row, column] = value
            matrix[column, row] = value
    return matrix


def profile_distance(first: CharacteristicProfile, second: CharacteristicProfile) -> float:
    """Euclidean distance between two CPs (an alternative similarity measure)."""
    return float(np.linalg.norm(first.values - second.values))


@dataclass(frozen=True)
class DomainSeparation:
    """Within- vs. across-domain similarity summary (the Figure 6 'gap')."""

    within_mean: float
    across_mean: float

    @property
    def gap(self) -> float:
        """``within_mean - across_mean``; larger means domains separate better."""
        return self.within_mean - self.across_mean


def domain_separation(
    profiles: Sequence[CharacteristicProfile], domains: Sequence[str]
) -> DomainSeparation:
    """Average within-domain and across-domain CP correlations.

    The paper reports 0.978 within vs. 0.654 across for h-motif CPs (gap
    0.324) and 0.988 vs. 0.919 for network-motif CPs (gap 0.069).
    """
    if len(profiles) != len(domains):
        raise ValueError("profiles and domains must have the same length")
    within: List[float] = []
    across: List[float] = []
    matrix = similarity_matrix(profiles)
    for row in range(len(profiles)):
        for column in range(row + 1, len(profiles)):
            value = matrix[row, column]
            if domains[row] == domains[column]:
                within.append(value)
            else:
                across.append(value)
    within_mean = float(np.mean(within)) if within else 0.0
    across_mean = float(np.mean(across)) if across else 0.0
    return DomainSeparation(within_mean=within_mean, across_mean=across_mean)
