"""Structure-free random hypergraphs, used as controls and in tests.

:func:`generate_uniform_random` draws every hyperedge independently: a size
from a bounded Poisson and members uniformly at random. It has none of the
domain structure of the other generators, so it serves as a sanity control
(its CP should sit near zero) and as a convenient source of arbitrary valid
hypergraphs for property-based tests.
"""

from __future__ import annotations

from typing import List

from repro.generators.base import bounded_size
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def generate_uniform_random(
    num_nodes: int = 200,
    num_hyperedges: int = 300,
    mean_size: float = 3.0,
    max_size: int = 8,
    seed: SeedLike = None,
    name: str = "uniform-random",
) -> Hypergraph:
    """A hypergraph whose hyperedges are uniform random node subsets."""
    require_positive_int(num_nodes, "num_nodes")
    require_positive_int(num_hyperedges, "num_hyperedges")
    rng = ensure_rng(seed)
    edges: List[List[int]] = []
    seen = set()
    for _ in range(num_hyperedges):
        size = bounded_size(rng, mean_size, minimum=1, maximum=min(max_size, num_nodes))
        members = rng.choice(num_nodes, size=size, replace=False)
        key = frozenset(int(node) for node in members)
        if key in seen:
            continue
        seen.add(key)
        edges.append([int(node) for node in members])
    return Hypergraph(edges, name=name)


def generate_planted_triple(
    base: Hypergraph,
    motif_edges: List[List[int]],
    name: str | None = None,
) -> Hypergraph:
    """Append explicit hyperedges (e.g. a hand-built motif instance) to *base*.

    Useful in tests that need a hypergraph guaranteed to contain a specific
    h-motif instance.
    """
    edges = list(base.hyperedges()) + [list(edge) for edge in motif_edges]
    return Hypergraph(edges, name=name or f"{base.name}+planted")
