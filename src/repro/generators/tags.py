"""Synthetic tag co-occurrence hypergraphs.

Mechanism mimicked from the tags datasets (tags-ubuntu, tags-math): the node
set is a modest number of tags with extremely skewed popularity; every post
attaches 2–5 tags, usually one or two popular "hub" tags plus topical ones
drawn from a small topic cluster. The dense core of popular tags makes most
triples mutually overlapping with all regions populated (the paper observes
h-motif 16, the all-regions-non-empty closed motif, over-represented in tags
data).
"""

from __future__ import annotations

from typing import List

from repro.generators.base import (
    assign_overlapping_communities,
    weighted_sample_without_replacement,
    zipf_weights,
)
from repro.generators.base import unique_edges as _unique_edges
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def generate_tags(
    num_tags: int = 250,
    num_posts: int = 450,
    num_topics: int = 12,
    max_tags_per_post: int = 5,
    popularity_exponent: float = 1.4,
    hub_probability: float = 0.75,
    seed: SeedLike = None,
    name: str = "tags",
) -> Hypergraph:
    """Generate a tags-like hypergraph.

    Parameters
    ----------
    popularity_exponent:
        Zipf exponent of global tag popularity (higher = heavier head).
    hub_probability:
        Probability that a post includes at least one globally popular hub tag
        in addition to its topical tags.
    """
    require_positive_int(num_tags, "num_tags")
    require_positive_int(num_posts, "num_posts")
    require_positive_int(num_topics, "num_topics")
    rng = ensure_rng(seed)
    popularity = zipf_weights(num_tags, popularity_exponent)
    topics = assign_overlapping_communities(
        num_tags, num_topics, mean_memberships=1.5, rng=rng
    )
    topic_weights = [zipf_weights(len(members), 1.0) for members in topics]
    num_hubs = max(3, num_tags // 50)

    posts: List[List[int]] = []
    for _ in range(num_posts):
        num_labels = int(rng.integers(2, max_tags_per_post + 1))
        topic_index = int(rng.integers(0, num_topics))
        pool = topics[topic_index]
        weights = topic_weights[topic_index]
        labels = weighted_sample_without_replacement(pool, weights, num_labels, rng)
        if rng.random() < hub_probability:
            hub = int(rng.choice(num_hubs, p=popularity[:num_hubs] / popularity[:num_hubs].sum()))
            if hub not in labels:
                labels = labels[: max(1, num_labels - 1)] + [hub]
        labels = sorted(set(int(tag) for tag in labels))
        if len(labels) >= 2:
            posts.append(labels)
    return Hypergraph(_unique_edges(posts), name=name)
