"""Synthetic hypergraph generators standing in for the paper's 11 real datasets."""

from repro.generators.coauthorship import generate_coauthorship
from repro.generators.contact import generate_contact
from repro.generators.email import generate_email
from repro.generators.tags import generate_tags
from repro.generators.threads import generate_threads
from repro.generators.random_hypergraph import (
    generate_planted_triple,
    generate_uniform_random,
)
from repro.generators.temporal import generate_temporal_coauthorship
from repro.generators.corpus import (
    DOMAINS,
    DatasetSpec,
    build_corpus,
    dataset_domain,
    dataset_names,
    dataset_specs,
    generate_dataset,
)

__all__ = [
    "generate_coauthorship",
    "generate_contact",
    "generate_email",
    "generate_tags",
    "generate_threads",
    "generate_uniform_random",
    "generate_planted_triple",
    "generate_temporal_coauthorship",
    "DOMAINS",
    "DatasetSpec",
    "build_corpus",
    "dataset_domain",
    "dataset_names",
    "dataset_specs",
    "generate_dataset",
]
