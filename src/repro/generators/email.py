"""Synthetic email hypergraphs.

Mechanism mimicked from the email datasets (email-Enron, email-EU): a
hyperedge is the sender plus all receivers of a message. Traffic is dominated
by a few heavy senders, each with a personal contact circle; broadcast
messages (large receiver lists) coexist with short threads whose receiver sets
are nested subsets of one another. This yields the "one hyperedge contains
most nodes" triples (h-motifs 8 and 10) the paper reports for email data.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.generators.base import weighted_sample_without_replacement, zipf_weights
from repro.generators.base import unique_edges as _unique_edges
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def generate_email(
    num_accounts: int = 150,
    num_messages: int = 450,
    mean_recipients: float = 3.0,
    max_recipients: int = 12,
    broadcast_probability: float = 0.08,
    reply_probability: float = 0.4,
    circle_size: int = 25,
    seed: SeedLike = None,
    name: str = "email",
) -> Hypergraph:
    """Generate an email-like hypergraph.

    Parameters
    ----------
    broadcast_probability:
        Probability of a large broadcast message (recipients up to
        ``max_recipients``).
    reply_probability:
        Probability that a message is a reply within a recent thread, keeping a
        subset of the previous participants (nested hyperedges).
    circle_size:
        Size of each account's contact circle from which recipients are drawn.
    """
    require_positive_int(num_accounts, "num_accounts")
    require_positive_int(num_messages, "num_messages")
    rng = ensure_rng(seed)
    sender_weights = zipf_weights(num_accounts, exponent=1.2)
    # Contact circles: each account talks to a fixed local neighborhood.
    circles: List[np.ndarray] = []
    for account in range(num_accounts):
        offsets = rng.choice(
            num_accounts - 1, size=min(circle_size, num_accounts - 1), replace=False
        )
        circle = [(account + 1 + int(offset)) % num_accounts for offset in offsets]
        circles.append(np.array(sorted(set(circle)), dtype=int))

    messages: List[List[int]] = []
    for _ in range(num_messages):
        if messages and rng.random() < reply_probability:
            thread = list(
                messages[int(rng.integers(max(0, len(messages) - 40), len(messages)))]
            )
            # Replies usually drop someone and sometimes add a new participant.
            if len(thread) > 2 and rng.random() < 0.6:
                thread.pop(int(rng.integers(0, len(thread))))
            if rng.random() < 0.3:
                sender = thread[0]
                circle = circles[sender % num_accounts]
                thread.append(int(circle[int(rng.integers(0, len(circle)))]))
            group = sorted(set(thread))
        else:
            sender = int(rng.choice(num_accounts, p=sender_weights))
            circle = circles[sender]
            if rng.random() < broadcast_probability:
                num_recipients = int(rng.integers(max_recipients // 2, max_recipients + 1))
            else:
                num_recipients = 1 + int(rng.poisson(max(mean_recipients - 1, 0.0)))
            num_recipients = max(1, min(num_recipients, len(circle)))
            recipient_weights = zipf_weights(len(circle), exponent=0.8)
            recipients = weighted_sample_without_replacement(
                circle.tolist(), recipient_weights, num_recipients, rng
            )
            group = sorted(set([sender] + [int(r) for r in recipients]))
        if len(group) >= 2:
            messages.append(group)
    return Hypergraph(_unique_edges(messages), name=name)
