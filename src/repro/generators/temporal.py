"""Temporal co-authorship generator for the evolution study (paper Figure 7).

The paper slices the coauth-DBLP data into 33 yearly hypergraphs (1984–2016)
and tracks how h-motif fractions change: collaborations become less clustered
(the open-motif fraction rises steadily after 2001) and motifs 2 and 22 come
to dominate. The generator reproduces the mechanism behind that trend: over
the simulated years the author population, paper volume and average team size
grow, and an increasing share of papers is formed around prolific hub authors
who collaborate with many otherwise-disjoint teams. Hub-centred collaboration
is exactly what makes two papers that both intersect a third paper unlikely to
intersect each other, so the open-motif fraction rises in later years.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.generators.coauthorship import generate_coauthorship
from repro.hypergraph.builders import TemporalHypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def generate_temporal_coauthorship(
    num_years: int = 12,
    start_year: int = 2005,
    initial_authors: int = 220,
    initial_papers: int = 120,
    author_growth: float = 1.06,
    paper_growth: float = 1.08,
    initial_team_reuse: float = 0.2,
    final_team_reuse: float = 0.65,
    initial_team_size: float = 2.4,
    final_team_size: float = 3.6,
    seed: SeedLike = None,
    name: str = "temporal-coauthorship",
) -> TemporalHypergraph:
    """Generate an evolving co-authorship hypergraph, one snapshot per year.

    Parameters
    ----------
    author_growth / paper_growth:
        Yearly multiplicative growth of the author population and paper count.
    initial_team_reuse / final_team_reuse:
        Probability that a paper grows out of an existing team (around a hub
        author), interpolated linearly across the years; its rise is what
        drives the rising open-motif fraction.
    initial_team_size / final_team_size:
        Mean team size interpolated linearly across the years.
    """
    require_positive_int(num_years, "num_years")
    require_positive_int(initial_authors, "initial_authors")
    require_positive_int(initial_papers, "initial_papers")
    rng = ensure_rng(seed)
    timestamped: List[Tuple[int, List[int]]] = []
    for offset in range(num_years):
        progress = offset / max(num_years - 1, 1)
        num_authors = int(round(initial_authors * author_growth**offset))
        num_papers = int(round(initial_papers * paper_growth**offset))
        team_reuse = initial_team_reuse + progress * (final_team_reuse - initial_team_reuse)
        team_size = initial_team_size + progress * (final_team_size - initial_team_size)
        snapshot = generate_coauthorship(
            num_authors=num_authors,
            num_papers=num_papers,
            num_groups=max(6, num_authors // 20),
            mean_team_size=team_size,
            team_reuse_probability=team_reuse,
            seed=rng,
            name=f"{name}-{start_year + offset}",
        )
        year = start_year + offset
        timestamped.extend((year, list(edge)) for edge in snapshot.hyperedges())
    return TemporalHypergraph(timestamped, name=name)
